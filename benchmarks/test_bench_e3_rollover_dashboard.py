"""E3 — the Figure-8 rollover dashboard and cluster-level durations.

Paper (§1, §4.5, §6, Figure 8): restarting 2% of leaves at a time, a
full-cluster rollover takes 10-12 hours from disk versus under an hour
via shared memory; throughout, ~98% of data stays available and the
dashboard shows old/rolling/new fractions sweeping across the fleet.
"""

from repro.cluster.dashboard import render_dashboard
from repro.sim import paper_profile, simulate_rollover
from repro.sim.hardware import HOUR


def test_disk_rollover_full_scale(benchmark, record_result):
    result = benchmark(simulate_rollover, paper_profile(), 100, "disk", 0.02)
    assert 10 * HOUR <= result.total_seconds <= 14 * HOUR
    assert result.min_availability >= 0.98 - 1e-9
    benchmark.extra_info["hours"] = result.total_seconds / HOUR
    record_result("E3", "disk rollover, 2% at a time", "10-12 h",
                  f"{result.total_seconds / HOUR:.1f} h")
    record_result("E3", "availability during disk rollover", "98%",
                  f"{result.min_availability:.1%}")


def test_shm_rollover_full_scale(benchmark, record_result):
    result = benchmark(simulate_rollover, paper_profile(), 100, "shm", 0.02)
    assert result.total_seconds <= 1.05 * HOUR
    benchmark.extra_info["minutes"] = result.total_seconds / 60
    record_result("E3", "shm rollover (incl. 40 min deploy)", "< 1 h",
                  f"{result.total_seconds / 60:.0f} min")
    record_result("E3", "availability during shm rollover", "98%",
                  f"{result.min_availability:.1%}")


def test_dashboard_series_shape(benchmark, record_result):
    """Figure 8's qualitative shape: old monotonically down, new
    monotonically up, rolling bounded by the batch size."""

    def run():
        return simulate_rollover(paper_profile(), 100, "shm", 0.02,
                                 sample_every_slots=20)

    result = benchmark(run)
    samples = result.dashboard.samples
    old = [s.old_version for s in samples]
    new = [s.new_version for s in samples]
    assert old == sorted(old, reverse=True)
    assert new == sorted(new)
    assert all(s.rolling_over <= result.batch_size for s in samples)
    art = render_dashboard(result.dashboard, width=40, max_rows=6)
    for line in art.splitlines():
        record_result("E3", "dashboard", "Figure 8", line)
