"""E18 (extension) — the replica recovery tier.

The paper's ladder bottoms out at local disk, but a cluster with
table-level standbys has a faster source: a sibling leaf's already
sealed, already compressed blocks, pulled over a pipelined multi-stream
wire session.  E18 measures that rung against the two disk rungs on the
same fully-synced dataset.

Acceptance gates (mirrored by ``repro bench-restart --replica-tier``):

- the wire pull beats legacy replay by >= 2x, measured (it is CPU-bound
  decode against wire-bound transfer, so the ratio holds on any host);
- at paper-scale hardware the model's replica rung beats the disk
  snapshot rung by >= 2x — asserted unconditionally against the
  calibrated profile, because a local run's page-cache-backed "disk"
  hides exactly the bottleneck the replica tier removes;
- serve-while-restoring over the wire answers the first dashboard query
  before 25% of the bytes transferred;
- final digests are identical across the replica, disk-snapshot, and
  legacy routes, with legacy replayed on both pool backends.

Set ``BENCH_E18_JSON`` to a path to archive the measurements (CI
uploads it as ``BENCH_e18.json``).
"""

from __future__ import annotations

import time

from _payload import dump_artifact
from repro.cluster.replication import ReplicaCatalog
from repro.core.engine import RecoveryMethod
from repro.disk.backup import DiskBackup
from repro.query.query import Aggregation, Query
from repro.server.leaf import LeafServer
from repro.sim import paper_profile
from repro.util.checksum import rows_digest
from repro.workloads import service_requests

N_ROWS = 6_000
BACKENDS = ("thread", "process")

RESULTS: dict = {}


def dashboard_query(data) -> Query:
    """Count over the newest half minute — a couple of the newest blocks."""
    newest = data[-1]["time"]
    return Query(
        table="service_requests",
        start_time=newest - 30,
        end_time=newest + 1,
        aggregations=[Aggregation("count", None)],
    )


def build_pair(shm_namespace, tmp_path, tag: str):
    """A fully-synced primary plus a mirrored standby and its catalog."""
    primary = LeafServer(
        f"p{tag}",
        backup=DiskBackup(tmp_path / f"primary-{tag}"),
        namespace=f"{shm_namespace}-{tag}",
        rows_per_block=64,
    )
    primary.start()
    data = list(service_requests(N_ROWS))
    primary.add_rows("service_requests", data)
    primary.leafmap.seal_all()
    primary.sync_to_disk()
    dashboard = dashboard_query(data)

    replica = LeafServer(
        f"p{tag}r",
        backup=DiskBackup(tmp_path / f"replica-{tag}"),
        namespace=f"{shm_namespace}-{tag}-rep",
        rows_per_block=64,
    )
    replica.start()
    catalog = ReplicaCatalog()
    catalog.assign(primary.leaf_id, replica)
    catalog.mirror(primary.leaf_id, "service_requests", data)
    primary.engine.replica_source = catalog.session_source(primary.leaf_id)
    return primary, catalog, dashboard


def timed_route(leaf, source, *, wire: bool, snapshot_tier: bool):
    """Crash and restart ``leaf`` through one rung; (seconds, report)."""
    leaf.crash()
    leaf.engine.replica_source = source if wire else None
    leaf.engine.disk_snapshot_tier = snapshot_tier
    started = time.perf_counter()
    leaf.start()
    return time.perf_counter() - started, leaf.last_restart_report


class TestReplicaRecoveryTier:
    def test_replica_beats_legacy_and_modeled_disk_snapshot(
        self, shm_namespace, tmp_path, record_result
    ):
        primary, catalog, _ = build_pair(shm_namespace, tmp_path, "speed")
        source = primary.engine.replica_source
        baseline = rows_digest(primary.leafmap.snapshot_rows())
        try:
            replica_s, report = timed_route(
                primary, source, wire=True, snapshot_tier=True
            )
            assert report.method is RecoveryMethod.REPLICA
            assert rows_digest(primary.leafmap.snapshot_rows()) == baseline

            snapshot_s, report = timed_route(
                primary, source, wire=False, snapshot_tier=True
            )
            assert report.method is RecoveryMethod.DISK_SNAPSHOT

            legacy_s, report = timed_route(
                primary, source, wire=False, snapshot_tier=False
            )
            assert report.method is RecoveryMethod.DISK
        finally:
            catalog.close()

        speedup_vs_legacy = legacy_s / max(replica_s, 1e-9)
        RESULTS["restore_seconds"] = {
            "replica": replica_s,
            "disk_snapshot": snapshot_s,
            "legacy": legacy_s,
        }
        RESULTS["speedup_vs_legacy"] = speedup_vs_legacy
        RESULTS["speedup_vs_disk_snapshot"] = snapshot_s / max(
            replica_s, 1e-9
        )
        record_result(
            "E18",
            "replica wire pull vs legacy replay",
            ">= 2x",
            f"{speedup_vs_legacy:.1f}x ({replica_s * 1000:.1f} ms vs "
            f"{legacy_s * 1000:.1f} ms)",
        )
        assert speedup_vs_legacy >= 2.0, (
            f"replica rung only {speedup_vs_legacy:.2f}x the legacy replay"
        )

        # The local disk-snapshot rung reads tmpfs — a memcpy, not a
        # disk.  The paper-scale claim runs on the calibrated model,
        # where the shared 200 MB/s spindle meets a 4-stream 10 GbE
        # pull (the E17 convention for hardware-bound claims).
        profile = paper_profile()
        sim_speedup = profile.replica_restore_speedup(1)
        RESULTS["sim"] = {
            "replica_restart_seconds": profile.replica_restart_seconds(),
            "disk_snapshot_restart_seconds": (
                profile.disk_snapshot_restart_seconds(1)
            ),
            "replica_speedup_vs_disk_snapshot": sim_speedup,
        }
        record_result(
            "E18",
            "replica vs disk-snapshot rung, paper-scale hardware",
            ">= 2x",
            f"{sim_speedup:.1f}x "
            f"({profile.replica_restart_seconds():.0f} s vs "
            f"{profile.disk_snapshot_restart_seconds(1):.0f} s)",
        )
        assert sim_speedup >= 2.0
        dump_artifact("E18", rows=N_ROWS, **RESULTS)

    def test_first_query_answered_before_quarter_transferred(
        self, shm_namespace, tmp_path, record_result
    ):
        primary, catalog, dashboard = build_pair(shm_namespace, tmp_path, "serve")
        baseline = rows_digest(primary.leafmap.snapshot_rows())
        try:
            primary.crash()
            started = time.perf_counter()
            primary.start(serve_while_restoring=True, sweep=False)
            result = primary.query(dashboard)
            first_answer_s = time.perf_counter() - started
            fraction = primary.restore_progress().fraction_restored
            primary.wait_restored()
        finally:
            catalog.close()
        assert result.rows_matched > 0, (
            "dashboard query matched nothing mid-restore"
        )
        assert primary.last_restart_report.method is RecoveryMethod.REPLICA
        assert rows_digest(primary.leafmap.snapshot_rows()) == baseline
        RESULTS["fraction_restored_at_first_query"] = fraction
        RESULTS["first_answer_seconds"] = first_answer_s
        record_result(
            "E18",
            "first dashboard answer during wire restore",
            "< 25% of bytes transferred",
            f"{fraction:.1%} transferred, {first_answer_s * 1000:.1f} ms",
        )
        assert fraction < 0.25

    def test_digests_identical_across_routes_on_both_backends(
        self, shm_namespace, tmp_path, record_result
    ):
        routes: dict[str, str] = {}
        for backend in BACKENDS:
            primary, catalog, _ = build_pair(
                shm_namespace, tmp_path, f"digest-{backend}"
            )
            source = primary.engine.replica_source
            primary.engine.replay_backend = backend
            primary.engine.replay_workers = 2
            baseline = rows_digest(primary.leafmap.snapshot_rows())
            try:
                for name, wire, snapshot_tier, expected in (
                    ("replica", True, True, RecoveryMethod.REPLICA),
                    ("disk_snapshot", False, True, RecoveryMethod.DISK_SNAPSHOT),
                    ("legacy", False, False, RecoveryMethod.DISK),
                ):
                    _, report = timed_route(
                        primary, source, wire=wire, snapshot_tier=snapshot_tier
                    )
                    assert report.method is expected
                    digest = rows_digest(primary.leafmap.snapshot_rows())
                    assert digest == baseline, (
                        f"{name} route diverged on the {backend} backend"
                    )
                    routes[f"{backend}:{name}"] = digest
            finally:
                catalog.close()
        assert len(set(routes.values())) == 1
        RESULTS["digest_routes"] = sorted(routes)
        RESULTS["digests_identical"] = True
        record_result(
            "E18",
            "digest identity across replica/disk-snapshot/legacy",
            "identical",
            f"{len(routes)} routes, one digest",
        )
        dump_artifact("E18", rows=N_ROWS, **RESULTS)
