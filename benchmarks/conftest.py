"""Benchmark fixtures.

Every experiment records its paper-vs-measured comparison in two places:
``benchmark.extra_info`` (lands in pytest-benchmark's JSON) and a plain
``results_summary.txt`` next to this file (one line per recorded fact),
so the numbers survive pytest's output capture.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

import pytest

from repro.util.clock import ManualClock

RESULTS_PATH = Path(__file__).parent / "results_summary.txt"
SHM_DIR = Path("/dev/shm")


def pytest_sessionstart(session):
    if RESULTS_PATH.exists():
        RESULTS_PATH.unlink()


@pytest.fixture(scope="session")
def record_result():
    """Append one ``experiment | quantity | paper | measured`` line."""

    def _record(experiment: str, quantity: str, paper: str, measured: str) -> None:
        with open(RESULTS_PATH, "a") as fh:
            fh.write(f"{experiment} | {quantity} | paper: {paper} | measured: {measured}\n")

    return _record


@pytest.fixture
def shm_namespace():
    namespace = f"reprobench-{uuid.uuid4().hex[:10]}"
    yield namespace
    if SHM_DIR.is_dir():
        for path in SHM_DIR.iterdir():
            if path.name.startswith(namespace):
                try:
                    os.unlink(path)
                except OSError:
                    pass


@pytest.fixture
def clock():
    return ManualClock(1_390_000_000.0)
