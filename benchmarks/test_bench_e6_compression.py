"""E6 — column compression factors.

Paper (§2.1): "Compression reduces the size of the row block column by a
factor of about 30 [...] a combination of dictionary encoding, bit
packing, delta encoding, and lz4, with at least two methods applied to
each column."

Measured on the columns our Scuba-like workloads actually produce.  The
paper's ~30x is an average over production data; the shape requirement
here is that monitoring-style columns (near-sorted timestamps, low-
cardinality strings) compress by well over an order of magnitude.
"""

import pytest

from repro.compression import CompressionFlags, encode_column
from repro.types import ColumnType
from repro.workloads import service_requests

N_ROWS = 30_000


@pytest.fixture(scope="module")
def workload_columns():
    rows = list(service_requests(N_ROWS))
    return {
        "time": (ColumnType.INT64, [r["time"] for r in rows]),
        "status": (ColumnType.INT64, [r["status"] for r in rows]),
        "endpoint": (ColumnType.STRING, [r["endpoint"] for r in rows]),
        "datacenter": (ColumnType.STRING, [r["datacenter"] for r in rows]),
        "latency_ms": (ColumnType.FLOAT64, [r["latency_ms"] for r in rows]),
        "tags": (ColumnType.STRING_VECTOR, [r["tags"] for r in rows]),
    }


def raw_size(ctype, values):
    if ctype in (ColumnType.INT64, ColumnType.FLOAT64):
        return 8 * len(values)
    if ctype is ColumnType.STRING:
        return sum(len(v.encode()) + 4 for v in values)
    return sum(sum(len(s.encode()) + 4 for s in v) + 4 for v in values)


@pytest.mark.parametrize(
    "column", ["time", "status", "endpoint", "datacenter", "latency_ms", "tags"]
)
def test_column_compression(benchmark, workload_columns, column, record_result):
    ctype, values = workload_columns[column]
    encoded = benchmark(encode_column, ctype, values)
    ratio = raw_size(ctype, values) / encoded.payload_size
    benchmark.extra_info["ratio"] = ratio
    benchmark.extra_info["flags"] = str(encoded.flags)
    record_result("E6", f"compression of '{column}' ({ctype.name})",
                  "~30x average", f"{ratio:.1f}x via {encoded.flags!r}")
    assert ratio > 1.0


def test_timestamp_column_exceeds_25x(benchmark, workload_columns, record_result):
    ctype, values = workload_columns["time"]
    encoded = benchmark(encode_column, ctype, values)
    ratio = 8 * len(values) / encoded.payload_size
    assert ratio > 25
    record_result("E6", "near-sorted time column", ">= ~30x", f"{ratio:.0f}x")


def test_low_cardinality_string_exceeds_15x(benchmark, workload_columns, record_result):
    ctype, values = workload_columns["datacenter"]
    encoded = benchmark(encode_column, ctype, values)
    ratio = raw_size(ctype, values) / encoded.payload_size
    assert ratio > 15


def test_every_column_uses_at_least_two_methods(benchmark, workload_columns, record_result):
    """The paper's 'at least two methods applied to each column'."""
    method_flags = (
        CompressionFlags.DICT,
        CompressionFlags.DELTA,
        CompressionFlags.ZIGZAG,
        CompressionFlags.BITPACK,
        CompressionFlags.LZ,
        CompressionFlags.SHUFFLE,
        CompressionFlags.DICT_LZ,
    )
    def run():
        for name, (ctype, values) in workload_columns.items():
            encoded = encode_column(ctype, values)
            applied = [flag for flag in method_flags if flag in encoded.flags]
            assert len(applied) >= 2, (name, encoded.flags)

    benchmark(run)
    record_result("E6", "methods per column", ">= 2", ">= 2 for all 6 columns")
