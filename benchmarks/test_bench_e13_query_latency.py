"""E13 — the motivating latency gap: queries vs recovery.

Paper (§1): Scuba queries "typically run in under a second over GBs of
data", which makes 2.5-3 hour recoveries "about 4 orders of magnitude
longer than query response time".  We measure aggregation latency on a
populated leaf and compare it to the measured disk recovery of the same
data (E1) and the simulated full-scale recovery.
"""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.query.execute import execute_on_leaf
from repro.query.query import Aggregation, Filter, Query
from repro.sim import paper_profile
from repro.workloads import service_requests

N_ROWS = 50_000
ROWS_PER_BLOCK = 8192


@pytest.fixture(scope="module")
def leafmap():
    from repro.util.clock import ManualClock

    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create("service_requests").add_rows(service_requests(N_ROWS))
    leafmap.seal_all()
    return leafmap


def test_grouped_aggregation_latency(benchmark, leafmap, record_result):
    query = Query(
        "service_requests",
        aggregations=(Aggregation("count"), Aggregation("avg", "latency_ms"),
                      Aggregation("p99", "latency_ms")),
        group_by=("endpoint",),
    )
    execution = benchmark(execute_on_leaf, leafmap, query)
    assert execution.rows_scanned == N_ROWS
    assert benchmark.stats["mean"] < 2.0
    record_result("E13", "grouped aggregation over 50k rows", "subsecond over GBs",
                  f"{benchmark.stats['mean'] * 1000:.0f} ms")


def test_time_pruned_query_is_much_cheaper(benchmark, leafmap, record_result):
    """Nearly all queries predicate on time; min/max pruning makes a
    narrow window touch a fraction of the blocks."""
    narrow = Query("service_requests", start_time=1_390_000_000,
                   end_time=1_390_000_000 + 500)
    execution = benchmark(execute_on_leaf, leafmap, narrow)
    assert execution.blocks_pruned >= 1
    assert execution.rows_scanned < N_ROWS
    record_result("E13", "blocks pruned by time predicate", "most",
                  f"{execution.blocks_pruned} pruned, "
                  f"{execution.rows_scanned:,} of {N_ROWS:,} rows scanned")


def test_filtered_query_latency(benchmark, leafmap, record_result):
    query = Query(
        "service_requests",
        aggregations=(Aggregation("count"),),
        filters=(Filter("status", "ge", 500), Filter("tags", "contains", "prod")),
    )
    execution = benchmark(execute_on_leaf, leafmap, query)
    assert execution.rows_matched > 0

    # The 4-orders-of-magnitude claim, from the calibrated model:
    recovery_s = paper_profile().disk_restart_seconds(8) * 8  # whole machine
    query_s = max(benchmark.stats["mean"], 1e-3)
    orders = recovery_s / 0.5  # vs a typical subsecond query
    assert orders > 1e4
    record_result("E13", "machine recovery / query latency", "~4 orders of magnitude",
                  f"{orders:.1e}x (model recovery vs 0.5 s query)")
