"""E13 — the motivating latency gap: queries vs recovery.

Paper (§1): Scuba queries "typically run in under a second over GBs of
data", which makes 2.5-3 hour recoveries "about 4 orders of magnitude
longer than query response time".  We measure aggregation latency on a
populated leaf — through the vectorized executor and its decoded-column
cache — compare it against the original row-at-a-time loop (the
before/after of the vectorized rewrite), and relate both to the
measured and simulated recovery times.

The ``SPEEDUP_FLOOR`` assertion is the PR's acceptance gate: grouped
aggregation over the 50k-row ``service_requests`` leaf must be at least
5x faster vectorized than row-at-a-time.
"""

import time

import pytest

from repro.columnstore.colcache import DecodedColumnCache
from repro.columnstore.leafmap import LeafMap
from repro.query.execute import execute_on_leaf, execute_on_leaf_rows
from repro.query.query import Aggregation, Filter, Query
from repro.sim import paper_profile
from repro.workloads import service_requests

N_ROWS = 50_000
ROWS_PER_BLOCK = 8192
#: Acceptance floor: vectorized grouped aggregation vs the row path.
SPEEDUP_FLOOR = 5.0

GROUPED_QUERY = Query(
    "service_requests",
    aggregations=(Aggregation("count"), Aggregation("avg", "latency_ms"),
                  Aggregation("p99", "latency_ms")),
    group_by=("endpoint",),
)


@pytest.fixture(scope="module")
def column_cache():
    return DecodedColumnCache(64 << 20)


@pytest.fixture(scope="module")
def leafmap(column_cache):
    from repro.util.clock import ManualClock

    leafmap = LeafMap(
        clock=ManualClock(0.0),
        rows_per_block=ROWS_PER_BLOCK,
        column_cache=column_cache,
    )
    leafmap.get_or_create("service_requests").add_rows(service_requests(N_ROWS))
    leafmap.seal_all()
    return leafmap


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def test_vectorized_speedup_floor(benchmark, leafmap, record_result):
    """The tentpole's acceptance gate: >= 5x on grouped aggregation."""
    row_seconds = _best_of(lambda: execute_on_leaf_rows(leafmap, GROUPED_QUERY))
    execution = benchmark(execute_on_leaf, leafmap, GROUPED_QUERY)
    assert execution.rows_scanned == N_ROWS
    vector_seconds = benchmark.stats["mean"]
    speedup = row_seconds / vector_seconds
    benchmark.extra_info["row_path_ms"] = row_seconds * 1000
    benchmark.extra_info["speedup"] = speedup
    assert speedup >= SPEEDUP_FLOOR, (
        f"vectorized executor is only {speedup:.1f}x the row path "
        f"(floor {SPEEDUP_FLOOR}x)"
    )
    record_result(
        "E13", "vectorized vs row-at-a-time grouped aggregation",
        f">= {SPEEDUP_FLOOR:.0f}x",
        f"{speedup:.1f}x ({row_seconds * 1000:.0f} ms -> "
        f"{vector_seconds * 1000:.0f} ms)",
    )


def test_grouped_aggregation_latency(benchmark, leafmap, record_result):
    execution = benchmark(execute_on_leaf, leafmap, GROUPED_QUERY)
    assert execution.rows_scanned == N_ROWS
    assert benchmark.stats["mean"] < 2.0
    record_result("E13", "grouped aggregation over 50k rows", "subsecond over GBs",
                  f"{benchmark.stats['mean'] * 1000:.0f} ms")


def test_time_pruned_query_is_much_cheaper(benchmark, leafmap, record_result):
    """Nearly all queries predicate on time; min/max pruning makes a
    narrow window touch a fraction of the blocks."""
    narrow = Query("service_requests", start_time=1_390_000_000,
                   end_time=1_390_000_000 + 500)
    execution = benchmark(execute_on_leaf, leafmap, narrow)
    assert execution.blocks_pruned >= 1
    assert execution.rows_scanned < N_ROWS
    record_result("E13", "blocks pruned by time predicate", "most",
                  f"{execution.blocks_pruned} pruned, "
                  f"{execution.rows_scanned:,} of {N_ROWS:,} rows scanned")


def test_filtered_query_latency(benchmark, leafmap, column_cache, record_result):
    query = Query(
        "service_requests",
        aggregations=(Aggregation("count"),),
        filters=(Filter("status", "ge", 500), Filter("tags", "contains", "prod")),
    )
    execution = benchmark(execute_on_leaf, leafmap, query)
    assert execution.rows_matched > 0
    stats = column_cache.stats()
    assert stats.hits > 0  # repeated dashboard refreshes read cached decodes
    benchmark.extra_info["cache_hit_rate"] = stats.hit_rate
    record_result("E13", "decoded-column cache hit rate (warm dashboard)",
                  "high on repetitive queries", f"{stats.hit_rate:.1%}")

    # The 4-orders-of-magnitude claim, from the calibrated model:
    recovery_s = paper_profile().disk_restart_seconds(8) * 8  # whole machine
    orders = recovery_s / 0.5  # vs a typical subsecond query
    assert orders > 1e4
    record_result("E13", "machine recovery / query latency", "~4 orders of magnitude",
                  f"{orders:.1e}x (model recovery vs 0.5 s query)")
