"""E11 — ablation: the rejected always-in-shared-memory allocator.

Paper (§3): alternative 1 was to "allocate all data in shared memory all
of the time", requiring a custom allocator; Scuba rejected it over
thread safety, complexity, and fragmentation (lazy backing-page
allocation being impossible in shared memory).

The ablation runs a Scuba-like churn (row block columns of mixed sizes
appended and expired) through a first-fit shared memory allocator and
measures how fragmentation grows, versus the copy-on-restart design
whose normal operation touches only the battle-tested process heap.
"""

import random

from repro.errors import AllocationError
from repro.shm.allocator import ShmAllocator

ARENA = 24 << 20  # sized for ~85% utilization, like a full leaf
CHURN_STEPS = 4_000


def scuba_churn(arena, rng, steps):
    """Mixed-size RBC allocations with interleaved expiry, like a leaf.

    Tables expire independently, so frees are scattered across the
    arena rather than strictly oldest-first — the pattern that defeats
    first-fit coalescing.
    """
    live = []  # offsets
    failures = 0
    worst_fragmentation = 0.0
    for step in range(steps):
        if len(live) > 300:
            # Different tables age out at different times: free a
            # random quarter of the live blocks.
            rng.shuffle(live)
            for offset in live[:75]:
                arena.free(offset)
            live = live[75:]
        size = rng.choice((256, 1 << 10, 8 << 10, 64 << 10, 256 << 10))
        try:
            live.append(arena.alloc(size))
        except AllocationError:
            failures += 1
            if live:
                arena.free(live.pop(0))
        stats = arena.stats()
        worst_fragmentation = max(worst_fragmentation, stats.fragmentation)
    return failures, worst_fragmentation


def test_fragmentation_grows_under_churn(benchmark, record_result):
    results = {}

    def run():
        arena = ShmAllocator(ARENA)
        failures, worst = scuba_churn(arena, random.Random(42), CHURN_STEPS)
        results["failures"] = failures
        results["worst_fragmentation"] = worst
        results["final"] = arena.stats()

    benchmark(run)
    final = results["final"]
    assert results["worst_fragmentation"] > 0.4
    record_result("E11", "worst free-space fragmentation under churn",
                  "grows over time (rejected design)",
                  f"{results['worst_fragmentation']:.0%}")
    record_result("E11", "free holes at end of churn", "many",
                  f"{final.free_block_count} holes, largest "
                  f"{final.largest_free_block >> 10} KiB of "
                  f"{final.free_bytes >> 10} KiB free")


def test_large_allocation_fails_despite_free_space(benchmark, record_result):
    """The concrete failure: after churn, a 1 GB-style big RBC cannot be
    placed even though total free space would cover it."""
    outcome = {}

    def run():
        arena = ShmAllocator(ARENA)
        scuba_churn(arena, random.Random(7), CHURN_STEPS)
        stats = arena.stats()
        big = int(stats.free_bytes * 0.8)
        try:
            arena.alloc(big)
            outcome["failed"] = False
        except AllocationError:
            outcome["failed"] = True
        outcome["free"] = stats.free_bytes
        outcome["largest"] = stats.largest_free_block

    benchmark(run)
    assert outcome["failed"], outcome
    record_result("E11", "80%-of-free-space allocation after churn",
                  "fails (fragmentation)",
                  f"fails: largest hole {outcome['largest'] >> 10} KiB of "
                  f"{outcome['free'] >> 10} KiB free")


def test_chosen_design_has_no_shm_fragmentation(benchmark, record_result):
    """The copy-on-restart design allocates each table segment exactly
    once, contiguous, at shutdown: zero external fragmentation by
    construction."""

    def run():
        arena = ShmAllocator(ARENA)
        offsets = []
        # Shutdown: one exact-size allocation per table, back to back.
        for size in (ARENA // 4, ARENA // 2, ARENA // 8):
            offsets.append(arena.alloc(size))
        worst = arena.stats().fragmentation
        # Restore: everything freed again, in order.
        for offset in offsets:
            arena.free(offset)
        return worst, arena.stats()

    worst, final = benchmark(run)
    assert worst == 0.0
    assert final.largest_free_block == ARENA
    record_result("E11", "fragmentation, copy-on-restart design", "0", f"{worst:.0%}")
