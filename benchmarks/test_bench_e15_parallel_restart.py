"""E15: parallel machine restart — worker sweep and bandwidth ceiling.

The paper restarts leaves one at a time during rollover; a *machine
event* restarts all of them at once.  E15 measures a real (scaled)
machine restarting its leaves with 1, 2, 4, and 8 workers, and checks
the simulator's claim that the speedup is linear in the worker count
until the machine's memory bandwidth saturates (min(k, mem_total /
mem_copy) — 4x with the paper profile).

The wall-clock speedup assertion is gated on the host actually having
multiple cores: pure-Python copies hold the GIL, so a single-core
container serializes the workers no matter how many threads run.  The
measured numbers are recorded either way.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.server.machine import Machine
from repro.shm.layout import table_segment_size
from repro.sim import paper_profile, simulate_machine_recovery
from repro.workloads import service_requests

LEAVES = 4
ROWS_PER_LEAF = 8_000
WORKER_SWEEP = (1, 2, 4, 8)


def build_machine(shm_namespace, tmp_path) -> Machine:
    machine = Machine(
        "e15",
        tmp_path,
        leaves_per_machine=LEAVES,
        namespace=shm_namespace,
        rows_per_block=2048,
        shared_tracker=True,
    )
    machine.start_all()
    for leaf in machine.leaves:
        leaf.add_rows("service_requests", service_requests(ROWS_PER_LEAF))
        leaf.leafmap.seal_all()
        leaf.sync_to_disk()  # pay the one-time backup sync outside the sweep
    return machine


class TestE15ParallelRestart:
    def test_worker_sweep_on_a_real_machine(
        self, shm_namespace, tmp_path, record_result
    ):
        machine = build_machine(shm_namespace, tmp_path)
        data_mb = machine.nbytes / 1e6
        walls: dict[int, float] = {}
        for workers in WORKER_SWEEP:
            started = time.perf_counter()
            report = machine.restart_all(workers=workers)
            walls[workers] = time.perf_counter() - started
            assert report.failures == []
        for workers in WORKER_SWEEP:
            record_result(
                "E15",
                f"restart {LEAVES} leaves ({data_mb:.1f} MB), workers={workers}",
                "speedup until bandwidth ceiling",
                f"{walls[workers] * 1000:.0f} ms "
                f"({walls[1] / walls[workers]:.2f}x vs 1 worker)",
            )
        speedup = walls[1] / walls[4]
        record_result(
            "E15", "workers=4 vs workers=1", ">= 1.5x", f"{speedup:.2f}x"
        )
        if (os.cpu_count() or 1) >= 2:
            assert speedup >= 1.5, (
                f"4 workers only {speedup:.2f}x faster than 1 on a "
                f"{os.cpu_count()}-core host"
            )
        else:
            pytest.skip(
                f"measured {speedup:.2f}x on a single-core host (GIL-bound); "
                "the >=1.5x floor needs >= 2 cores"
            )

    def test_process_backend_escapes_the_gil(
        self, shm_namespace, tmp_path, record_result
    ):
        """The two backends on identical data: the thread pool's copies
        serialize on the GIL, the forked workers' do not.  The speedup
        floor only holds where the workers can actually run in parallel,
        so the assertion is gated on core count; the shared-budget bound
        holds everywhere."""
        machine = build_machine(shm_namespace, tmp_path)
        data_bytes = machine.nbytes
        largest_segment = max(
            table_segment_size(table.name, table.blocks)
            for leaf in machine.leaves
            for table in leaf.leafmap
        )
        # No request is oversized at this limit, so the bound is strict.
        limit = max(largest_segment, data_bytes // 3)
        workers = 4
        reports = {}
        for backend in ("thread", "process"):
            report = machine.restart_all(
                workers=workers, budget_bytes=limit, backend=backend
            )
            assert report.failures == []
            assert report.peak_in_flight_bytes <= limit, (
                f"{backend} backend broke the machine-wide footprint bound"
            )
            reports[backend] = report
        speedup = (
            reports["thread"].restart_window_seconds
            / reports["process"].restart_window_seconds
        )
        for backend, report in reports.items():
            record_result(
                "E15",
                f"restart window, {workers} workers, backend={backend}",
                "process escapes the GIL",
                f"{report.restart_window_seconds * 1000:.0f} ms "
                f"(+{report.adopt_seconds * 1000:.0f} ms adopt)",
            )
        record_result(
            "E15",
            "process vs thread backend, 4 workers",
            ">= 1.5x on >= 4 cores",
            f"{speedup:.2f}x on {os.cpu_count() or 1} cores",
        )
        if (os.cpu_count() or 1) >= 4:
            assert speedup >= 1.5, (
                f"process backend only {speedup:.2f}x the thread backend "
                f"on a {os.cpu_count()}-core host"
            )
        else:
            pytest.skip(
                f"measured {speedup:.2f}x on a {os.cpu_count() or 1}-core "
                "host; the >= 1.5x floor needs >= 4 cores"
            )

    def test_simulator_scaling_saturates_at_bandwidth_ceiling(self, record_result):
        profile = paper_profile()
        ceiling = profile.mem_total_gbps / profile.mem_copy_gbps
        assert ceiling == 4.0
        for workers in WORKER_SWEEP:
            speedup = profile.parallel_restore_speedup(workers)
            expected = min(workers, ceiling)
            assert speedup == pytest.approx(expected), (
                f"{workers} workers: simulator gives {speedup:.2f}x, "
                f"model says min(k, ceiling) = {expected:.0f}x"
            )
        record_result(
            "E15",
            "simulated machine-restore speedup, workers=1/2/4/8",
            "N x until bandwidth ceiling (4x)",
            "/".join(
                f"{profile.parallel_restore_speedup(w):.0f}x" for w in WORKER_SWEEP
            ),
        )

    def test_parallel_beats_sequential_machine_recovery(self, record_result):
        """With the ceiling model, an 8-wide shm recovery of a paper-scale
        machine is 4x the sequential rollover pattern, not 8x."""
        profile = paper_profile()
        sequential = simulate_machine_recovery(profile, "shm", "sequential")
        all_at_once = simulate_machine_recovery(profile, "shm", "all_at_once")
        ratio = sequential.total_seconds / all_at_once.total_seconds
        # Copies scale 4x; the fixed per-leaf process overhead pays once
        # per leaf sequentially but overlaps in the parallel restart, so
        # the machine-level ratio lands between the ceiling and leaves.
        assert profile.leaves_per_machine >= ratio >= 3.5
        record_result(
            "E15",
            "paper-scale machine: sequential vs parallel shm restart",
            "bounded by 4x copy ceiling",
            f"{sequential.total_seconds:.0f} s vs "
            f"{all_at_once.total_seconds:.0f} s ({ratio:.1f}x)",
        )
