"""E7 — shutdown latency and the 3-minute kill.

Paper (§4.3): "Usually, the leaf copies its data to shared memory and
exits in 3-4 seconds.  However, the loop ensures that we kill the leaf
server if it has not shut down after 3 minutes.  If the old leaf server
is killed, the new leaf server will restart from disk."
"""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.core.watchdog import CooperativeDeadline
from repro.disk.backup import DiskBackup
from repro.errors import ShutdownTimeout
from repro.sim import paper_profile
from repro.workloads import service_requests

N_ROWS = 20_000
ROWS_PER_BLOCK = 4096


def build_leafmap(clock):
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create("service_requests").add_rows(service_requests(N_ROWS))
    leafmap.seal_all()
    return leafmap


def test_copy_to_shm_latency(benchmark, shm_namespace, clock, record_result):
    """The Figure-6 copy loop, measured for real (scaled)."""

    def setup():
        return (build_leafmap(clock),), {}

    def run(leafmap):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        report = engine.backup_to_shm(leafmap)
        engine.discard_shm()
        return report

    benchmark.pedantic(run, setup=setup, rounds=8)
    record_result("E7", "copy-to-shm shutdown (scaled, 20k rows)",
                  "3-4 s @ 10-15 GB", f"{benchmark.stats['mean'] * 1000:.1f} ms")


def test_full_scale_shutdown_copy(benchmark, record_result):
    def run():
        return paper_profile().shm_shutdown_seconds(1)

    seconds = benchmark(run)
    assert 3.0 <= seconds <= 4.5
    record_result("E7", "copy-to-shm shutdown (sim, 15 GB leaf)", "3-4 s",
                  f"{seconds:.2f} s")


def test_overrunning_shutdown_is_killed_and_next_boot_uses_disk(
    benchmark, shm_namespace, tmp_path, clock, record_result
):
    """The watchdog path: an expired deadline aborts the copy with the
    valid bit still false; the replacement recovers from disk."""
    backup = DiskBackup(tmp_path / "backup")

    def setup():
        leafmap = build_leafmap(clock)
        backup.sync_leafmap(leafmap)
        return (leafmap,), {}

    def run(leafmap):
        engine = RestartEngine("k", namespace=shm_namespace, backup=backup, clock=clock)
        deadline = CooperativeDeadline(timeout=1e-9, clock=clock)
        clock.advance(1.0)
        with pytest.raises(ShutdownTimeout):
            engine.backup_to_shm(leafmap, deadline=deadline)
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        report = RestartEngine(
            "k", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        # Disk recovery via the snapshot tier: the sealed sync left a
        # fresh shm-format snapshot behind.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.row_count == N_ROWS

    benchmark.pedantic(run, setup=setup, rounds=3)
    record_result("E7", "kill after deadline", "fall back to disk", "fall back to disk")
