"""E16 (extension) — serve-while-restoring availability.

The paper's shm restart blocks queries until the last byte is copied
back (§4.3).  E16 measures the lazy alternative: the leaf publishes its
block directory, flips to ``RECOVERING_MEMORY_SERVING``, and answers a
dashboard-shaped query by faulting in only the blocks the query touches
while the rest fills in behind it.

Acceptance gates (mirrored by ``repro bench-restart
--serve-while-restoring``): on both backends the first query must be
answered with **under 25%** of the leaf's bytes restored, and the
fully-restored leaf must be digest-identical to a blocking restore of
the same shared-memory image.  Set ``BENCH_E16_JSON`` to a path to
archive the measurements (CI uploads it as ``BENCH_e16.json``).
"""

from __future__ import annotations

import os
import time

from _payload import dump_artifact
from repro.core.parallel import ParallelRestartCoordinator
from repro.query.query import Aggregation, Query
from repro.server.machine import Machine
from repro.sim import paper_profile, simulate_leaf_restart
from repro.util.checksum import rows_digest
from repro.workloads import service_requests

LEAVES = 4
ROWS_PER_LEAF = 1_000
BACKENDS = ("thread", "process")

# ~4 rows share each timestamp second, so the newest data sits near this
# mark; the dashboard scans the last half minute — a couple of the
# newest blocks out of the sixteen each leaf holds.
NEWEST = 1_390_000_000 + ROWS_PER_LEAF // 4 + 1
DASHBOARD = Query(
    table="service_requests",
    start_time=NEWEST - 30,
    end_time=NEWEST + 1,
    aggregations=[Aggregation("count", None)],
)


def build_machine(shm_namespace, tmp_path, backend: str) -> Machine:
    machine = Machine(
        "e16",
        tmp_path / backend,
        leaves_per_machine=LEAVES,
        namespace=f"{shm_namespace}-{backend}",
        rows_per_block=64,
        shared_tracker=True,
    )
    machine.start_all()
    for leaf in machine.leaves:
        leaf.add_rows("service_requests", service_requests(ROWS_PER_LEAF))
        leaf.leafmap.seal_all()
    return machine


class TestE16ServeWhileRestoring:
    def test_first_query_beats_quarter_restored_on_both_backends(
        self, shm_namespace, tmp_path, record_result
    ):
        """The E16 acceptance gate, on the thread and the process pool."""
        results = {}
        for backend in BACKENDS:
            machine = build_machine(shm_namespace, tmp_path, backend)
            data_bytes = machine.nbytes
            coordinator = ParallelRestartCoordinator(
                machine.leaves, backend=backend
            )

            # Baseline: the blocking restart and the digests it produces.
            blocking = coordinator.restart_all()
            assert blocking.failures == []
            digests = [
                rows_digest(leaf.leafmap.snapshot_rows())
                for leaf in machine.leaves
            ]

            # Lazy: same shutdown, then serve before the sweep runs.
            outcomes = coordinator.shutdown_all()
            assert all(o.ok for o in outcomes)
            worst_fraction = 0.0
            first_answer_seconds = 0.0
            for leaf, blocking_digest in zip(machine.leaves, digests):
                started = time.perf_counter()
                leaf.start(serve_while_restoring=True, sweep=False)
                answer = leaf.query(DASHBOARD)
                first_answer_seconds = max(
                    first_answer_seconds, time.perf_counter() - started
                )
                assert answer.rows_matched > 0, (
                    "the dashboard window must actually touch data for "
                    "the fraction to mean anything"
                )
                progress = leaf.restore_progress()
                assert progress.queries_served >= 1
                worst_fraction = max(
                    worst_fraction, progress.fraction_restored
                )
                leaf.wait_restored()
                assert leaf.restore_progress().fraction_restored == 1.0
                assert (
                    rows_digest(leaf.leafmap.snapshot_rows())
                    == blocking_digest
                ), f"{backend}: lazy restore diverged from blocking restore"

            assert worst_fraction < 0.25, (
                f"{backend}: first query needed {worst_fraction:.1%} of "
                f"bytes restored (gate: < 25%)"
            )
            results[backend] = {
                "leaves": LEAVES,
                "rows_per_leaf": ROWS_PER_LEAF,
                "compressed_bytes": data_bytes,
                "fraction_restored_at_first_query": worst_fraction,
                "first_answer_seconds": first_answer_seconds,
                "blocking_restore_seconds": blocking.restore_seconds,
                "digests_match": True,
            }
            record_result(
                "E16",
                f"first dashboard answer, backend={backend}",
                "< 25% of bytes restored",
                f"{worst_fraction:.1%} restored, "
                f"{first_answer_seconds * 1000:.1f} ms to answer "
                f"(blocking restore {blocking.restore_seconds * 1000:.1f} ms)",
            )
        dump_artifact("E16", rows=LEAVES * ROWS_PER_LEAF, backends=results)

    def test_background_sweep_completes_without_queries(
        self, shm_namespace, tmp_path, record_result
    ):
        """With the sweep thread on, an idle leaf still reaches ALIVE and
        the same digest — availability must not depend on query traffic."""
        machine = build_machine(shm_namespace, tmp_path, "sweep")
        coordinator = ParallelRestartCoordinator(machine.leaves)
        blocking = coordinator.restart_all()
        assert blocking.failures == []
        digests = [
            rows_digest(leaf.leafmap.snapshot_rows())
            for leaf in machine.leaves
        ]
        assert all(o.ok for o in coordinator.shutdown_all())
        started = time.perf_counter()
        outcomes = coordinator.start_all(serve_while_restoring=True)
        serving_seconds = time.perf_counter() - started
        assert all(o.ok for o in outcomes)
        machine_wait_started = time.perf_counter()
        coordinator.wait_restored_all()
        fill_seconds = time.perf_counter() - machine_wait_started
        for leaf, blocking_digest in zip(machine.leaves, digests):
            assert leaf.restore_progress().fraction_restored == 1.0
            assert rows_digest(leaf.leafmap.snapshot_rows()) == blocking_digest
        record_result(
            "E16",
            "time-to-serving vs blocking restore (sweep thread)",
            "serving before the copy finishes",
            f"serving in {serving_seconds * 1000:.1f} ms, background fill "
            f"{fill_seconds * 1000:.1f} ms, blocking "
            f"{blocking.restore_seconds * 1000:.1f} ms",
        )

    def test_simulator_lazy_window_beats_blocking_window(self, record_result):
        """At paper scale the unavailability window drops from the full
        copy-back to the directory publish."""
        profile = paper_profile()
        blocking = simulate_leaf_restart(profile, "shm")
        lazy = simulate_leaf_restart(profile, "shm_lazy")
        assert lazy.total_seconds < blocking.total_seconds
        # The copy-back itself does not disappear — it moves behind
        # query service.
        assert lazy.background_fill_seconds == blocking.copy_in_seconds
        assert (
            blocking.total_seconds - lazy.total_seconds
            == blocking.copy_in_seconds - profile.lazy_publish_overhead_s
        )
        record_result(
            "E16",
            "simulated paper-scale leaf: unavailability window",
            "publish overhead only",
            f"{lazy.total_seconds:.1f} s serving vs "
            f"{blocking.total_seconds:.1f} s blocking "
            f"({lazy.background_fill_seconds:.1f} s fill in background)",
        )
