"""E17: incremental delta snapshots and parallel legacy replay.

Two perf claims ride on the ISSUE-9 write path:

1. **Sync write bytes drop >= 5x** on an append-mostly workload once
   ``DiskBackup`` appends per-generation deltas instead of rewriting the
   whole table at every sync point.  Bytes written are deterministic, so
   the floor is asserted unconditionally.
2. **Legacy replay >= 2x with 4 workers** when the row-replay rung fans
   chunk decoding across a worker pool.  Wall-clock speedup needs real
   cores — pure-Python decode holds the GIL — so the floor is gated on
   ``os.cpu_count() >= 4`` (the E15 convention); measured numbers are
   recorded either way, and the hardware model's claim is asserted
   unconditionally.

Digest identity across {full, incremental, compacted} snapshots x
{chain, serial, parallel} recovery x {thread, process} backends is the
correctness spine: every route must rebuild bit-identical rows.

Set ``BENCH_E17_JSON=<path>`` to dump the measured numbers as JSON (CI
uploads it as an artifact); each test refreshes the file with everything
collected so far.
"""

from __future__ import annotations

import os
import time
from itertools import islice

import pytest

from _payload import dump_artifact
from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.recovery import recover_leafmap, recover_leafmap_snapshots
from repro.disk.replay import replay_leafmap
from repro.sim import paper_profile
from repro.util.checksum import rows_digest
from repro.util.clock import ManualClock
from repro.workloads import service_requests

BASE_ROWS = 8_000
#: Seven append rounds keeps the default 8-link chain from compacting
#: inside the measurement window, so the steady-state bytes compare pure
#: delta appends against pure full rewrites.
ROUNDS = 7
ROWS_PER_ROUND = 500
WORKERS = 4

RESULTS: dict = {}


def _dump_artifact() -> None:
    dump_artifact("E17", **RESULTS)


def build_corpus(tmp_path, clock):
    """One leafmap synced in lockstep to three backup flavours."""
    backups = {
        "full": DiskBackup(tmp_path / "full", incremental=False),
        "incremental": DiskBackup(tmp_path / "incremental"),
        "compacted": DiskBackup(tmp_path / "compacted", max_chain_links=2),
    }
    leafmap = LeafMap(clock=clock, rows_per_block=1024)
    table = leafmap.get_or_create("service_requests")
    rows = service_requests(BASE_ROWS + ROUNDS * ROWS_PER_ROUND)
    table.add_rows(islice(rows, BASE_ROWS))
    leafmap.seal_all()
    for backup in backups.values():
        backup.sync_leafmap(leafmap)
    base_bytes = {
        name: backup.stats.snapshot_bytes_written
        for name, backup in backups.items()
    }
    for _ in range(ROUNDS):
        table.add_rows(islice(rows, ROWS_PER_ROUND))
        leafmap.seal_all()
        for backup in backups.values():
            backup.sync_leafmap(leafmap)
    steady_bytes = {
        name: backup.stats.snapshot_bytes_written - base_bytes[name]
        for name, backup in backups.items()
    }
    return leafmap, backups, steady_bytes


class TestE17IncrementalSnapshots:
    def test_append_mostly_sync_writes_drop_5x(self, tmp_path, record_result):
        clock = ManualClock(0.0)
        _, backups, steady = build_corpus(tmp_path, clock)
        reduction = steady["full"] / steady["incremental"]
        amplification = backups["incremental"].stats.write_amplification
        record_result(
            "E17",
            f"sync write bytes over {ROUNDS} append rounds",
            ">= 5x fewer than full rewrite",
            f"{steady['full']} B full vs {steady['incremental']} B "
            f"incremental ({reduction:.1f}x)",
        )
        record_result(
            "E17",
            "incremental write amplification (bytes / live sealed bytes)",
            "< 1.0 (full-rewrite floor)",
            f"{amplification:.3f}",
        )
        assert reduction >= 5.0, (
            f"incremental sync only cut write bytes {reduction:.1f}x "
            f"({steady['incremental']} B vs {steady['full']} B full rewrite)"
        )
        assert amplification is not None and amplification < 1.0
        # The tight 2-link chain must have folded at least once, and the
        # default chain must not have — compaction cost stays out of the
        # steady-state comparison above.
        assert backups["compacted"].stats.compactions >= 1
        assert backups["incremental"].stats.compactions == 0
        assert backups["incremental"].stats.deltas_written == ROUNDS
        RESULTS["sync_write_bytes"] = dict(steady)
        RESULTS["write_reduction"] = reduction
        RESULTS["write_amplification"] = amplification
        RESULTS["compactions"] = {
            name: b.stats.compactions for name, b in backups.items()
        }
        _dump_artifact()

    def test_digests_identical_across_every_route(self, tmp_path, record_result):
        """{full, incremental, compacted} x {chain, serial legacy,
        parallel legacy} x {thread, process} all rebuild the same rows."""
        clock = ManualClock(0.0)
        leafmap, backups, _ = build_corpus(tmp_path, clock)
        expected = rows_digest(leafmap.snapshot_rows())
        routes = 0
        for name, backup in backups.items():
            chained = LeafMap(clock=clock, rows_per_block=1024)
            recover_leafmap_snapshots(DiskBackup(backup.directory), chained)
            assert rows_digest(chained.snapshot_rows()) == expected, (
                f"{name}: chain recovery diverged"
            )
            serial = LeafMap(clock=clock, rows_per_block=1024)
            recover_leafmap(backup, serial)
            assert rows_digest(serial.snapshot_rows()) == expected, (
                f"{name}: serial legacy replay diverged"
            )
            routes += 2
            for backend in ("thread", "process"):
                parallel = LeafMap(clock=clock, rows_per_block=1024)
                replay_leafmap(
                    backup, parallel, workers=WORKERS, backend=backend
                )
                assert rows_digest(parallel.snapshot_rows()) == expected, (
                    f"{name}: parallel replay ({backend}) diverged"
                )
                routes += 1
        record_result(
            "E17",
            "recovery digest identity",
            "identical on every route",
            f"{routes} routes x {BASE_ROWS + ROUNDS * ROWS_PER_ROUND} "
            "rows, all identical",
        )
        RESULTS["digest_routes"] = routes
        RESULTS["digests_identical"] = True
        _dump_artifact()

    def test_parallel_replay_speedup(self, tmp_path, record_result):
        """Serial vs 4-worker process replay on a legacy-only backup."""
        clock = ManualClock(0.0)
        backup = DiskBackup(tmp_path / "legacy", snapshots=False)
        leafmap = LeafMap(clock=clock, rows_per_block=256)
        table = leafmap.get_or_create("service_requests")
        rows = service_requests(BASE_ROWS + ROUNDS * ROWS_PER_ROUND)
        for batch in (BASE_ROWS, *([ROWS_PER_ROUND] * ROUNDS)):
            table.add_rows(islice(rows, batch))
            leafmap.seal_all()
            backup.sync_leafmap(leafmap)
        expected = rows_digest(leafmap.snapshot_rows())

        serial_map = LeafMap(clock=clock, rows_per_block=256)
        started = time.perf_counter()
        recover_leafmap(backup, serial_map)
        serial_s = time.perf_counter() - started
        assert rows_digest(serial_map.snapshot_rows()) == expected

        parallel_map = LeafMap(clock=clock, rows_per_block=256)
        started = time.perf_counter()
        replay_leafmap(backup, parallel_map, workers=WORKERS, backend="process")
        parallel_s = time.perf_counter() - started
        assert rows_digest(parallel_map.snapshot_rows()) == expected

        speedup = serial_s / parallel_s
        record_result(
            "E17",
            f"legacy replay, {WORKERS} process workers vs serial",
            ">= 2x on >= 4 cores",
            f"{serial_s * 1000:.0f} ms vs {parallel_s * 1000:.0f} ms "
            f"({speedup:.2f}x on {os.cpu_count() or 1} cores)",
        )
        RESULTS["replay_seconds"] = {"serial": serial_s, "parallel": parallel_s}
        RESULTS["replay_speedup"] = speedup
        _dump_artifact()
        if (os.cpu_count() or 1) >= 4:
            assert speedup >= 2.0, (
                f"{WORKERS} process workers only {speedup:.2f}x the serial "
                f"replay on a {os.cpu_count()}-core host"
            )
        else:
            pytest.skip(
                f"measured {speedup:.2f}x on a {os.cpu_count() or 1}-core "
                "host (GIL/fork-bound); the >= 2x floor needs >= 4 cores"
            )

    def test_simulator_backs_both_floors(self, record_result):
        """The hardware model's claims hold regardless of host cores:
        the paper-profile chain cuts sync bytes ~5.7x and 4 process
        workers land ~3.2x on the Amdahl replay model (threads stay at
        1x — the decode loop holds the GIL)."""
        profile = paper_profile()
        reduction = profile.incremental_sync_reduction()
        process = profile.parallel_replay_speedup(WORKERS, "process")
        thread = profile.parallel_replay_speedup(WORKERS, "thread")
        assert reduction >= 5.0
        assert process >= 2.0
        assert thread == pytest.approx(1.0)
        # More workers than translate cores buys nothing extra.
        assert profile.parallel_replay_speedup(8, "process") == (
            pytest.approx(process)
        )
        record_result(
            "E17",
            "simulated sync-write reduction / replay speedup (4 workers)",
            ">= 5x bytes, >= 2x replay",
            f"{reduction:.1f}x bytes, {process:.2f}x process / "
            f"{thread:.2f}x thread replay",
        )
        RESULTS["sim"] = {
            "sync_write_reduction": reduction,
            "replay_speedup_process": process,
            "replay_speedup_thread": thread,
        }
        _dump_artifact()
