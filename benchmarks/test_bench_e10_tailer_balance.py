"""E10 — tailer routing: two random choices on free memory.

Paper (§2): the tailer probes two random leaves and sends the batch to
the one with more free memory, falling back through alive/recovering
states.  The claim to reproduce is qualitative: this keeps leaf memory
balanced (classic power-of-two-choices), and routing keeps working while
a slice of the cluster is restarting.
"""

import random

import pytest

from repro.disk.backup import DiskBackup
from repro.ingest.scribe import ScribeLog
from repro.ingest.tailer import Tailer
from repro.server.leaf import LeafServer

N_LEAVES = 16
N_ROWS = 20_000


def build_leaves(shm_namespace, tmp_path, clock, n=N_LEAVES):
    leaves = []
    for index in range(n):
        leaf = LeafServer(
            str(index),
            backup=DiskBackup(tmp_path / f"leaf-{index}"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=4096,
        )
        leaf.start()
        leaves.append(leaf)
    return leaves


def test_two_choices_balances_memory(benchmark, shm_namespace, tmp_path, clock, record_result):
    imbalance = {}

    def setup():
        leaves = build_leaves(shm_namespace, tmp_path / f"r{len(imbalance)}", clock)
        scribe = ScribeLog()
        scribe.append("t", ({"time": i, "pad": f"p{i % 7}"} for i in range(N_ROWS)))
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=250,
            rng=random.Random(99), clock=clock,
        )
        return (tailer, leaves), {}

    def run(tailer, leaves):
        delivered = tailer.drain()
        assert delivered == N_ROWS
        counts = [leaf.leafmap.row_count for leaf in leaves]
        imbalance["max_over_mean"] = max(counts) / (sum(counts) / len(counts))

    benchmark.pedantic(run, setup=setup, rounds=3)
    assert imbalance["max_over_mean"] < 2.0
    record_result("E10", "max/mean rows per leaf (two choices)",
                  "balanced (qualitative)", f"{imbalance['max_over_mean']:.2f}")


def test_routing_survives_a_restarting_slice(
    benchmark, shm_namespace, tmp_path, clock, record_result
):
    """With 25% of leaves down, every batch still lands on a live leaf
    and none is lost."""
    stats = {}

    def setup():
        leaves = build_leaves(shm_namespace, tmp_path / f"s{len(stats)}", clock)
        for leaf in leaves[: N_LEAVES // 4]:
            leaf.crash()
        scribe = ScribeLog()
        scribe.append("t", ({"time": i} for i in range(5_000)))
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=100,
            rng=random.Random(7), clock=clock,
        )
        return (tailer, leaves), {}

    def run(tailer, leaves):
        assert tailer.drain() == 5_000
        dead_rows = sum(
            leaf.leafmap.row_count for leaf in leaves[: N_LEAVES // 4]
        )
        assert dead_rows == 0
        stats["probes"] = tailer.stats.pair_probes

    benchmark.pedantic(run, setup=setup, rounds=3)
    record_result("E10", "batches lost with 25% of leaves down", "0", "0")


def test_random_choice_baseline_is_worse(benchmark, shm_namespace, tmp_path, clock, record_result):
    """Baseline comparison: route to ONE random leaf (no probing).
    Two-choices should end up tighter than the baseline on the same
    arrival sequence."""
    outcome = {}

    def setup():
        leaves = build_leaves(shm_namespace, tmp_path / f"b{len(outcome)}", clock, n=8)
        return (leaves,), {}

    def run(leaves):
        rng = random.Random(3)
        # Skewed row sizes make single-random-choice drift apart.
        for i in range(400):
            leaf = rng.choice(leaves)
            leaf.add_rows("t", [{"time": i, "pad": "x" * (1 + (i % 97))}] * 5)
        counts = [leaf.leafmap.row_count for leaf in leaves]
        outcome["baseline"] = max(counts) / (sum(counts) / len(counts))

    benchmark.pedantic(run, setup=setup, rounds=3)
    assert outcome["baseline"] > 1.0
    record_result("E10", "max/mean, single-random baseline", "worse than two-choices",
                  f"{outcome['baseline']:.2f}")
