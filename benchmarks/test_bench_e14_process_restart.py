"""E14 (extension) — restart latency over real OS processes.

Not a table in the paper, but the deployment-tooling view of E1: the
old *process* dies and the replacement *process* recovers, so the
measurement includes interpreter startup, the §4.3 wait-for-death loop,
and the JSON control channel — everything a real deploy pays besides
the data copy itself.

``test_upgrade_handoff_old_to_new_process`` is the paper's rollover in
miniature: the serving process shuts down into shared memory and is
replaced — in place via ``os.execv`` (same pid, new image) and via the
supervisor (new pid) — with a new ``--version``, and the data's content
digest must cross the swap untouched.  Set ``BENCH_E14_JSON`` to a path
to archive the measurements (CI uploads it as ``BENCH_e14.json``).
"""

import os
import time

import pytest

from _payload import dump_artifact
from repro.server.process_client import LeafProcess, LeafProcessConfig

N_ROWS = 8_000


def config(shm_namespace, tmp_path, leaf_id="b", supervised=False):
    return LeafProcessConfig(
        leaf_id=leaf_id,
        backup_dir=tmp_path / f"leaf-{leaf_id}",
        namespace=shm_namespace,
        rows_per_block=2048,
        supervised=supervised,
    )


@pytest.mark.slow
def test_process_restart_via_shared_memory(benchmark, shm_namespace, tmp_path, record_result):
    seed = LeafProcess(config(shm_namespace, tmp_path))
    seed.spawn()
    seed.add_rows("events", [{"time": i, "v": float(i % 7)} for i in range(N_ROWS)])
    seed.shutdown(use_shm=True)

    def setup():
        return (), {}

    def run():
        leaf = LeafProcess(config(shm_namespace, tmp_path))
        report = leaf.spawn()
        assert report["method"] == "shared_memory"
        assert report["rows"] == N_ROWS
        leaf.shutdown(use_shm=True)  # leave state for the next round

    benchmark.pedantic(run, setup=setup, rounds=5)
    # Consume the final generation's segments.
    final = LeafProcess(config(shm_namespace, tmp_path))
    final.spawn()
    final.shutdown(use_shm=False)
    record_result("E14", "process restart via shm (incl. spawn)", "seconds at scale",
                  f"{benchmark.stats['mean']:.2f} s wall (scaled)")


@pytest.mark.slow
def test_process_restart_via_disk(benchmark, shm_namespace, tmp_path, record_result):
    seed = LeafProcess(config(shm_namespace, tmp_path, leaf_id="d"))
    seed.spawn()
    seed.add_rows("events", [{"time": i, "v": float(i % 7)} for i in range(N_ROWS)])
    seed.shutdown(use_shm=False)

    def run():
        leaf = LeafProcess(config(shm_namespace, tmp_path, leaf_id="d"))
        report = leaf.spawn()
        # A clean shutdown seals and syncs every table, so the disk path
        # now takes the shm-format snapshot tier (E12) by default.
        assert report["method"] == "disk_snapshot"
        assert report["rows"] == N_ROWS
        leaf.shutdown(use_shm=False)

    benchmark.pedantic(run, rounds=5)
    record_result("E14", "process restart via disk snapshot (incl. spawn)",
                  "minutes at scale",
                  f"{benchmark.stats['mean']:.2f} s wall (scaled)")


@pytest.mark.slow
def test_upgrade_handoff_old_to_new_process(shm_namespace, tmp_path, record_result):
    """The real rollover handoff, both mechanisms, checksums matching."""
    results = {}
    for mode, supervised, leaf_id in (("execv", False, "x"), ("exit", True, "s")):
        leaf = LeafProcess(
            config(shm_namespace, tmp_path, leaf_id=leaf_id, supervised=supervised),
            request_timeout=60.0,
        )
        leaf.spawn()
        leaf.add_rows(
            "events", [{"time": i, "v": float(i % 11)} for i in range(N_ROWS)]
        )
        before = leaf.status()
        digest = leaf.digest()
        started = time.perf_counter()
        handoff = leaf.restart(mode=mode, version="v2")
        seconds = time.perf_counter() - started
        after = leaf.status()
        assert handoff["handoff"]["used_shm"] is True
        assert handoff["start"]["method"] == "shared_memory"
        assert handoff["start"]["rows"] == N_ROWS
        assert after["incarnation"] != before["incarnation"]
        if mode == "execv":
            assert after["pid"] == before["pid"], "execv keeps the pid"
        else:
            assert after["pid"] != before["pid"], "the supervisor respawns"
        assert after["version"] == "v2"
        assert leaf.digest() == digest, "the upgrade must not change the data"
        leaf.shutdown(use_shm=False)
        results[mode] = {
            "seconds": seconds,
            "pid_before": before["pid"],
            "pid_after": after["pid"],
            "incarnation_changed": True,
            "version_after": after["version"],
            "bytes_copied": handoff["handoff"]["bytes_copied"],
            "digest_matched": True,
        }
        record_result(
            "E14",
            f"old->new process upgrade handoff ({mode} mode)",
            "2-3 min slot at scale",
            f"{seconds:.2f} s wall (scaled), digest matched, "
            f"pid {before['pid']} -> {after['pid']}",
        )
    dump_artifact("E14", rows=N_ROWS, handoffs=results)


@pytest.mark.slow
def test_data_copy_dominates_at_scale(benchmark, shm_namespace, tmp_path, record_result):
    """The fixed process overhead (~0.5 s of interpreter+spawn here,
    seconds in production) is trivial next to a disk recovery and
    non-trivial next to an shm restore — which is exactly why the paper
    counts 'detect + initiate' in its 2-3 minute slot."""
    seed = LeafProcess(config(shm_namespace, tmp_path, leaf_id="o"))

    def run():
        leaf = LeafProcess(config(shm_namespace, tmp_path, leaf_id="o"))
        report = leaf.spawn()  # empty leaf: pure process overhead
        leaf.shutdown(use_shm=False)
        return report["seconds"]

    benchmark(run)
    record_result("E14", "pure process overhead (empty leaf)", "n/a",
                  f"{benchmark.stats['mean']:.2f} s")
