"""E14 (extension) — restart latency over real OS processes.

Not a table in the paper, but the deployment-tooling view of E1: the
old *process* dies and the replacement *process* recovers, so the
measurement includes interpreter startup, the §4.3 wait-for-death loop,
and the JSON control channel — everything a real deploy pays besides
the data copy itself.
"""

import pytest

from repro.server.process_client import LeafProcess, LeafProcessConfig

N_ROWS = 8_000


def config(shm_namespace, tmp_path, leaf_id="b"):
    return LeafProcessConfig(
        leaf_id=leaf_id,
        backup_dir=tmp_path / f"leaf-{leaf_id}",
        namespace=shm_namespace,
        rows_per_block=2048,
    )


@pytest.mark.slow
def test_process_restart_via_shared_memory(benchmark, shm_namespace, tmp_path, record_result):
    seed = LeafProcess(config(shm_namespace, tmp_path))
    seed.spawn()
    seed.add_rows("events", [{"time": i, "v": float(i % 7)} for i in range(N_ROWS)])
    seed.shutdown(use_shm=True)

    def setup():
        return (), {}

    def run():
        leaf = LeafProcess(config(shm_namespace, tmp_path))
        report = leaf.spawn()
        assert report["method"] == "shared_memory"
        assert report["rows"] == N_ROWS
        leaf.shutdown(use_shm=True)  # leave state for the next round

    benchmark.pedantic(run, setup=setup, rounds=5)
    # Consume the final generation's segments.
    final = LeafProcess(config(shm_namespace, tmp_path))
    final.spawn()
    final.shutdown(use_shm=False)
    record_result("E14", "process restart via shm (incl. spawn)", "seconds at scale",
                  f"{benchmark.stats['mean']:.2f} s wall (scaled)")


@pytest.mark.slow
def test_process_restart_via_disk(benchmark, shm_namespace, tmp_path, record_result):
    seed = LeafProcess(config(shm_namespace, tmp_path, leaf_id="d"))
    seed.spawn()
    seed.add_rows("events", [{"time": i, "v": float(i % 7)} for i in range(N_ROWS)])
    seed.shutdown(use_shm=False)

    def run():
        leaf = LeafProcess(config(shm_namespace, tmp_path, leaf_id="d"))
        report = leaf.spawn()
        # A clean shutdown seals and syncs every table, so the disk path
        # now takes the shm-format snapshot tier (E12) by default.
        assert report["method"] == "disk_snapshot"
        assert report["rows"] == N_ROWS
        leaf.shutdown(use_shm=False)

    benchmark.pedantic(run, rounds=5)
    record_result("E14", "process restart via disk snapshot (incl. spawn)",
                  "minutes at scale",
                  f"{benchmark.stats['mean']:.2f} s wall (scaled)")


@pytest.mark.slow
def test_data_copy_dominates_at_scale(benchmark, shm_namespace, tmp_path, record_result):
    """The fixed process overhead (~0.5 s of interpreter+spawn here,
    seconds in production) is trivial next to a disk recovery and
    non-trivial next to an shm restore — which is exactly why the paper
    counts 'detect + initiate' in its 2-3 minute slot."""
    seed = LeafProcess(config(shm_namespace, tmp_path, leaf_id="o"))

    def run():
        leaf = LeafProcess(config(shm_namespace, tmp_path, leaf_id="o"))
        report = leaf.spawn()  # empty leaf: pure process overhead
        leaf.shutdown(use_shm=False)
        return report["seconds"]

    benchmark(run)
    record_result("E14", "pure process overhead (empty leaf)", "n/a",
                  f"{benchmark.stats['mean']:.2f} s")
