"""E9 — crashes never use shared memory (Figure 5 / §4).

Paper: "We do not use shared memory to recover from a crash; the crash
may have been caused by memory corruption."  And Figure 7: "If this code
path is interrupted, the valid bit will be false on the next restart and
disk recovery will be executed."

These benches measure the *cost of the safety property*: recovery time
when the fast path must be refused, across the crash scenarios.
"""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.workloads import error_logs

N_ROWS = 12_000
ROWS_PER_BLOCK = 2048
TABLE = "error_logs"


def build_leafmap(clock):
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create(TABLE).add_rows(error_logs(N_ROWS))
    leafmap.seal_all()
    return leafmap


@pytest.fixture
def backup(tmp_path, clock):
    backup = DiskBackup(tmp_path / "backup")
    backup.sync_leafmap(build_leafmap(clock))
    return backup


def crash_point(point):
    def hook(name):
        if name == point:
            raise RuntimeError(f"injected crash at {name}")

    return hook


def test_crash_before_valid_bit(benchmark, shm_namespace, backup, clock, record_result):
    """Old process dies mid-copy: next boot must go to disk."""

    def setup():
        leafmap = build_leafmap(clock)
        engine = RestartEngine(
            "c", namespace=shm_namespace, backup=backup, clock=clock,
            fault_hook=crash_point("backup:before_valid"),
        )
        with pytest.raises(RuntimeError):
            engine.backup_to_shm(leafmap)
        return (), {}

    def run():
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        report = RestartEngine(
            "c", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        # Shared memory is refused; disk recovery takes the snapshot tier
        # because the sealed sync left a fresh snapshot.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.row_count == N_ROWS
        return report

    benchmark.pedantic(run, setup=setup, rounds=5)
    record_result("E9", "boot after mid-backup crash", "disk recovery",
                  f"disk recovery, {benchmark.stats['mean']:.3f} s (scaled)")


def test_crash_during_restore_falls_back(
    benchmark, shm_namespace, backup, clock, record_result
):
    """Interrupted restore: valid bit already false => same-process
    fallback to disk (Figure 5(b) exception edge)."""

    def setup():
        leafmap = build_leafmap(clock)
        RestartEngine("r", namespace=shm_namespace, backup=backup, clock=clock).backup_to_shm(
            leafmap
        )
        return (), {}

    def run():
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        report = RestartEngine(
            "r", namespace=shm_namespace, backup=backup, clock=clock,
            fault_hook=crash_point("restore:table"),
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.fell_back_to_disk
        assert restored.row_count == N_ROWS

    benchmark.pedantic(run, setup=setup, rounds=5)
    record_result("E9", "interrupted restore", "disk recovery", "disk recovery")


def test_unclean_process_death_loses_only_unsynced_tail(
    benchmark, shm_namespace, tmp_path, clock, record_result
):
    """A hard crash loses the rows after the last sync point — "a few
    thousand rows out of millions" is acceptable (§4.1)."""
    backup = DiskBackup(tmp_path / "crash-backup")

    def setup():
        leafmap = build_leafmap(clock)
        backup.wipe()
        backup.sync_leafmap(leafmap)
        leafmap.get_table(TABLE).add_rows(
            {"time": 2_000_000_000 + i} for i in range(500)
        )
        # The process dies here: no shutdown, no shm, no final sync.
        return (), {}

    def run():
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        report = RestartEngine(
            "u", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        # The unsynced tail never reached the manifest, so the snapshot
        # is still the trusted generation — fast tier, synced rows only.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.row_count == N_ROWS  # the 500-row tail is gone

    benchmark.pedantic(run, setup=setup, rounds=5)
    record_result("E9", "rows lost on hard crash", "unsynced tail only",
                  "500 unsynced of 12,500 (synced rows intact)")
