"""E4 — weekly availability under a weekly deploy cadence.

Paper (§1): "instead of having 100% of the data available only 93% of
the time with a 12 hour rollover once a week, Scuba is now fully
available 99.5% of the time."
"""

import pytest

from repro.sim import paper_profile, simulate_rollover, weekly_availability


def test_weekly_availability_disk_vs_shm(benchmark, record_result):
    def run():
        disk = simulate_rollover(paper_profile(), 100, "disk", 0.02)
        shm = simulate_rollover(paper_profile(), 100, "shm", 0.02)
        return (
            weekly_availability(disk.total_seconds),
            weekly_availability(shm.total_seconds),
        )

    disk_report, shm_report = benchmark(run)
    assert disk_report.fully_available_fraction == pytest.approx(0.93, abs=0.015)
    assert shm_report.fully_available_fraction == pytest.approx(0.995, abs=0.004)
    record_result("E4", "fully-available fraction, disk deploys", "93%",
                  f"{disk_report.fully_available_fraction:.1%}")
    record_result("E4", "fully-available fraction, shm deploys", "99.5%",
                  f"{shm_report.fully_available_fraction:.1%}")
    record_result("E4", "mean data availability, disk deploys", ">99.8%",
                  f"{disk_report.mean_data_availability:.2%}")


def test_deploy_cadence_sweep(benchmark, record_result):
    """The agility argument: with shm restarts, even daily deploys keep
    full availability above what weekly disk deploys managed."""

    def run():
        shm = simulate_rollover(paper_profile(), 100, "shm", 0.02)
        return [
            (per_week, weekly_availability(shm.total_seconds, per_week))
            for per_week in (1, 2, 5, 7)
        ]

    rows = benchmark(run)
    disk_weekly = weekly_availability(
        simulate_rollover(paper_profile(), 100, "disk", 0.02).total_seconds
    )
    for per_week, report in rows:
        record_result(
            "E4", f"shm deploys {per_week}x/week", "n/a",
            f"{report.fully_available_fraction:.1%} fully available",
        )
        assert report.fully_available_fraction > disk_weekly.fully_available_fraction
