"""E8 — the memory footprint stays flat during the copy.

Paper (§4.4): "there is still not enough physical memory free to
allocate enough space for it in shared memory, copy it all, and then
free it from the heap.  Instead, we copy data gradually, allocating
enough space for one row block column at a time [...] this method keeps
the total memory footprint of the leaf nearly unchanged during both
shutdown and restart."

Measured through the engine's logical memory tracker: the gradual
strategy peaks at ~1x the data (+ one in-flight table), while the naive
copy-everything-then-free strategy peaks at ~2x.
"""

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RestartEngine
from repro.shm.layout import table_segment_size, write_table_to_segment
from repro.shm.segment import ShmSegment
from repro.util.memtrack import MemoryTracker
from repro.workloads import service_requests

N_ROWS = 15_000
ROWS_PER_BLOCK = 1024
N_TABLES = 8  # the bound is per in-flight table; Scuba has hundreds


def build_leafmap(clock):
    """Rows spread over several tables, as on a real leaf: the gradual
    copy's transient overhead is one table's segment, so the more tables
    share the data, the flatter the footprint."""
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    rows = list(service_requests(N_ROWS))
    per_table = len(rows) // N_TABLES
    for index in range(N_TABLES):
        table = leafmap.get_or_create(f"service_requests_{index}")
        table.add_rows(rows[index * per_table : (index + 1) * per_table])
    leafmap.seal_all()
    return leafmap


def test_gradual_copy_keeps_footprint_flat(benchmark, shm_namespace, clock, record_result):
    peaks = {}

    def setup():
        return (build_leafmap(clock),), {}

    def run(leafmap):
        data_bytes = sum(t.sealed_nbytes for t in leafmap)
        tracker = MemoryTracker()
        engine = RestartEngine(
            "g", namespace=shm_namespace, clock=clock, tracker=tracker
        )
        engine.backup_to_shm(leafmap)
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        RestartEngine(
            "g", namespace=shm_namespace, clock=clock, tracker=tracker
        ).restore(restored)
        peaks["ratio"] = tracker.peak_total / data_bytes

    benchmark.pedantic(run, setup=setup, rounds=5)
    assert peaks["ratio"] < 1.35  # ~1x data, never ~2x
    record_result("E8", "peak footprint / data, gradual copy",
                  "~1x ('nearly unchanged')", f"{peaks['ratio']:.2f}x")


def test_naive_copy_then_free_needs_2x(benchmark, shm_namespace, clock, record_result):
    """The strategy the paper could not afford: allocate shm for all
    tables, copy everything, then free the heap."""
    peaks = {}

    def setup():
        return (build_leafmap(clock),), {}

    def run(leafmap):
        data_bytes = sum(t.sealed_nbytes for t in leafmap)
        tracker = MemoryTracker()
        tracker.allocate("heap", data_bytes)
        segments = []
        try:
            for index, table in enumerate(leafmap):
                blocks = table.blocks
                size = table_segment_size(table.name, blocks)
                segment = ShmSegment.create(f"{shm_namespace}-naive-{index}", size)
                tracker.allocate("shm", size)
                write_table_to_segment(segment, table.name, blocks)
                segments.append(segment)
            # Only now is the heap freed — after everything is copied.
            tracker.free("heap", data_bytes)
            peaks["ratio"] = tracker.peak_total / data_bytes
        finally:
            for segment in segments:
                segment.unlink()

    benchmark.pedantic(run, setup=setup, rounds=5)
    assert peaks["ratio"] > 1.9
    record_result("E8", "peak footprint / data, copy-then-free",
                  "~2x (unaffordable)", f"{peaks['ratio']:.2f}x")


def test_footprint_headroom_at_full_scale(benchmark, record_result):
    """144 GB of RAM, ~120 GB of data: a 2x strategy needs 240 GB and
    cannot run; the gradual strategy needs data + one RBC (<= 2 GB)."""

    def run():
        from repro.sim import paper_profile

        profile = paper_profile()
        ram = profile.machine_ram_gb
        data = profile.data_gb_per_machine
        max_rbc_gb = 2.0  # paper: RBCs capped at 2 GB
        return ram, data, data * 2, data + max_rbc_gb

    ram, data, naive_need, gradual_need = benchmark(run)
    assert naive_need > ram
    assert gradual_need < ram
    record_result("E8", "naive need vs 144 GB RAM", "does not fit",
                  f"{naive_need:.0f} GB > {ram:.0f} GB")
    record_result("E8", "gradual need vs 144 GB RAM", "fits",
                  f"{gradual_need:.0f} GB < {ram:.0f} GB")
