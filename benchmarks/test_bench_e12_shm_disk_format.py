"""E12 — future work (§6): use the shared memory layout as the disk format.

Paper: "One large overhead in Scuba's disk recovery is translating from
the disk format to the heap memory format. [...] We are planning to use
the shared memory format described in this paper as the disk format,
instead.  We expect that the much simpler translation to heap memory
format will speed up disk recovery significantly."

Measured for real, end to end through the restart engine's recovery
ladder: the same synced leaf restored via (a) legacy row-format replay
(``disk_snapshot_tier=False``) and (b) the shm-format snapshot tier, plus
the torn-snapshot fallback path and the cost model's 120 GB projection.
"""

import uuid

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.sim import paper_profile
from repro.workloads import ads_revenue

N_ROWS = 25_000
ROWS_PER_BLOCK = 4096
_ratio = {}


def build_backup(tmp_path, clock):
    """A sealed, fully-synced leaf whose snapshots are fresh."""
    backup = DiskBackup(tmp_path / "backup")
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create("ads_revenue").add_rows(ads_revenue(N_ROWS))
    leafmap.seal_all()
    backup.sync_leafmap(leafmap)
    assert backup.snapshots_ready()
    return backup, leafmap.snapshot_rows()


def restore(backup, clock, **engine_kwargs):
    restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    report = RestartEngine(
        "e12",
        namespace=f"reprobench-{uuid.uuid4().hex[:8]}",
        backup=backup,
        clock=clock,
        **engine_kwargs,
    ).restore(restored)
    return restored, report


def test_recover_legacy_row_format(benchmark, tmp_path, clock, record_result):
    backup, _ = build_backup(tmp_path, clock)

    def run():
        restored, report = restore(backup, clock, disk_snapshot_tier=False)
        assert report.method is RecoveryMethod.DISK
        assert report.rows == N_ROWS

    benchmark(run)
    _ratio["legacy"] = benchmark.stats["mean"]
    record_result("E12", "disk recovery, legacy row format (scaled)",
                  "slow (translation-bound)", f"{benchmark.stats['mean']:.3f} s")


def test_recover_snapshot_tier(benchmark, tmp_path, clock, record_result):
    backup, _ = build_backup(tmp_path, clock)

    def run():
        restored, report = restore(backup, clock)
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.rows == N_ROWS

    benchmark(run)
    _ratio["snapshot"] = benchmark.stats["mean"]
    if "legacy" in _ratio:
        speedup = _ratio["legacy"] / _ratio["snapshot"]
        assert speedup >= 3  # the E12 acceptance floor
        record_result("E12", "snapshot-tier speedup over legacy replay",
                      "'significantly' faster", f"{speedup:.0f}x")
    record_result("E12", "disk recovery, shm-format snapshot tier (scaled)",
                  "near copy speed", f"{benchmark.stats['mean']:.3f} s")


def test_torn_snapshot_falls_back_identically(
    benchmark, tmp_path, clock, record_result
):
    """A torn snapshot must cost only time: the ladder routes down to
    legacy replay and recovers the identical rows."""
    backup, snapshot = build_backup(tmp_path, clock)
    path = backup.snapshot_path("ads_revenue")
    path.write_bytes(path.read_bytes()[:128])

    def run():
        restored, report = restore(backup, clock)
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_legacy
        assert restored.snapshot_rows() == snapshot

    benchmark.pedantic(run, rounds=2)
    record_result("E12", "torn snapshot -> legacy fallback",
                  "identical rows", "identical")


def test_full_scale_projection(benchmark, record_result):
    """The cost model's projection of §6's plan at 120 GB per machine."""

    def run():
        old = paper_profile().disk_restart_seconds(1)
        new = paper_profile().disk_snapshot_restart_seconds(1)
        return old, new

    old, new = benchmark(run)
    assert new < old / 2
    record_result("E12", "per-leaf disk restart, snapshot tier (sim)",
                  "significantly faster", f"{old / 60:.1f} min -> {new / 60:.1f} min")
