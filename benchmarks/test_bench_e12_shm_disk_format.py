"""E12 — future work (§6): use the shared memory layout as the disk format.

Paper: "One large overhead in Scuba's disk recovery is translating from
the disk format to the heap memory format. [...] We are planning to use
the shared memory format described in this paper as the disk format,
instead.  We expect that the much simpler translation to heap memory
format will speed up disk recovery significantly."

Measured for real: recovery of the same table from (a) the legacy
row-format backup and (b) the shm-format snapshot.
"""

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.recovery import recover_leafmap
from repro.disk.shmformat import recover_leafmap_shm_format, write_leafmap_shm_format
from repro.sim import paper_profile
from repro.workloads import ads_revenue

N_ROWS = 25_000
ROWS_PER_BLOCK = 4096
_ratio = {}


def build_leafmap(clock):
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create("ads_revenue").add_rows(ads_revenue(N_ROWS))
    leafmap.seal_all()
    return leafmap


def test_recover_legacy_row_format(benchmark, tmp_path, clock, record_result):
    backup = DiskBackup(tmp_path / "legacy")
    backup.sync_leafmap(build_leafmap(clock))

    def run():
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        assert recover_leafmap(backup, restored) == N_ROWS

    benchmark(run)
    _ratio["legacy"] = benchmark.stats["mean"]
    record_result("E12", "disk recovery, legacy row format (scaled)",
                  "slow (translation-bound)", f"{benchmark.stats['mean']:.3f} s")


def test_recover_shm_disk_format(benchmark, tmp_path, clock, record_result):
    directory = tmp_path / "shmfmt"
    write_leafmap_shm_format(directory, build_leafmap(clock))

    def run():
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        assert recover_leafmap_shm_format(directory, restored) == N_ROWS

    benchmark(run)
    _ratio["shmfmt"] = benchmark.stats["mean"]
    if "legacy" in _ratio:
        speedup = _ratio["legacy"] / _ratio["shmfmt"]
        assert speedup > 5
        record_result("E12", "shm-format recovery speedup over legacy",
                      "'significantly' faster", f"{speedup:.0f}x")
    record_result("E12", "disk recovery, shm disk format (scaled)",
                  "near copy speed", f"{benchmark.stats['mean']:.3f} s")


def test_formats_recover_identical_data(benchmark, tmp_path, clock, record_result):
    legacy = DiskBackup(tmp_path / "legacy-eq")
    leafmap = build_leafmap(clock)
    legacy.sync_leafmap(leafmap)
    directory = tmp_path / "shmfmt-eq"
    write_leafmap_shm_format(directory, leafmap)

    def run():
        a = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        recover_leafmap(legacy, a)
        b = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        recover_leafmap_shm_format(directory, b)
        assert a.snapshot_rows() == b.snapshot_rows()

    benchmark.pedantic(run, rounds=2)
    record_result("E12", "legacy vs shm-format recovered data", "identical", "identical")


def test_full_scale_projection(benchmark, record_result):
    """The cost model's projection of §6's plan at 120 GB."""

    def run():
        old = paper_profile().disk_restart_seconds(1)
        new = paper_profile().with_shm_disk_format().disk_restart_seconds(1)
        return old, new

    old, new = benchmark(run)
    assert new < old / 2
    record_result("E12", "per-leaf disk restart, shm disk format (sim)",
                  "significantly faster", f"{old / 60:.1f} min -> {new / 60:.1f} min")
