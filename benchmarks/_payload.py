"""Shared ``BENCH_eNN.json`` artifact writer for the benchmark suite.

Every experiment that archives measurements for CI uses the same shape:
an env var named ``BENCH_<EXPERIMENT>_JSON`` opts in, and the payload
always carries the experiment id and the host's core count next to the
experiment-specific fields.  E13–E17 each hand-rolled this; new
experiments should call :func:`dump_artifact` instead.
"""

from __future__ import annotations

import json
import os


def artifact_path(experiment: str) -> str | None:
    """Where ``experiment``'s JSON artifact goes, or None if not asked."""
    return os.environ.get(f"BENCH_{experiment.upper()}_JSON")


def build_payload(experiment: str, **fields) -> dict:
    """The common artifact shape: experiment id + cpu_count + fields."""
    return {
        "experiment": experiment,
        "cpu_count": os.cpu_count() or 1,
        **fields,
    }


def dump_artifact(experiment: str, **fields) -> str | None:
    """Write the artifact if its env var opts in; returns the path.

    ``dump_artifact("E18", rows=..., routes=...)`` writes the payload to
    ``$BENCH_E18_JSON`` and is a no-op when the variable is unset (the
    normal local run).
    """
    path = artifact_path(experiment)
    if not path:
        return None
    with open(path, "w") as fh:
        json.dump(build_payload(experiment, **fields), fh, indent=2)
    return path
