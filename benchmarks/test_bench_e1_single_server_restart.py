"""E1 — restart one server: disk vs shared memory.

Paper (§1, §6): disk recovery takes 2.5-3 hours per machine; shared
memory recovery takes 2-3 minutes per server — roughly a 60x gap.

Measured here twice: (a) for real, on a scaled-down leaf (tens of MB),
where the same code paths show the same ordering; (b) through the
calibrated cost model at full 120 GB scale, where the absolute numbers
land inside the paper's ranges.
"""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.sim import paper_profile, simulate_machine_recovery
from repro.workloads import service_requests

N_ROWS = 20_000
ROWS_PER_BLOCK = 4096


def build_leafmap(clock):
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create("service_requests").add_rows(service_requests(N_ROWS))
    leafmap.seal_all()
    return leafmap


@pytest.fixture
def synced_backup(tmp_path, clock):
    backup = DiskBackup(tmp_path / "backup")
    backup.sync_leafmap(build_leafmap(clock))
    return backup


def test_restart_from_disk(benchmark, synced_backup, shm_namespace, clock, record_result):
    """The slow path: read every row and re-translate it to columns.

    This is the paper's 2.5-3 h baseline, so the snapshot fast tier
    (E12) is pinned off — legacy row-format replay only.
    """

    def run():
        engine = RestartEngine(
            "d",
            namespace=shm_namespace,
            backup=synced_backup,
            clock=clock,
            disk_snapshot_tier=False,
        )
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        report = engine.restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert restored.row_count == N_ROWS
        return report

    benchmark(run)
    record_result("E1", "disk restart (scaled, 20k rows)", "2.5-3 h @ 120 GB",
                  f"{benchmark.stats['mean']:.3f} s")


def test_restart_from_shared_memory(benchmark, shm_namespace, clock, record_result):
    """The fast path: attach and copy row block columns back to heap."""

    def setup():
        leafmap = build_leafmap(clock)
        engine = RestartEngine("s", namespace=shm_namespace, clock=clock)
        engine.backup_to_shm(leafmap)
        return (), {}

    def run():
        engine = RestartEngine("s", namespace=shm_namespace, clock=clock)
        restored = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        report = engine.restore(restored)
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert restored.row_count == N_ROWS

    benchmark.pedantic(run, setup=setup, rounds=10)
    record_result("E1", "shm restart (scaled, 20k rows)", "2-3 min @ 120 GB",
                  f"{benchmark.stats['mean']:.3f} s")


def test_full_scale_factor_via_cost_model(benchmark, record_result):
    """120 GB scale: the paper's machine-level numbers from the model."""

    def run():
        profile = paper_profile()
        disk = simulate_machine_recovery(profile, "disk", "all_at_once")
        shm = simulate_machine_recovery(profile, "shm", "sequential")
        return disk.total_seconds, shm.total_seconds

    disk_s, shm_s = benchmark(run)
    assert 2.2 * 3600 <= disk_s <= 3.0 * 3600
    assert shm_s <= 3 * 60
    benchmark.extra_info["disk_hours"] = disk_s / 3600
    benchmark.extra_info["shm_minutes"] = shm_s / 60
    benchmark.extra_info["speedup"] = disk_s / shm_s
    record_result("E1", "machine disk recovery (sim)", "2.5-3 h", f"{disk_s / 3600:.2f} h")
    record_result("E1", "machine shm recovery (sim)", "2-3 min", f"{shm_s / 60:.2f} min")
    record_result("E1", "disk/shm speedup (sim)", "~60x", f"{disk_s / shm_s:.0f}x")
