"""E2 — where disk recovery spends its time: read vs translate.

Paper (§1): "Reading about 120 GB of data from disk takes 20-25 minutes;
reading that data in its disk format and translating it to its in-memory
format takes 2.5-3 hours" — i.e. translation dominates by ~7x.

Measured for real by splitting our disk recovery into its two phases:
parsing the row-format chunks (the read) and rebuilding compressed row
blocks (the translate).
"""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.recovery import recover_table_rows
from repro.sim import paper_profile
from repro.workloads import service_requests

N_ROWS = 25_000
ROWS_PER_BLOCK = 4096
TABLE = "service_requests"


@pytest.fixture(scope="module")
def synced_backup(tmp_path_factory):
    from repro.util.clock import ManualClock

    clock = ManualClock(0.0)
    backup = DiskBackup(tmp_path_factory.mktemp("e2") / "backup")
    leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
    leafmap.get_or_create(TABLE).add_rows(service_requests(N_ROWS))
    backup.sync_leafmap(leafmap)
    return backup


def test_read_phase(benchmark, synced_backup, record_result):
    """Parse the disk format into rows (no columnar translation)."""

    def run():
        rows = list(recover_table_rows(synced_backup, TABLE))
        assert len(rows) == N_ROWS
        return rows

    benchmark(run)
    record_result("E2", "read phase (scaled)", "20-25 min @ 120 GB",
                  f"{benchmark.stats['mean']:.3f} s")


def test_translate_phase(benchmark, synced_backup, clock, record_result):
    """Columnarize + compress already-read rows (the dominant cost)."""
    rows = list(recover_table_rows(synced_backup, TABLE))

    def run():
        leafmap = LeafMap(clock=clock, rows_per_block=ROWS_PER_BLOCK)
        table = leafmap.create_table(TABLE)
        table.add_rows(rows)
        table.seal_buffer()
        assert table.row_count == N_ROWS

    benchmark(run)
    record_result("E2", "translate phase (scaled)", "~2.2-2.6 h @ 120 GB",
                  f"{benchmark.stats['mean']:.3f} s")


def test_translation_dominates(benchmark, synced_backup, clock, record_result):
    """The shape claim: translate >= read (paper has ~7x at full scale;
    the model reproduces that exactly)."""

    def run():
        profile = paper_profile()
        nbytes = profile.data_bytes_per_leaf
        return profile.disk_read_seconds(nbytes), profile.translate_seconds(nbytes)

    read_s, translate_s = benchmark(run)
    ratio = translate_s / read_s
    assert ratio > 2
    benchmark.extra_info["translate_over_read"] = ratio
    record_result("E2", "translate/read ratio (sim)", "~7x", f"{ratio:.1f}x")
