"""E5 — N leaf servers per machine multiply restart bandwidth.

Paper (§2, §6): "By running N leaf servers on each machine (instead of
only one leaf server), we increase the number of restarting servers by a
factor of N [...] and we get close to N times as much disk bandwidth
(for disk recovery) and memory bandwidth (for shared memory recovery)."
With 100 machines and one leaf each, a 2% policy can restart only 2
servers at a time; with 800 leaves, 16 servers on 16 machines.
"""

from dataclasses import replace

import pytest

from repro.sim import paper_profile, simulate_rollover
from repro.sim.hardware import HOUR


@pytest.mark.parametrize("leaves", [1, 2, 4, 8])
def test_disk_rollover_scales_with_leaves_per_machine(
    benchmark, leaves, record_result
):
    profile = replace(paper_profile(), leaves_per_machine=leaves)
    result = benchmark(simulate_rollover, profile, 100, "disk", 0.02)
    benchmark.extra_info["hours"] = result.total_seconds / HOUR
    benchmark.extra_info["concurrent_restarts"] = result.batch_size
    record_result(
        "E5",
        f"disk rollover, {leaves} leaves/machine",
        "8 leaves => ~12 h; 1 leaf => ~8x slower",
        f"{result.total_seconds / HOUR:.1f} h ({result.batch_size} concurrent)",
    )


def test_eight_leaves_beat_one_by_nearly_8x(benchmark, record_result):
    one = benchmark(
        simulate_rollover,
        replace(paper_profile(), leaves_per_machine=1), 100, "disk", 0.02,
    )
    eight = simulate_rollover(paper_profile(), 100, "disk", 0.02)
    # Compare restart spans (the deployment overhead is constant).
    factor = one.restart_seconds / eight.restart_seconds
    assert 5.0 <= factor <= 8.5
    record_result("E5", "speedup of 8 leaves/machine over 1", "close to 8x",
                  f"{factor:.1f}x")


def test_concurrent_restarts_match_paper_example(benchmark, record_result):
    """§2's worked example: 100 machines, 2% policy — 2 concurrent
    restarts with one leaf per machine, 16 with eight."""
    one = benchmark(
        simulate_rollover,
        replace(paper_profile(), leaves_per_machine=1), 100, "disk", 0.02,
    )
    eight = simulate_rollover(paper_profile(), 100, "disk", 0.02)
    assert one.batch_size == 2
    assert eight.batch_size == 16
    record_result("E5", "concurrent restarts, 1 leaf/machine", "2", str(one.batch_size))
    record_result("E5", "concurrent restarts, 8 leaves/machine", "16", str(eight.batch_size))
