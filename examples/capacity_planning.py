#!/usr/bin/env python3
"""Full-scale restart arithmetic: the paper's numbers from the cost model.

Uses the calibrated :class:`HardwareProfile` (144 GB machines, 120 GB of
data, 8 leaves, 2014 spinning disks) to regenerate every headline figure
in the paper, then explores the design space the way a capacity planner
would:

- leaves-per-machine sweep (the Section 6 "factor of N" argument),
- batch-fraction sweep (availability vs rollover duration),
- the Section 6 future-work variants: SSDs, and the shared-memory
  layout used as the disk format (experiment E12).

Run:  python examples/capacity_planning.py
"""

from repro import paper_profile, simulate_rollover
from repro.sim import simulate_leaf_restart, simulate_machine_recovery, weekly_availability
from repro.sim.hardware import HOUR, MINUTE

from dataclasses import replace


def fmt(seconds: float) -> str:
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.1f} min"
    return f"{seconds:.1f} s"


def headline_table() -> None:
    profile = paper_profile()
    disk_machine = simulate_machine_recovery(profile, "disk", "all_at_once")
    rollover_disk = simulate_rollover(profile, 100, "disk", 0.02)
    rollover_shm = simulate_rollover(profile, 100, "shm", 0.02)
    rows = [
        ("read 120 GB from disk (one machine)", "20-25 min",
         fmt(profile.data_gb_per_machine * 1e9 / (profile.disk_read_mbps * 1e6))),
        ("machine disk recovery (read+translate)", "2.5-3 h",
         fmt(disk_machine.total_seconds)),
        ("copy one leaf to shared memory", "3-4 s",
         fmt(profile.shm_shutdown_seconds())),
        ("shm rollover slot per leaf (incl. detection)", "2-3 min",
         fmt(profile.shm_restart_seconds() + profile.detection_overhead_s)),
        ("cluster rollover from disk, 2% at a time", "10-12 h",
         fmt(rollover_disk.total_seconds)),
        ("cluster rollover via shared memory", "< 1 h",
         fmt(rollover_shm.total_seconds)),
        ("weekly full availability, disk deploys", "93%",
         f"{weekly_availability(rollover_disk.total_seconds).fully_available_fraction:.1%}"),
        ("weekly full availability, shm deploys", "99.5%",
         f"{weekly_availability(rollover_shm.total_seconds).fully_available_fraction:.1%}"),
    ]
    print(f"{'quantity':48s} {'paper':>10s} {'model':>10s}")
    for name, paper, model in rows:
        print(f"{name:48s} {paper:>10s} {model:>10s}")


def leaves_per_machine_sweep() -> None:
    print("\n== leaves per machine (Section 6: 'a factor of N') ==")
    print(f"{'leaves':>7s} {'disk rollover':>14s} {'shm rollover':>13s}")
    for n in (1, 2, 4, 8, 16):
        profile = replace(paper_profile(), leaves_per_machine=n)
        disk = simulate_rollover(profile, 100, "disk", 0.02)
        shm = simulate_rollover(profile, 100, "shm", 0.02)
        print(f"{n:>7d} {fmt(disk.total_seconds):>14s} {fmt(shm.total_seconds):>13s}")


def batch_fraction_sweep() -> None:
    print("\n== batch fraction: duration vs availability (disk) ==")
    print(f"{'batch':>6s} {'duration':>10s} {'min avail':>10s}")
    for fraction in (0.01, 0.02, 0.05, 0.10, 0.25):
        result = simulate_rollover(paper_profile(), 100, "disk", fraction)
        print(f"{fraction:>6.0%} {fmt(result.total_seconds):>10s} "
              f"{result.min_availability:>10.1%}")


def straggler_sweep() -> None:
    print("\n== stragglers: shm shutdowns killed at the deadline (-> disk) ==")
    print(f"{'failure rate':>13s} {'shm rollover':>13s} {'stragglers':>11s}")
    for rate in (0.0, 0.01, 0.05, 0.10):
        result = simulate_rollover(
            paper_profile(), 100, "shm", 0.02, shm_failure_rate=rate, seed=1
        )
        print(f"{rate:>13.0%} {fmt(result.total_seconds):>13s} "
              f"{result.stragglers:>11d}")


def future_work_variants() -> None:
    print("\n== Section 6 variants: per-leaf disk restart ==")
    base = paper_profile()
    variants = [
        ("2014 spinning disk + row format", base),
        ("SSD + row format", base.with_ssd()),
        ("spinning disk + shm disk format (E12)", base.with_shm_disk_format()),
        ("SSD + shm disk format", base.with_ssd().with_shm_disk_format()),
    ]
    shm = simulate_leaf_restart(base, "shm").total_seconds
    for name, profile in variants:
        restart = simulate_leaf_restart(profile, "disk")
        print(f"  {name:40s} {fmt(restart.total_seconds):>9s}")
    print(f"  {'shared memory restart (for reference)':40s} {fmt(shm):>9s}")


def main() -> None:
    print("== paper vs calibrated model (100 machines x 8 leaves) ==")
    headline_table()
    leaves_per_machine_sweep()
    batch_fraction_sweep()
    straggler_sweep()
    future_work_variants()


if __name__ == "__main__":
    main()
