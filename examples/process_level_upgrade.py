#!/usr/bin/env python3
"""A rolling upgrade over REAL operating system processes.

This is the closest this repository gets to the paper's production
setup: each leaf server is its own OS process (heap dies with it), the
deployment tooling issues shutdown commands and waits-or-kills (§4.3),
and replacements attach to the shared memory their predecessors left.

The script also exercises the operator tooling: the shared memory
inspector between the old process's death and the new one's birth, the
rollover monitor's ETA line, and a time-series view that stays identical
across the upgrade.

Run:  python examples/process_level_upgrade.py
"""

import tempfile
import uuid

from repro import Aggregation, Query
from repro.cluster.deploy import ProcessDeployment
from repro.cluster.monitor import RolloverMonitor, format_progress
from repro.query.render import render_timeseries
from repro.shm.inspect import format_leaf_info, inspect_leaf
from repro.workloads import service_requests

NAMESPACE = f"procdemo-{uuid.uuid4().hex[:8]}"
N_LEAVES = 4
SERIES_QUERY = Query(
    "service_requests",
    aggregations=(Aggregation("avg", "latency_ms"),),
    group_by=("datacenter",),
    bucket_seconds=120,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print(f"== spawn {N_LEAVES} leaf server processes ==")
        deployment = ProcessDeployment(
            tmp, n_leaves=N_LEAVES, namespace=NAMESPACE, rows_per_block=2048
        )
        try:
            for report in deployment.start_all():
                print(f"  leaf up via {report['method']}")
            deployment.ingest(
                "service_requests", list(service_requests(12_000)), batch_rows=1000
            )
            deployment.sync_all()

            print("\n== latency time series before the upgrade ==")
            before = deployment.query(SERIES_QUERY)
            print(render_timeseries(before, "avg(latency_ms)", width=50))

            print("\n== peek at leaf 0's shared memory before any shutdown ==")
            print(format_leaf_info(inspect_leaf(NAMESPACE, "0")))

            print("\n== shut leaf 0 down cleanly and inspect what it left ==")
            deployment.leaves[0].shutdown(use_shm=True)
            info = inspect_leaf(NAMESPACE, "0")
            print(format_leaf_info(info))
            assert info.recoverable
            deployment.leaves[0].spawn()

            print("\n== full rolling upgrade v1 -> v2, one leaf at a time ==")
            result = deployment.rolling_upgrade("v2", batch_fraction=1 / N_LEAVES)
            monitor = RolloverMonitor(result.dashboard, stall_seconds=300)
            print(format_progress(monitor.progress()))
            print(f"  clean shutdowns: {result.clean_shutdowns}, "
                  f"killed: {result.killed}, recovered via: {result.recovered_via}")
            assert result.recovered_via == {"shared_memory": N_LEAVES}

            print("\n== the same time series after the upgrade ==")
            after = deployment.query(SERIES_QUERY)
            print(render_timeseries(after, "avg(latency_ms)", width=50))
            assert [(r.group, r.values) for r in before.rows] == [
                (r.group, r.values) for r in after.rows
            ]
            print("\nseries identical across the process-level upgrade ✓")
        finally:
            deployment.stop_all()


if __name__ == "__main__":
    main()
