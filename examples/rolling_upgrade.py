#!/usr/bin/env python3
"""A rolling cluster upgrade with the Figure-8 dashboard.

Builds an in-process cluster (6 machines x 4 leaves), loads all four
motivating workloads through Scribe + tailers, then upgrades every leaf
to a new binary version 2 leaves at a time — first through shared
memory, then (for contrast) through disk recovery — while asserting that
every dashboard query returns identical answers afterwards.

Run:  python examples/rolling_upgrade.py
"""

import random
import tempfile
import time
import uuid

from repro import Cluster, RolloverCoordinator, render_dashboard
from repro.workloads import SCENARIOS, populate_cluster

NAMESPACE = f"upgrade-{uuid.uuid4().hex[:8]}"


def snapshot_dashboards(cluster):
    return {
        name: [(row.group, row.values) for row in cluster.query(s.query).rows]
        for name, s in SCENARIOS.items()
    }


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        print("== build a 6-machine x 4-leaf cluster and load workloads ==")
        cluster = Cluster(
            6, tmp, leaves_per_machine=4, namespace=NAMESPACE,
            rows_per_block=2048, rng=random.Random(42),
        )
        cluster.start_all()
        total = populate_cluster(cluster, rows_per_scenario=5_000)
        cluster.sync_all()
        print(f"{total:,} rows across {len(SCENARIOS)} tables on "
              f"{len(cluster.leaves)} leaves")

        before = snapshot_dashboards(cluster)
        for name, rows in before.items():
            print(f"  {name:12s} -> {len(rows)} groups")

        print("\n== rollover v1 -> v2 via SHARED MEMORY, 2 leaves at a time ==")
        t0 = time.perf_counter()
        result = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=2 / 24, use_shm=True
        ).run()
        shm_wall = time.perf_counter() - t0
        print(f"{result.leaves_restarted} leaves in {result.batches} batches, "
              f"{shm_wall:.2f}s wall, min availability "
              f"{result.min_availability:.1%}")
        print(render_dashboard(result.dashboard, width=48, max_rows=8))

        assert snapshot_dashboards(cluster) == before, "data changed across upgrade!"
        print("every dashboard query identical after the upgrade ✓")

        print("\n== rollover v2 -> v3 via DISK RECOVERY (the old way) ==")
        t0 = time.perf_counter()
        result = RolloverCoordinator(
            cluster, new_version="v3", batch_fraction=2 / 24, use_shm=False
        ).run()
        disk_wall = time.perf_counter() - t0
        print(f"{result.leaves_restarted} leaves in {result.batches} batches, "
              f"{disk_wall:.2f}s wall")
        assert snapshot_dashboards(cluster) == before
        print("dashboards identical again ✓  (disk recovery re-translated "
              "every row)")

        print(f"\nshared memory rollover was {disk_wall / shm_wall:.1f}x faster "
              f"at this scale; the sim (examples/capacity_planning.py) shows "
              f"the 12h -> <1h gap at Facebook scale")


if __name__ == "__main__":
    main()
