#!/usr/bin/env python3
"""Quickstart: a leaf server restarting through shared memory — for real.

This script:

1. boots a leaf server, ingests 30,000 monitoring rows, runs a query;
2. shuts the leaf down with the Figure-6 shared memory backup and lets
   the process state die with this snippet's objects;
3. starts a *separate operating system process* that attaches to the
   shared memory, restores (Figure 7), and answers the same query;
4. compares against a disk restart of the same data, so you can see the
   read-and-translate gap the paper is about (scaled down ~10,000x, the
   ratio still shows).

Run:  python examples/quickstart.py
"""

import subprocess
import sys
import tempfile
import textwrap
import time
import uuid
from pathlib import Path

from repro import Aggregation, DiskBackup, LeafServer, Query
from repro.query.aggregate import merge_leaf_results
from repro.workloads import service_requests

NAMESPACE = f"quickstart-{uuid.uuid4().hex[:8]}"
N_ROWS = 30_000

QUERY_SNIPPET = """
    import json, sys, time
    from repro import Aggregation, DiskBackup, LeafServer, Query
    from repro.query.aggregate import merge_leaf_results

    backup_dir, namespace = sys.argv[1], sys.argv[2]
    t0 = time.perf_counter()
    leaf = LeafServer("0", backup=DiskBackup(backup_dir), namespace=namespace)
    report = leaf.start()
    elapsed = time.perf_counter() - t0
    query = Query(
        "service_requests",
        aggregations=(Aggregation("count"), Aggregation("p99", "latency_ms")),
        group_by=("endpoint",),
    )
    result = merge_leaf_results(query, [leaf.query(query).partial], 1)
    print(json.dumps({
        "method": report.method.value,
        "restore_seconds": elapsed,
        "rows": leaf.leafmap.row_count,
        "endpoints": len(result.rows),
    }))
"""


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        backup_dir = str(Path(tmp) / "backup")

        print(f"== 1. boot a fresh leaf and ingest {N_ROWS:,} rows ==")
        leaf = LeafServer("0", backup=DiskBackup(backup_dir), namespace=NAMESPACE)
        leaf.start()
        t0 = time.perf_counter()
        leaf.add_rows("service_requests", service_requests(N_ROWS))
        print(f"ingested in {time.perf_counter() - t0:.2f}s, "
              f"compressed to {leaf.used_bytes / 1e6:.2f} MB")

        query = Query(
            "service_requests",
            aggregations=(Aggregation("count"), Aggregation("p99", "latency_ms")),
            group_by=("endpoint",),
        )
        result = merge_leaf_results(query, [leaf.query(query).partial], 1)
        print(f"query before restart: {len(result.rows)} endpoints, "
              f"{sum(r.values['count(*)'] for r in result.rows):,} rows")

        print("\n== 2. clean shutdown: copy heap -> shared memory, exit ==")
        t0 = time.perf_counter()
        report = leaf.shutdown(use_shm=True)
        shutdown_s = time.perf_counter() - t0
        print(f"copied {report.bytes_copied / 1e6:.2f} MB in {report.rbc_copies} "
              f"row-block-column memcpys, {shutdown_s:.3f}s")

        print("\n== 3. a brand-new process restores from shared memory ==")
        out = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(QUERY_SNIPPET),
             backup_dir, NAMESPACE],
            capture_output=True, text=True, check=True,
        )
        import json

        shm_boot = json.loads(out.stdout)
        print(f"method={shm_boot['method']}  rows={shm_boot['rows']:,}  "
              f"restore={shm_boot['restore_seconds']:.3f}s  "
              f"endpoints={shm_boot['endpoints']}")
        assert shm_boot["method"] == "shared_memory"

        print("\n== 4. same data, restarting from the disk backup instead ==")
        out = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(QUERY_SNIPPET),
             backup_dir, NAMESPACE],
            capture_output=True, text=True, check=True,
        )
        disk_boot = json.loads(out.stdout)
        print(f"method={disk_boot['method']}  rows={disk_boot['rows']:,}  "
              f"restore={disk_boot['restore_seconds']:.3f}s")
        # The clean shutdown synced a fresh shm-format snapshot, so disk
        # recovery takes the fast snapshot tier (paper §6 / E12).
        assert disk_boot["method"] == "disk_snapshot"

        print(f"\nat this toy scale both fast paths are milliseconds "
              f"(shm {shm_boot['restore_seconds']:.3f}s, snapshot tier "
              f"{disk_boot['restore_seconds']:.3f}s); run "
              f"`python -m repro bench-restart --disk-tier` to see either "
              f"beat legacy row-format replay by orders of magnitude")


if __name__ == "__main__":
    main()
