#!/usr/bin/env python3
"""The paper's motivating use case: detecting user-facing errors *during*
a software rollout.

Scuba's most critical job is spotting error spikes within seconds.  The
catch-22 the paper solves: upgrading Scuba itself used to take the error
dashboards down for hours.  This example runs an error-spike detector
against a live cluster while that same cluster is being upgraded:

- tailers keep feeding the ``error_logs`` table around restarting leaves;
- mid-rollover queries return partial-but-useful results (coverage is
  reported to the user, as in the Scuba GUI);
- the injected error spike is detected even while leaves are restarting.

Run:  python examples/error_monitoring.py
"""

import random
import tempfile
import uuid

from repro import Aggregation, Cluster, Filter, Query, RolloverCoordinator
from repro.workloads import error_logs

NAMESPACE = f"errmon-{uuid.uuid4().hex[:8]}"
TABLE = "error_logs"
BASE_TIME = 1_390_000_000

SPIKE_QUERY = Query(
    TABLE,
    aggregations=(Aggregation("count"), Aggregation("sum", "count")),
    group_by=("message",),
    filters=(Filter("severity", "in", ("error", "critical")),),
    start_time=BASE_TIME + 900,
)


def check_for_spike(cluster, label):
    result = cluster.query(SPIKE_QUERY)
    top = max(result.rows, key=lambda row: row.values["sum(count)"], default=None)
    coverage = f"{result.coverage:.0%} of leaves"
    if top and top.values["sum(count)"] > 5_000:
        print(f"  [{label}] ALERT: '{top.group[0]}' spiking "
              f"(weighted count {top.values['sum(count)']:,}) — {coverage}")
        return True
    print(f"  [{label}] nominal ({len(result.rows)} error signatures, {coverage})")
    return False


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        cluster = Cluster(
            4, tmp, leaves_per_machine=2, namespace=NAMESPACE,
            rows_per_block=1024, rng=random.Random(7),
        )
        cluster.start_all()

        print("== steady state: background error traffic ==")
        cluster.ingest(TABLE, error_logs(8_000, start_time=BASE_TIME), batch_rows=500)
        cluster.sync_all()
        check_for_spike(cluster, "steady")

        print("\n== a bad release starts spiking 'thrift timeout' errors ==")
        spike = [
            {
                "time": BASE_TIME + 1000 + i // 20,
                "severity": "critical",
                "message": "thrift timeout",
                "stack_hash": "deadb",
                "count": 45,
            }
            for i in range(400)
        ]
        cluster.ingest(TABLE, spike, batch_rows=100)
        assert check_for_spike(cluster, "spike injected")

        print("\n== meanwhile, ops upgrades the Scuba cluster itself ==")
        coordinator = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.25, use_shm=True
        )
        batch_number = 0
        while True:
            batch = coordinator.select_batch()
            if not batch:
                break
            batch_number += 1
            for leaf in batch:
                leaf.shutdown(use_shm=True)
            # Queries DURING the batch: partial coverage, spike still visible.
            detected = check_for_spike(
                cluster, f"mid-rollover batch {batch_number} "
                f"({len(batch)} leaves down)"
            )
            assert detected or cluster.availability < 1.0
            # New errors keep flowing to the surviving leaves.
            cluster.ingest(
                TABLE,
                [
                    {
                        "time": BASE_TIME + 2000 + batch_number,
                        "severity": "critical",
                        "message": "thrift timeout",
                        "stack_hash": "deadb",
                        "count": 45,
                    }
                ]
                * 50,
                batch_rows=10,
            )
            for leaf in batch:
                leaf.version = "v2"
                leaf.start()

        print("\n== rollover finished ==")
        assert all(leaf.version == "v2" for leaf in cluster.leaves)
        assert check_for_spike(cluster, "post-upgrade, full coverage")
        print("the spike stayed visible through the entire upgrade ✓")


if __name__ == "__main__":
    main()
