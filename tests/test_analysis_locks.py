"""Fixture tests for the guarded-by lock discipline checker (RL3xx)."""

from pathlib import Path

from repro.analysis.checkers import locks
from repro.analysis.loader import load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(name):
    return locks.check(load_files([FIXTURES / name]))


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.line, f.symbol) for f in run("locks_bad.py")}
        assert found == {
            ("RL301", 13, "Counter.bump:value"),  # self.value += 1
            ("RL301", 14, "Counter.bump:history"),  # .append() mutates
            ("RL302", 14, "Counter.bump:value"),  # read inside the append
            ("RL302", 17, "Counter.peek:value"),  # unguarded return
        }


class TestGoodFixture:
    def test_silent_including_lock_held_helper(self):
        """_note touches shared state but is only called under the lock."""
        assert run("locks_good.py") == []


class TestRealTree:
    def test_memtrack_is_clean(self, repo_root):
        """MemoryTracker's _after_change rides the lock-held closure."""
        modules = load_files([repo_root / "src/repro/util/memtrack.py"], root=repo_root)
        assert locks.check(modules) == []

    def test_footprint_budget_is_clean(self, repo_root):
        """Regression for the unguarded peak_in_flight read in __repr__."""
        modules = load_files(
            [repo_root / "src/repro/core/parallel.py"], root=repo_root
        )
        assert [f for f in locks.check(modules) if "FootprintBudget" in f.symbol] == []
