"""Stress tests for the parallel restart subsystem.

Eight leaves of one machine go through shutdown-to-shared-memory and
restore concurrently, and the single-leaf guarantees must survive the
fan-out:

- restart equivalence (invariant 3): every leaf's data is bit-identical
  after the cycle;
- the valid-bit protocol (invariant 4): valid after backup, all shared
  memory gone after restore, and a mid-restore failure routes that leaf
  — and only that leaf — to disk;
- the machine-wide footprint bound (invariant 5): with a shared tracker
  and a :class:`FootprintBudget`, the peak stays at data + budgeted
  in-flight windows, not data + one window per concurrent leaf.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.core.engine import RecoveryMethod
from repro.core.parallel import FootprintBudget, ParallelRestartCoordinator
from repro.errors import CorruptionError
from repro.server.machine import Machine
from repro.shm.layout import table_segment_size

LEAVES = 8


def make_machine(shm_namespace, tmp_path, clock, leaves=LEAVES):
    machine = Machine(
        "m0",
        tmp_path,
        leaves_per_machine=leaves,
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=32,
        shared_tracker=True,
    )
    machine.start_all()
    for index, leaf in enumerate(machine.leaves):
        # Distinct data per leaf so a cross-wired restore cannot pass.
        leaf.add_rows(
            "events",
            [
                {
                    "time": 1000 + row,
                    "host": f"leaf{index}-web{row % 5}",
                    "latency_ms": float(index * 1000 + row),
                }
                for row in range(90)
            ],
        )
        leaf.add_rows(
            "metrics",
            [{"time": 2000 + row, "value": float(index) + row} for row in range(40)],
        )
        leaf.leafmap.seal_all()
    return machine


def sealed_bytes(machine) -> int:
    return sum(
        table.sealed_nbytes for leaf in machine.leaves for table in leaf.leafmap
    )


def max_segment_bytes(machine) -> int:
    return max(
        table_segment_size(table.name, table.blocks)
        for leaf in machine.leaves
        for table in leaf.leafmap
    )


class TestFootprintBudget:
    def test_tracks_in_flight_and_peak(self):
        budget = FootprintBudget(100)
        budget.acquire(60)
        budget.acquire(30)
        assert budget.in_flight == 90
        budget.release(60)
        assert budget.in_flight == 30
        assert budget.peak_in_flight == 90

    def test_blocks_until_release(self):
        budget = FootprintBudget(100)
        budget.acquire(80)
        acquired = threading.Event()

        def worker():
            budget.acquire(40)
            acquired.set()
            budget.release(40)

        thread = threading.Thread(target=worker)
        thread.start()
        assert not acquired.wait(0.05), "acquire should block while over budget"
        budget.release(80)
        assert acquired.wait(2.0), "release should wake the blocked acquirer"
        thread.join()
        assert budget.blocked_acquires == 1
        assert budget.in_flight == 0

    def test_oversized_request_admitted_only_alone(self):
        budget = FootprintBudget(10)
        budget.acquire(4)
        admitted = threading.Event()

        def worker():
            budget.acquire(50)  # larger than the whole budget
            admitted.set()
            budget.release(50)

        thread = threading.Thread(target=worker)
        thread.start()
        assert not admitted.wait(0.05), "oversized must wait for an empty budget"
        budget.release(4)
        assert admitted.wait(2.0)
        thread.join()
        assert budget.peak_in_flight == 50

    def test_oversized_request_cannot_be_starved_by_small_ones(self):
        """Regression: admission is FIFO by ticket.  Before ticketing, a
        release woke every waiter and any small request could slip in
        ahead of an oversized one, keeping the budget non-empty — the
        oversized waiter starved forever.  Now a small request that
        arrives behind an oversized one must queue behind it."""
        budget = FootprintBudget(10)
        budget.acquire(6)
        oversized_in = threading.Event()
        small_in = threading.Event()

        def oversized():
            budget.acquire(50)
            oversized_in.set()
            budget.release(50)

        def small():
            budget.acquire(4)
            small_in.set()
            budget.release(4)

        big = threading.Thread(target=oversized)
        big.start()
        deadline = time.monotonic() + 5.0
        while budget.blocked_acquires < 1 and time.monotonic() < deadline:
            time.sleep(0.002)
        little = threading.Thread(target=small)
        little.start()
        deadline = time.monotonic() + 5.0
        while budget.blocked_acquires < 2 and time.monotonic() < deadline:
            time.sleep(0.002)
        # 6 + 4 fits the budget, but FIFO forbids jumping the line.
        assert not small_in.wait(0.05), "small request overtook the oversized one"
        budget.release(6)
        assert oversized_in.wait(2.0), "oversized request starved"
        assert small_in.wait(2.0), "queue stalled behind the oversized admission"
        big.join()
        little.join()
        assert budget.in_flight == 0
        assert budget.peak_in_flight == 50

    def test_reserve_context_manager_releases_on_error(self):
        budget = FootprintBudget(10)
        with pytest.raises(RuntimeError):
            with budget.reserve(7):
                assert budget.in_flight == 7
                raise RuntimeError("boom")
        assert budget.in_flight == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            FootprintBudget(0)
        budget = FootprintBudget(10)
        with pytest.raises(ValueError):
            budget.acquire(-1)
        with pytest.raises(ValueError):
            budget.release(1)  # nothing in flight


class TestParallelRestartEquivalence:
    def test_eight_leaves_restart_in_parallel(self, shm_namespace, tmp_path, clock):
        machine = make_machine(shm_namespace, tmp_path, clock)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        report = machine.restart_all(workers=LEAVES)
        assert report.failures == []
        assert all(o.report.method is RecoveryMethod.SHARED_MEMORY
                   for o in report.restore)
        # Invariant 3: restart equivalence, leaf by leaf.
        for leaf, snapshot in zip(machine.leaves, snapshots):
            assert leaf.is_alive
            assert leaf.leafmap.snapshot_rows() == snapshot
        # Invariant 4: the protocol consumed all shared memory state.
        for leaf in machine.leaves:
            assert not leaf.engine.shm_state_exists()

    def test_valid_bit_set_by_parallel_backup(self, shm_namespace, tmp_path, clock):
        machine = make_machine(shm_namespace, tmp_path, clock, leaves=4)
        coordinator = ParallelRestartCoordinator(machine.leaves)
        outcomes = coordinator.shutdown_all()
        assert all(o.ok for o in outcomes)
        # Every leaf's valid bit is set — each would restore from memory.
        for leaf in machine.leaves:
            assert leaf.engine.shm_state_valid()
        outcomes = coordinator.start_all()
        assert all(o.ok for o in outcomes)
        for leaf in machine.leaves:
            assert not leaf.engine.shm_state_exists()

    def test_worker_sweep_preserves_data(self, shm_namespace, tmp_path, clock):
        machine = make_machine(shm_namespace, tmp_path, clock, leaves=4)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        for workers in (1, 2, 4):
            report = machine.restart_all(workers=workers)
            assert report.failures == []
            for leaf, snapshot in zip(machine.leaves, snapshots):
                assert leaf.leafmap.snapshot_rows() == snapshot


class TestMachineFootprintBudget:
    def test_peak_bounded_by_data_plus_budget(self, shm_namespace, tmp_path, clock):
        """Invariant 5, machine-wide: run the two phases separately so
        the bound can use the measured segment total, then assert the
        shared tracker's peak against data + budget exactly."""
        machine = make_machine(shm_namespace, tmp_path, clock)
        data_bytes = sealed_bytes(machine)
        # Big enough that no request needs the oversized-admission rule,
        # small enough that 8 unbudgeted windows would blow through it.
        limit = max(max_segment_bytes(machine), data_bytes // 3)
        budget = FootprintBudget(limit)
        coordinator = ParallelRestartCoordinator(machine.leaves, budget=budget)
        tracker = machine.tracker
        assert tracker is not None

        outcomes = coordinator.shutdown_all()
        assert all(o.ok for o in outcomes)
        shm_total = tracker.in_region("shm")
        assert shm_total >= data_bytes
        assert tracker.in_region("heap") == 0
        # Peak so far: remaining heap + written segments + in-flight
        # windows.  Segment preambles make shm_total the data term.
        assert tracker.peak_total <= shm_total + limit

        outcomes = coordinator.start_all()
        assert all(o.ok for o in outcomes)
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") >= data_bytes
        # Over the whole cycle: never data + one window per leaf.
        assert tracker.peak_total <= shm_total + limit
        assert budget.peak_in_flight <= limit

    def test_tiny_budget_serializes_but_completes(
        self, shm_namespace, tmp_path, clock
    ):
        """A budget smaller than any single table exercises the
        oversized-admission rule: copies run one at a time, the machine
        still restarts, and the data survives."""
        machine = make_machine(shm_namespace, tmp_path, clock, leaves=4)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        report = machine.restart_all(workers=4, budget_bytes=1024)
        assert report.failures == []
        assert report.peak_in_flight_bytes > 1024  # oversized admissions ran
        for leaf, snapshot in zip(machine.leaves, snapshots):
            assert leaf.leafmap.snapshot_rows() == snapshot


class TestFailureIsolation:
    def test_midrestore_failure_does_not_poison_siblings(
        self, shm_namespace, tmp_path, clock
    ):
        """One leaf dies mid-restore (after its first table): it must
        fall back to disk by itself while the other seven restore from
        shared memory, all ending with identical data."""
        machine = make_machine(shm_namespace, tmp_path, clock)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        victim = machine.leaves[3]

        fired = []

        def explode(point: str) -> None:
            if point == "restore:table" and not fired:
                fired.append(point)
                raise CorruptionError("injected mid-restore failure")

        victim.engine._fault = explode
        coordinator = ParallelRestartCoordinator(machine.leaves)
        outcomes = coordinator.shutdown_all()
        assert all(o.ok for o in outcomes)
        outcomes = coordinator.start_all()
        assert fired, "the injected fault never fired"
        assert all(o.ok for o in outcomes), "no leaf may surface the failure"
        by_leaf = {o.leaf_id: o for o in outcomes}
        assert by_leaf[victim.leaf_id].report.method is RecoveryMethod.DISK_SNAPSHOT
        assert by_leaf[victim.leaf_id].report.fell_back_to_disk
        for leaf in machine.leaves:
            if leaf is not victim:
                assert by_leaf[leaf.leaf_id].report.method is (
                    RecoveryMethod.SHARED_MEMORY
                )
        # Equivalence holds for everyone — the victim via its synced disk
        # backup, the siblings via shared memory.
        for leaf, snapshot in zip(machine.leaves, snapshots):
            assert leaf.is_alive
            assert leaf.leafmap.snapshot_rows() == snapshot
            assert not leaf.engine.shm_state_exists()
