"""Tests for the per-type compression pipelines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression import CompressionFlags, decode_column, encode_column
from repro.types import ColumnType


class TestInt64Pipeline:
    def test_applies_at_least_two_methods(self):
        encoded = encode_column(ColumnType.INT64, list(range(1000)))
        methods = [
            flag
            for flag in (
                CompressionFlags.DICT,
                CompressionFlags.DELTA,
                CompressionFlags.ZIGZAG,
                CompressionFlags.BITPACK,
                CompressionFlags.LZ,
                CompressionFlags.SHUFFLE,
            )
            if flag in encoded.flags
        ]
        assert len(methods) >= 2

    def test_timestamp_compression_factor(self):
        # Nearly-sorted timestamps: the paper's ~30x factor territory.
        values = [1_390_000_000 + i // 3 for i in range(10_000)]
        encoded = encode_column(ColumnType.INT64, values)
        assert 8 * len(values) / encoded.payload_size > 20


class TestStringPipeline:
    def test_low_cardinality_uses_dictionary(self):
        values = ["webserver", "database", "cache"] * 300
        encoded = encode_column(ColumnType.STRING, values)
        assert CompressionFlags.DICT in encoded.flags
        assert decode_column(ColumnType.STRING, encoded) == values
        assert encoded.payload_size < sum(len(v) for v in values) / 5

    def test_high_cardinality_skips_dictionary(self):
        values = [f"request-{i:08x}" for i in range(500)]
        encoded = encode_column(ColumnType.STRING, values)
        assert CompressionFlags.DICT not in encoded.flags
        assert decode_column(ColumnType.STRING, encoded) == values

    def test_empty_strings(self):
        values = ["", "", "x", ""]
        encoded = encode_column(ColumnType.STRING, values)
        assert decode_column(ColumnType.STRING, encoded) == values

    def test_large_dictionary_gets_lz(self):
        # Many long distinct-but-similar entries, repeated enough to
        # stay under the cardinality cutoff.
        distinct = [f"/var/www/htdocs/site/section{i:03d}/index.php" for i in range(40)]
        values = distinct * 10
        encoded = encode_column(ColumnType.STRING, values)
        assert CompressionFlags.DICT_LZ in encoded.flags
        assert decode_column(ColumnType.STRING, encoded) == values


class TestVectorPipeline:
    def test_mixed_lengths(self):
        values = [["a", "b"], [], ["c"], ["a", "a", "a"]] * 50
        encoded = encode_column(ColumnType.STRING_VECTOR, values)
        assert decode_column(ColumnType.STRING_VECTOR, encoded) == values

    def test_all_empty_vectors(self):
        values = [[] for _ in range(20)]
        encoded = encode_column(ColumnType.STRING_VECTOR, values)
        assert decode_column(ColumnType.STRING_VECTOR, encoded) == values

    def test_empty_column(self):
        encoded = encode_column(ColumnType.STRING_VECTOR, [])
        assert decode_column(ColumnType.STRING_VECTOR, encoded) == []


class TestPipelineGeneral:
    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_column("not-a-type", [1])

    @settings(max_examples=80, deadline=None)
    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=200))
    def test_int_roundtrip_property(self, values):
        encoded = encode_column(ColumnType.INT64, values)
        assert decode_column(ColumnType.INT64, encoded) == values

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.floats(allow_nan=False, width=64), max_size=150))
    def test_float_roundtrip_property(self, values):
        encoded = encode_column(ColumnType.FLOAT64, values)
        assert decode_column(ColumnType.FLOAT64, encoded) == values

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(max_size=15), max_size=150))
    def test_string_roundtrip_property(self, values):
        encoded = encode_column(ColumnType.STRING, values)
        assert decode_column(ColumnType.STRING, encoded) == values

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.lists(st.text(max_size=8), max_size=5), max_size=80))
    def test_vector_roundtrip_property(self, values):
        encoded = encode_column(ColumnType.STRING_VECTOR, values)
        assert decode_column(ColumnType.STRING_VECTOR, encoded) == values
