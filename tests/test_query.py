"""Tests for the query engine: descriptions, execution, and merging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.leafmap import LeafMap
from repro.errors import QueryError
from repro.query.aggregate import AggState, merge_leaf_results
from repro.query.execute import execute_on_leaf
from repro.query.query import Aggregation, Filter, Query
from repro.util.clock import ManualClock


def make_map(rows=200):
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=50)
    table = leafmap.get_or_create("requests")
    table.add_rows(
        {
            "time": 1000 + i,
            "endpoint": f"/api/{i % 4}",
            "latency": float(i % 100),
            "status": 200 if i % 10 else 500,
            "tags": ["prod"] + (["canary"] if i % 2 else []),
        }
        for i in range(rows)
    )
    return leafmap


class TestQueryValidation:
    def test_needs_table(self):
        with pytest.raises(QueryError):
            Query("")

    def test_needs_aggregation(self):
        with pytest.raises(QueryError):
            Query("t", aggregations=())

    def test_unknown_agg_func(self):
        with pytest.raises(QueryError):
            Aggregation("median", "x")

    def test_non_count_needs_column(self):
        with pytest.raises(QueryError):
            Aggregation("sum")

    def test_unknown_filter_op(self):
        with pytest.raises(QueryError):
            Filter("x", "like", "%y%")

    def test_bad_limit(self):
        with pytest.raises(QueryError):
            Query("t", limit=0)


class TestFilters:
    def test_comparison_ops(self):
        row = {"v": 5}
        assert Filter("v", "eq", 5).matches(row)
        assert Filter("v", "ne", 4).matches(row)
        assert Filter("v", "lt", 6).matches(row)
        assert Filter("v", "le", 5).matches(row)
        assert Filter("v", "gt", 4).matches(row)
        assert Filter("v", "ge", 5).matches(row)
        assert not Filter("v", "eq", 6).matches(row)

    def test_in_and_contains(self):
        row = {"host": "a", "tags": ["x", "y"]}
        assert Filter("host", "in", ("a", "b")).matches(row)
        assert Filter("tags", "contains", "y").matches(row)
        assert not Filter("tags", "contains", "z").matches(row)

    def test_missing_column_never_matches(self):
        assert not Filter("ghost", "eq", 1).matches({"v": 1})

    def test_ne_on_absent_column_is_false(self):
        # Deliberate three-valued-logic choice: an absent column matches
        # NO predicate, not even "not equal" — absence is not inequality.
        assert not Filter("ghost", "ne", 1).matches({"v": 1})
        assert not Filter("ghost", "ne", None).matches({"v": 1})

    def test_none_value_comparisons(self):
        row = {"v": 5}
        assert not Filter("v", "eq", None).matches(row)
        assert Filter("v", "ne", None).matches(row)
        with pytest.raises(TypeError):
            Filter("v", "lt", None).matches(row)

    def test_none_stored_value(self):
        # A raw (unsealed) row can carry None; eq/ne treat it as a value.
        row = {"v": None}
        assert Filter("v", "eq", None).matches(row)
        assert not Filter("v", "ne", None).matches(row)
        assert not Filter("v", "eq", 0).matches(row)

    def test_contains_on_scalar_raises(self):
        with pytest.raises(QueryError):
            Filter("v", "contains", "x").matches({"v": 5})

    def test_contains_error_names_column_and_type(self):
        with pytest.raises(QueryError, match="'v' holds int"):
            Filter("v", "contains", "x").matches({"v": 5})

    def test_in_with_string_value_is_substring(self):
        # Python's `in` on a string is substring containment; the filter
        # inherits that, and the vectorized path must too.
        assert Filter("s", "in", "abc").matches({"s": "ab"})
        assert not Filter("s", "in", "abc").matches({"s": "ac"})


class TestExecution:
    def test_count_all(self):
        execution = execute_on_leaf(make_map(), Query("requests"))
        assert execution.partial[()][0].finalize() == 200

    def test_missing_table_contributes_empty(self):
        execution = execute_on_leaf(make_map(), Query("nope"))
        assert execution.partial == {}

    def test_group_by_and_filters(self):
        query = Query(
            "requests",
            aggregations=(Aggregation("count"), Aggregation("avg", "latency")),
            group_by=("endpoint",),
            filters=(Filter("status", "eq", 200),),
        )
        execution = execute_on_leaf(make_map(), query)
        assert len(execution.partial) == 4
        total = sum(states[0].finalize() for states in execution.partial.values())
        assert total == 180  # 10% are 500s

    def test_time_pruning_counts_blocks(self):
        query = Query("requests", start_time=1100, end_time=1150)
        execution = execute_on_leaf(make_map(), query)
        assert execution.blocks_pruned == 3  # of 4 blocks
        assert execution.rows_scanned == 50

    def test_agg_of_missing_column_yields_none(self):
        query = Query("requests", aggregations=(Aggregation("sum", "ghost"),))
        execution = execute_on_leaf(make_map(), query)
        result = merge_leaf_results(query, [execution.partial], 1)
        assert result.rows[0].values["sum(ghost)"] is None

    def test_non_numeric_aggregation_raises(self):
        query = Query("requests", aggregations=(Aggregation("sum", "endpoint"),))
        with pytest.raises(QueryError):
            execute_on_leaf(make_map(), query)


class TestAggStates:
    def test_percentile_nearest_rank(self):
        state = AggState("p50")
        for value in (1, 2, 3, 4, 5):
            state.update(value)
        assert state.finalize() == 3

    def test_p99_on_small_sample(self):
        state = AggState("p99")
        for value in range(10):
            state.update(value)
        assert state.finalize() == 9

    def test_empty_numeric_state_finalizes_none(self):
        for func in ("sum", "avg", "min", "max", "p50"):
            assert AggState(func).finalize() is None

    def test_merge_mismatched_funcs_rejected(self):
        a, b = AggState("sum"), AggState("avg")
        with pytest.raises(QueryError):
            a.merge(b)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=60),
        st.integers(min_value=1, max_value=5),
    )
    def test_merged_states_equal_single_pass_property(self, values, n_parts):
        """Invariant: splitting rows among leaves and merging partial
        states gives the same aggregates as one leaf seeing all rows."""
        funcs = ("count", "sum", "avg", "min", "max", "p50", "p95")
        whole = [AggState(f) for f in funcs]
        for value in values:
            for state in whole:
                state.update(value if state.func != "count" else None)
        parts = [[AggState(f) for f in funcs] for _ in range(n_parts)]
        for index, value in enumerate(values):
            for state in parts[index % n_parts]:
                state.update(value if state.func != "count" else None)
        merged = [AggState(f) for f in funcs]
        for part in parts:
            for target, incoming in zip(merged, part):
                target.merge(incoming)
        for func, lhs, rhs in zip(funcs, whole, merged):
            a, b = lhs.finalize(), rhs.finalize()
            if isinstance(a, float):
                assert b == pytest.approx(a, rel=1e-9, abs=1e-9), func
            else:
                assert a == b, func


class TestMerge:
    def test_partial_coverage_recorded(self):
        query = Query("requests")
        execution = execute_on_leaf(make_map(), query)
        result = merge_leaf_results(query, [execution.partial], leaves_total=4)
        assert result.leaves_responded == 1
        assert result.coverage == 0.25

    def test_groups_merge_across_leaves(self):
        query = Query("requests", group_by=("endpoint",))
        e1 = execute_on_leaf(make_map(100), query)
        e2 = execute_on_leaf(make_map(100), query)
        result = merge_leaf_results(query, [e1.partial, e2.partial], 2)
        total = sum(r.values["count(*)"] for r in result.rows)
        assert total == 200

    def test_limit_applies_after_sort(self):
        query = Query("requests", group_by=("endpoint",), limit=2)
        execution = execute_on_leaf(make_map(), query)
        result = merge_leaf_results(query, [execution.partial], 1)
        assert len(result.rows) == 2
        assert result.rows[0].group == ("/api/0",)

    def test_row_for_lookup(self):
        query = Query("requests", group_by=("endpoint",))
        execution = execute_on_leaf(make_map(), query)
        result = merge_leaf_results(query, [execution.partial], 1)
        assert result.row_for("/api/1").values["count(*)"] == 50
        with pytest.raises(KeyError):
            result.row_for("/api/9")

    def test_merge_does_not_mutate_partials(self):
        query = Query("requests")
        execution = execute_on_leaf(make_map(100), query)
        before = execution.partial[()][0].count
        merge_leaf_results(query, [execution.partial, execution.partial], 2)
        assert execution.partial[()][0].count == before
