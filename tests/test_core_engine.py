"""Tests for the restart engine: Figures 6 and 7, the valid-bit
protocol, fallback, growth, deadline kills, and the footprint bound."""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import FAULT_POINTS, RecoveryMethod, RestartEngine
from repro.core.watchdog import CooperativeDeadline
from repro.errors import RecoveryError, ShutdownTimeout
from repro.shm.layout import SHM_LAYOUT_VERSION
from repro.shm.metadata import LeafMetadata
from repro.util.memtrack import MemoryTracker

from tests.conftest import make_leafmap


def engine_for(namespace, backup, clock, **kwargs):
    return RestartEngine("0", namespace=namespace, backup=backup, clock=clock, **kwargs)


def fresh_map(clock):
    return LeafMap(clock=clock, rows_per_block=50)


class TestBackupRestore:
    def test_shm_roundtrip_preserves_everything(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock, tables=("events", "errors"), rows=160)
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)
        restored = fresh_map(clock)
        report = engine_for(shm_namespace, backup, clock).restore(restored)
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot

    def test_backup_empties_the_leafmap(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        engine = engine_for(shm_namespace, backup, clock)
        engine.backup_to_shm(leafmap)
        assert len(leafmap) == 0
        engine.discard_shm()

    def test_backup_seals_open_buffers(self, shm_namespace, backup, clock):
        leafmap = fresh_map(clock)
        leafmap.get_or_create("t").add_rows({"time": i} for i in range(7))
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)
        restored = fresh_map(clock)
        engine_for(shm_namespace, backup, clock).restore(restored)
        assert restored.get_table("t").row_count == 7

    def test_shm_state_consumed_by_restore(self, shm_namespace, backup, clock):
        engine = engine_for(shm_namespace, backup, clock)
        engine.backup_to_shm(make_leafmap(clock))
        assert engine.shm_state_valid()
        engine_for(shm_namespace, backup, clock).restore(fresh_map(clock))
        assert not engine.shm_state_exists()

    def test_report_counters(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock, rows_per_block=50, rows=160)
        leafmap.seal_all()
        n_columns = len(leafmap.get_table("events").blocks[0].schema)
        engine = engine_for(shm_namespace, backup, clock)
        report = engine.backup_to_shm(leafmap)
        assert report.tables == 1
        assert report.row_blocks == 4  # 160 rows / 50 per block, sealed
        assert report.rbc_copies == 4 * n_columns
        assert report.rows == 160
        assert report.bytes_copied > 0
        assert report.leaf_states == ["alive", "copy_to_shm", "exit"]
        engine.discard_shm()

    def test_restore_report_counters(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock, rows=160)
        leafmap.seal_all()
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)
        report = engine_for(shm_namespace, backup, clock).restore(fresh_map(clock))
        assert report.rows == 160
        assert report.row_blocks == 4
        assert report.leaf_states == ["init", "memory_recovery", "alive"]

    def test_restore_requires_empty_map(self, shm_namespace, backup, clock):
        engine = engine_for(shm_namespace, backup, clock)
        with pytest.raises(RecoveryError):
            engine.restore(make_leafmap(clock))

    def test_ingest_counters_survive_roundtrip(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock, rows=120)
        table = leafmap.get_table("events")
        table.seal_buffer()
        table.expire_before(1000 + 50)
        expired = table.total_rows_expired
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)
        restored = fresh_map(clock)
        engine_for(shm_namespace, backup, clock).restore(restored)
        assert restored.get_table("events").total_rows_ingested == 120
        assert restored.get_table("events").total_rows_expired == expired


class TestDiskFallback:
    def test_no_shm_state_goes_to_disk(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        backup.sync_leafmap(leafmap)
        snapshot = leafmap.snapshot_rows()
        report = engine_for(shm_namespace, backup, clock).restore(fresh_map(clock))
        assert report.method is RecoveryMethod.DISK
        restored = fresh_map(clock)
        engine_for(shm_namespace, backup, clock).restore(restored)
        assert restored.snapshot_rows() == snapshot

    def test_memory_recovery_disabled_goes_to_disk(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)
        restored = fresh_map(clock)
        report = engine_for(shm_namespace, backup, clock).restore(
            restored, memory_recovery_enabled=False
        )
        # The sealed-and-synced state has a fresh snapshot, so the disk
        # path takes the fast tier.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.leaf_states == ["init", "disk_snapshot_recovery", "alive"]
        # The untouched (still valid) shm state remains for a later boot.
        assert engine_for(shm_namespace, backup, clock).shm_state_valid()
        engine_for(shm_namespace, backup, clock).discard_shm()

    def test_memory_recovery_and_snapshot_tier_disabled_goes_to_legacy(
        self, shm_namespace, backup, clock
    ):
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        snapshot = leafmap.snapshot_rows()
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)
        restored = fresh_map(clock)
        report = engine_for(
            shm_namespace, backup, clock, disk_snapshot_tier=False
        ).restore(restored, memory_recovery_enabled=False)
        assert report.method is RecoveryMethod.DISK
        assert report.leaf_states == ["init", "disk_recovery", "alive"]
        assert restored.snapshot_rows() == snapshot
        engine_for(shm_namespace, backup, clock).discard_shm()

    def test_invalid_bit_forces_disk_and_cleans_segments(
        self, shm_namespace, backup, clock
    ):
        leafmap = make_leafmap(clock)
        backup.sync_leafmap(leafmap)
        engine = engine_for(shm_namespace, backup, clock)
        engine.backup_to_shm(leafmap)
        meta = LeafMetadata.attach(shm_namespace, "0")
        meta.set_valid(False)
        meta.close()
        report = engine_for(shm_namespace, backup, clock).restore(fresh_map(clock))
        # The PREPARE-state sync left a fresh snapshot, so the invalid
        # bit routes to the snapshot tier, not legacy replay.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert not engine.shm_state_exists()

    def test_layout_version_mismatch_forces_disk(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        backup.sync_leafmap(leafmap)
        old = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            layout_version=SHM_LAYOUT_VERSION,
        )
        old.backup_to_shm(leafmap)
        new = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            layout_version=SHM_LAYOUT_VERSION + 1,
        )
        report = new.restore(fresh_map(clock))
        assert report.method is RecoveryMethod.DISK
        assert not new.shm_state_exists()

    def test_no_backup_and_no_shm_raises(self, shm_namespace, clock):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        with pytest.raises(RecoveryError):
            engine.restore(fresh_map(clock))

    def test_shm_without_backup_still_works(self, shm_namespace, clock):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        leafmap = make_leafmap(clock)
        snapshot = None
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        engine.backup_to_shm(leafmap)
        restored = fresh_map(clock)
        report = RestartEngine("0", namespace=shm_namespace, clock=clock).restore(
            restored
        )
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot


class TestFaultInjection:
    @pytest.mark.parametrize(
        "point", [p for p in FAULT_POINTS if p.startswith("backup")]
    )
    def test_crash_during_backup_routes_next_boot_to_disk(
        self, dirty_shm_namespace, backup, clock, point
    ):
        namespace = dirty_shm_namespace
        leafmap = make_leafmap(clock)
        backup.sync_leafmap(leafmap)
        snapshot = leafmap.snapshot_rows()

        def hook(name):
            if name == point:
                raise RuntimeError(f"crash at {name}")

        engine = RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock, fault_hook=hook
        )
        with pytest.raises(RuntimeError):
            engine.backup_to_shm(leafmap)
        assert not engine.shm_state_valid()
        restored = fresh_map(clock)
        report = RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock
        ).restore(restored)
        # Never shared memory after a backup crash.  Which disk rung runs
        # depends on how far the backup got: a crash before any PREPARE
        # leaves the pre-crash sync (taken with a live buffer, so no
        # snapshot); a crash after PREPARE left a fresh snapshot behind.
        expected = {
            "backup:start": RecoveryMethod.DISK,
            "backup:table": RecoveryMethod.DISK_SNAPSHOT,
            "backup:before_valid": RecoveryMethod.DISK_SNAPSHOT,
        }
        assert report.method is expected[point]
        assert restored.snapshot_rows() == snapshot

    def test_crash_at_restore_entry_leaves_shm_valid(
        self, dirty_shm_namespace, backup, clock
    ):
        """A death before the restore touches the metadata (e.g. the new
        binary failing to boot) leaves the valid bit set, so the boot
        after that still recovers from shared memory."""
        namespace = dirty_shm_namespace
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        RestartEngine("0", namespace=namespace, backup=backup, clock=clock).backup_to_shm(
            leafmap
        )

        def hook(name):
            if name == "restore:start":
                raise RuntimeError("died before touching shared memory")

        with pytest.raises(RuntimeError):
            RestartEngine(
                "0", namespace=namespace, backup=backup, clock=clock, fault_hook=hook
            ).restore(fresh_map(clock))
        follow_up = RestartEngine("0", namespace=namespace, backup=backup, clock=clock)
        assert follow_up.shm_state_valid()
        restored = fresh_map(clock)
        assert follow_up.restore(restored).method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot

    @pytest.mark.parametrize(
        "point",
        [
            p
            for p in FAULT_POINTS
            # restore:start fires before shm is touched; restore:snapshot_table
            # only fires on the disk ladder (covered in test_core_engine_tiers);
            # the publish/fault_block points only fire on the lazy path
            # (covered in test_server_serve_while_restoring).
            if p.startswith("restore")
            and p not in (
                "restore:start",
                "restore:snapshot_table",
                "restore:publish_directory",
                "restore:fault_block",
            )
        ],
    )
    def test_crash_during_restore_falls_back_to_disk(
        self, dirty_shm_namespace, backup, clock, point
    ):
        namespace = dirty_shm_namespace
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        snapshot = leafmap.snapshot_rows()
        RestartEngine("0", namespace=namespace, backup=backup, clock=clock).backup_to_shm(
            leafmap
        )

        def hook(name):
            if name == point:
                raise RuntimeError(f"crash at {name}")

        restored = fresh_map(clock)
        report = RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock, fault_hook=hook
        ).restore(restored)
        # The sync point left a fresh snapshot, so the fallback lands on
        # the fast disk tier — with the same recovered rows.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.fell_back_to_disk
        assert restored.snapshot_rows() == snapshot
        assert not RestartEngine("0", namespace=namespace).shm_state_exists()

    def test_interrupted_restore_leaves_valid_false(
        self, dirty_shm_namespace, backup, clock
    ):
        """Figure 7: 'If this code path is interrupted, the valid bit
        will be false on the next restart.'  We verify the bit is
        cleared *before* any table copy happens."""
        namespace = dirty_shm_namespace
        leafmap = make_leafmap(clock)
        backup.sync_leafmap(leafmap)
        RestartEngine("0", namespace=namespace, backup=backup, clock=clock).backup_to_shm(
            leafmap
        )
        observed = {}

        def hook(name):
            if name == "restore:after_invalidate":
                meta = LeafMetadata.attach(namespace, "0")
                observed["valid"] = meta.valid
                meta.close()

        RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock, fault_hook=hook
        ).restore(fresh_map(clock))
        assert observed["valid"] is False


class TestSegmentGrowth:
    def test_lowball_estimate_grows(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        engine = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            size_estimator=lambda name, blocks: 8,
        )
        report = engine.backup_to_shm(leafmap)
        assert report.segment_grows >= 1
        restored = fresh_map(clock)
        out = engine_for(shm_namespace, backup, clock).restore(restored)
        assert out.method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot

    def test_overestimate_needs_no_growth(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        engine = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            size_estimator=lambda name, blocks: 1 << 22,
        )
        report = engine.backup_to_shm(leafmap)
        assert report.segment_grows == 0
        engine_for(shm_namespace, backup, clock).restore(fresh_map(clock))


class TestDeadline:
    def test_deadline_kill_falls_back_to_disk(self, dirty_shm_namespace, backup, clock):
        namespace = dirty_shm_namespace
        leafmap = make_leafmap(clock, rows=200)
        backup.sync_leafmap(leafmap)
        snapshot = leafmap.snapshot_rows()
        deadline = CooperativeDeadline(timeout=0.001, clock=clock)
        clock.advance(1.0)  # already expired when copies begin
        engine = RestartEngine("0", namespace=namespace, backup=backup, clock=clock)
        with pytest.raises(ShutdownTimeout):
            engine.backup_to_shm(leafmap, deadline=deadline)
        assert not engine.shm_state_valid()
        restored = fresh_map(clock)
        report = RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock
        ).restore(restored)
        # 200 rows seal evenly, so the pre-kill sync wrote a snapshot.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.snapshot_rows() == snapshot

    def test_generous_deadline_passes(self, shm_namespace, backup, clock):
        leafmap = make_leafmap(clock)
        deadline = CooperativeDeadline(timeout=3600.0, clock=clock)
        engine = engine_for(shm_namespace, backup, clock)
        engine.backup_to_shm(leafmap, deadline=deadline)
        engine_for(shm_namespace, backup, clock).restore(fresh_map(clock))


class TestFootprint:
    def test_backup_frees_heap_as_it_copies(self, shm_namespace, backup, clock):
        """Invariant 5 (paper §4.4): during shutdown the tracked total
        never exceeds data + one table segment's worth of fresh shm +
        metadata — and heap drains to zero."""
        leafmap = make_leafmap(clock, rows=400)
        leafmap.seal_all()
        tracker = MemoryTracker()
        engine = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            tracker=tracker,
        )
        data_bytes = sum(t.sealed_nbytes for t in leafmap)
        engine.backup_to_shm(leafmap)
        assert tracker.in_region("heap") == 0
        assert tracker.in_region("shm") >= data_bytes
        restored = fresh_map(clock)
        tracker2 = MemoryTracker()
        RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock, tracker=tracker2
        ).restore(restored)
        assert tracker2.in_region("shm") == 0
        assert tracker2.in_region("heap") >= data_bytes

    def test_shared_tracker_peak_is_bounded(self, shm_namespace, backup, clock):
        """With one tracker across both phases, the peak stays near one
        dataset, not two (the naive copy-then-free would be ~2x)."""
        from repro.shm.layout import table_segment_size

        leafmap = make_leafmap(clock, rows=400, tables=("a", "b", "c"))
        leafmap.seal_all()
        data_bytes = sum(t.sealed_nbytes for t in leafmap)
        max_table_bytes = max(t.sealed_nbytes for t in leafmap)
        segment_total = sum(
            table_segment_size(t.name, t.blocks) for t in leafmap
        )
        tracker = MemoryTracker()
        engine = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock, tracker=tracker
        )
        engine.backup_to_shm(leafmap)
        restored = fresh_map(clock)
        engine2 = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock, tracker=tracker
        )
        engine2.restore(restored)
        # Exact bound: all table segments + at most one table still in
        # heap while its copy is in flight — far below 2x the dataset.
        assert tracker.peak_total <= segment_total + max_table_bytes
        assert tracker.peak_total < 2 * data_bytes


class TestDiscard:
    def test_discard_removes_everything(self, shm_namespace, backup, clock):
        engine = engine_for(shm_namespace, backup, clock)
        engine.backup_to_shm(make_leafmap(clock))
        assert engine.discard_shm() is True
        assert not engine.shm_state_exists()
        assert engine.discard_shm() is False

    def test_stale_state_discarded_by_next_backup(self, shm_namespace, backup, clock):
        engine = engine_for(shm_namespace, backup, clock)
        engine.backup_to_shm(make_leafmap(clock))
        # A second backup for the same leaf id must not collide.
        engine2 = engine_for(shm_namespace, backup, clock)
        engine2.backup_to_shm(make_leafmap(clock))
        restored = fresh_map(clock)
        report = engine_for(shm_namespace, backup, clock).restore(restored)
        assert report.method is RecoveryMethod.SHARED_MEMORY
