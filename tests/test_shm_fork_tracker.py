"""Resource-tracker balance for ShmSegment across process boundaries.

``multiprocessing.shared_memory`` registers every segment with the
stdlib resource tracker, whose job is to unlink "leaked" segments when
the registering process exits — exactly what a restart-persistence
mechanism must prevent.  :class:`ShmSegment` untracks on create/attach
and retracks right before unlink, and that bookkeeping has to stay
balanced *per process*: a forked worker that creates, attaches, or
closes segments must neither let its tracker unlink data the parent
still needs, nor leave the pair unbalanced (which shows up as
``resource_tracker`` noise on stderr at interpreter exit).
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.core.procpool import require_fork_context
from repro.shm.segment import ShmSegment, segment_exists

pytestmark = pytest.mark.slow  # every test runs real child processes


def child_env() -> dict:
    src = str(Path(__file__).resolve().parents[1] / "src")
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return env


class TestForkedChildren:
    def test_segment_created_in_child_survives_child_exit(self, shm_namespace):
        """The core restart guarantee, one fork deep: the dying process
        writes the segment, its tracker must not reap it at exit."""
        name = f"{shm_namespace}.forked"
        ctx = require_fork_context()

        def child():
            segment = ShmSegment.create(name, 64)
            segment.write_at(0, b"survives the creator")
            segment.close()

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(30)
        assert proc.exitcode == 0
        assert segment_exists(name)
        segment = ShmSegment.attach(name)
        assert bytes(segment.read_at(0, 20)) == b"survives the creator"
        segment.unlink()

    def test_child_attach_and_close_leaves_parents_segment_alone(
        self, shm_namespace
    ):
        name = f"{shm_namespace}.parent-owned"
        segment = ShmSegment.create(name, 64)
        segment.write_at(0, b"parent data")
        ctx = require_fork_context()

        def child():
            view = ShmSegment.attach(name)
            assert bytes(view.read_at(0, 11)) == b"parent data"
            view.close()

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(30)
        assert proc.exitcode == 0
        # Neither the child's close nor its tracker touched the segment.
        assert segment_exists(name)
        assert bytes(segment.read_at(0, 11)) == b"parent data"
        segment.unlink()

    def test_child_unlink_is_visible_and_unrepeated_in_parent(self, shm_namespace):
        """One unlink, from whichever process, is the end of the segment;
        the parent's own unlink of the same name must not blow up."""
        name = f"{shm_namespace}.child-unlinked"
        segment = ShmSegment.create(name, 64)
        ctx = require_fork_context()

        def child():
            view = ShmSegment.attach(name)
            view.unlink()

        proc = ctx.Process(target=child)
        proc.start()
        proc.join(30)
        assert proc.exitcode == 0
        assert not segment_exists(name)
        segment.unlink()  # FileNotFoundError is swallowed and re-untracked


class TestTrackerNoiseAtExit:
    """Run a whole interpreter and audit its stderr: the resource
    tracker prints 'leaked shared_memory objects' / KeyError warnings at
    exit when the register/unregister pairing is off."""

    def run_script(self, body: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-c", body],
            capture_output=True,
            text=True,
            timeout=120,
            env=child_env(),
        )

    def test_create_without_unlink_is_silent(self, shm_namespace):
        name = f"{shm_namespace}.deliberate"
        result = self.run_script(
            "from repro.shm.segment import ShmSegment\n"
            f"segment = ShmSegment.create({name!r}, 32)\n"
            "segment.close()\n"
        )
        assert result.returncode == 0
        assert "resource_tracker" not in result.stderr, result.stderr
        # The segment deliberately outlived the process; consume it here.
        assert segment_exists(name)
        ShmSegment.attach(name).unlink()

    def test_create_then_unlink_is_silent(self, shm_namespace):
        """The retrack-before-unlink dance must leave the tracker with a
        balanced ledger — no KeyError from a double unregister."""
        name = f"{shm_namespace}.balanced"
        result = self.run_script(
            "from repro.shm.segment import ShmSegment\n"
            f"segment = ShmSegment.create({name!r}, 32)\n"
            "segment.unlink()\n"
        )
        assert result.returncode == 0
        assert "resource_tracker" not in result.stderr, result.stderr
        assert not segment_exists(name)

    def test_attach_close_in_worker_interpreter_is_silent(self, shm_namespace):
        name = f"{shm_namespace}.attached"
        segment = ShmSegment.create(name, 32)
        segment.write_at(0, b"x" * 32)
        result = self.run_script(
            "from repro.shm.segment import ShmSegment\n"
            f"view = ShmSegment.attach({name!r})\n"
            "assert bytes(view.read_at(0, 32)) == b'x' * 32\n"
            "view.close()\n"
        )
        assert result.returncode == 0
        assert "resource_tracker" not in result.stderr, result.stderr
        assert segment_exists(name)
        segment.unlink()
