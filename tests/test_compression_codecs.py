"""Tests for the integer, float, and dictionary codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.base import CompressionFlags
from repro.compression.dictionary import dictionary_decode, dictionary_encode
from repro.compression.floatcodec import (
    decode_float64_payload,
    encode_float64_payload,
    shuffle_bytes,
    unshuffle_bytes,
)
from repro.compression.intcodec import decode_int64_payload, encode_int64_payload
from repro.errors import CorruptionError


class TestIntCodec:
    def test_empty(self):
        flags, payload = encode_int64_payload(np.array([], dtype=np.int64))
        assert decode_int64_payload(flags, payload, 0).size == 0

    def test_sorted_timestamps_choose_delta(self):
        values = np.arange(1_390_000_000, 1_390_000_000 + 5000, dtype=np.int64)
        flags, payload = encode_int64_payload(values)
        assert CompressionFlags.DELTA in flags
        assert len(payload) < values.nbytes / 20
        assert decode_int64_payload(flags, payload, 5000).tolist() == values.tolist()

    def test_random_values_skip_delta(self):
        rng = np.random.default_rng(3)
        values = rng.integers(-(2**40), 2**40, size=100).astype(np.int64)
        flags, payload = encode_int64_payload(values)
        assert CompressionFlags.DELTA not in flags
        assert decode_int64_payload(flags, payload, 100).tolist() == values.tolist()

    def test_extremes(self):
        values = np.array([np.iinfo(np.int64).min, 0, np.iinfo(np.int64).max])
        flags, payload = encode_int64_payload(values)
        assert decode_int64_payload(flags, payload, 3).tolist() == values.tolist()

    def test_single_value(self):
        flags, payload = encode_int64_payload(np.array([-42], dtype=np.int64))
        assert decode_int64_payload(flags, payload, 1).tolist() == [-42]

    def test_truncated_payload_raises(self):
        flags, payload = encode_int64_payload(np.arange(100, dtype=np.int64))
        with pytest.raises(CorruptionError):
            decode_int64_payload(flags, payload[:3], 100)

    def test_bad_flags_raise(self):
        with pytest.raises(CorruptionError):
            decode_int64_payload(CompressionFlags.LZ, b"\x01\x00", 1)

    @settings(max_examples=100, deadline=None)
    @given(st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=300))
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.int64)
        flags, payload = encode_int64_payload(arr)
        assert decode_int64_payload(flags, payload, len(values)).tolist() == values


class TestFloatCodec:
    def test_empty(self):
        flags, payload = encode_float64_payload(np.array([], dtype=np.float64))
        assert decode_float64_payload(flags, payload, 0).size == 0

    def test_repetitive_metric_compresses(self):
        values = np.array([12.5, 13.0, 12.5, 14.25] * 500)
        flags, payload = encode_float64_payload(values)
        assert CompressionFlags.LZ in flags
        assert len(payload) < values.nbytes / 3
        assert decode_float64_payload(flags, payload, 2000).tolist() == values.tolist()

    def test_special_values(self):
        values = np.array([0.0, -0.0, np.inf, -np.inf, 1e-300, 1e300])
        flags, payload = encode_float64_payload(values)
        assert decode_float64_payload(flags, payload, 6).tolist() == values.tolist()

    def test_nan_roundtrip(self):
        values = np.array([np.nan, 1.0])
        flags, payload = encode_float64_payload(values)
        out = decode_float64_payload(flags, payload, 2)
        assert np.isnan(out[0]) and out[1] == 1.0

    def test_wrong_length_raises(self):
        with pytest.raises(CorruptionError):
            decode_float64_payload(CompressionFlags.RAW, b"\x00" * 12, 2)

    def test_shuffle_roundtrip(self):
        raw = bytes(range(64))
        assert unshuffle_bytes(shuffle_bytes(raw)) == raw

    def test_shuffle_rejects_ragged(self):
        with pytest.raises(ValueError):
            shuffle_bytes(b"\x00" * 9)
        with pytest.raises(CorruptionError):
            unshuffle_bytes(b"\x00" * 9)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.floats(allow_nan=False, width=64),
            max_size=200,
        )
    )
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.float64)
        flags, payload = encode_float64_payload(arr)
        assert decode_float64_payload(flags, payload, len(values)).tolist() == values


class TestDictionary:
    def test_empty(self):
        dictionary, ids, n = dictionary_encode([])
        assert (dictionary, ids, n) == (b"", b"", 0)
        assert dictionary_decode(b"", b"", 0, 0) == []

    def test_low_cardinality(self):
        values = ["a", "b", "a", "a", "c"] * 100
        dictionary, ids, n = dictionary_encode(values)
        assert n == 3
        assert dictionary_decode(dictionary, ids, n, len(values)) == values

    def test_first_appearance_order_is_deterministic(self):
        d1, i1, _ = dictionary_encode(["x", "y", "x"])
        d2, i2, _ = dictionary_encode(["x", "y", "x"])
        assert d1 == d2 and i1 == i2

    def test_unicode(self):
        values = ["héllo", "wörld", "héllo", "日本語"]
        dictionary, ids, n = dictionary_encode(values)
        assert dictionary_decode(dictionary, ids, n, 4) == values

    def test_id_out_of_range_raises(self):
        dictionary, ids, n = dictionary_encode(["a", "b"])
        with pytest.raises(CorruptionError):
            dictionary_decode(dictionary, ids, 1, 2)  # claim fewer entries

    def test_trailing_dictionary_bytes_raise(self):
        dictionary, ids, n = dictionary_encode(["a", "b"])
        with pytest.raises(CorruptionError):
            dictionary_decode(dictionary + b"junk", ids, n, 2)

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.text(max_size=20), max_size=200))
    def test_roundtrip_property(self, values):
        dictionary, ids, n = dictionary_encode(values)
        assert dictionary_decode(dictionary, ids, n, len(values)) == values


class TestIntDictionary:
    def test_low_cardinality_chooses_dictionary(self):
        values = np.array([200, 200, 301, 404, 500, 200] * 1000, dtype=np.int64)
        flags, payload = encode_int64_payload(values)
        assert CompressionFlags.DICT in flags
        assert CompressionFlags.BITPACK in flags
        assert len(payload) < values.nbytes / 20
        assert decode_int64_payload(flags, payload, values.size).tolist() == values.tolist()

    def test_high_cardinality_skips_dictionary(self):
        values = np.arange(10_000, dtype=np.int64) * 7919  # all distinct
        flags, payload = encode_int64_payload(values)
        assert CompressionFlags.DICT not in flags
        assert decode_int64_payload(flags, payload, values.size).tolist() == values.tolist()

    def test_negative_values_in_dictionary(self):
        values = np.array([-1, -1, 7, -1, 7, 7] * 500, dtype=np.int64)
        flags, payload = encode_int64_payload(values)
        assert CompressionFlags.DICT in flags
        assert decode_int64_payload(flags, payload, values.size).tolist() == values.tolist()

    def test_truncated_dictionary_raises(self):
        values = np.array([1, 2, 1, 2] * 500, dtype=np.int64)
        flags, payload = encode_int64_payload(values)
        assert CompressionFlags.DICT in flags
        with pytest.raises(CorruptionError):
            decode_int64_payload(flags, payload[:4], values.size)

    def test_dictionary_never_loses_to_itself(self):
        # Columns where the dictionary does not pay must fall through
        # without error and still round-trip.
        rng = np.random.default_rng(9)
        values = rng.integers(0, 50, size=60).astype(np.int64)  # tiny column
        flags, payload = encode_int64_payload(values)
        assert decode_int64_payload(flags, payload, values.size).tolist() == values.tolist()
