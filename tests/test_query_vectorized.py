"""Vectorized execution: kernels, the decoded-column cache, and the
row-path differential oracle.

The contract under test: for any query, :func:`execute_on_leaf` (the
vectorized default) and :func:`execute_on_leaf_rows` (the original
row-at-a-time loop) produce equal partials, equal scan statistics, and
equal errors — and the cache never changes an answer, only its cost.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.colcache import CACHE_REGION, DecodedColumnCache
from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod
from repro.disk.backup import DiskBackup
from repro.errors import QueryError
from repro.query.aggregate import merge_leaf_results
from repro.query.execute import (
    execute_on_leaf,
    execute_on_leaf_rows,
    rows_in_time_range,
)
from repro.query.query import Aggregation, Filter, Query
from repro.server.leaf import LeafServer
from repro.util.clock import ManualClock
from repro.util.memtrack import MemoryTracker

ROWS_PER_BLOCK = 25


def make_map(rows=120, rows_per_block=ROWS_PER_BLOCK, cache=None):
    """Mixed-type table: several sealed blocks plus a buffer remainder."""
    leafmap = LeafMap(
        clock=ManualClock(0.0), rows_per_block=rows_per_block, column_cache=cache
    )
    table = leafmap.get_or_create("service_requests")
    table.add_rows(
        {
            "time": 1000 + i,
            "endpoint": f"/api/{i % 5}",
            "latency": float(i % 90) + 0.25,
            "status": 200 if i % 7 else 503,
            "tags": ["prod"] + (["canary"] if i % 3 == 0 else []),
        }
        for i in range(rows)
    )
    return leafmap


def assert_equivalent(leafmap, query):
    """Vectorized and row-path executions agree on everything."""
    fast = execute_on_leaf(leafmap, query)
    slow = execute_on_leaf_rows(leafmap, query)
    assert fast.blocks_pruned == slow.blocks_pruned
    assert fast.rows_scanned == slow.rows_scanned
    assert fast.rows_matched == slow.rows_matched
    merged_fast = merge_leaf_results(query, [fast.partial], 1)
    merged_slow = merge_leaf_results(query, [slow.partial], 1)
    assert [r.group for r in merged_fast.rows] == [
        r.group for r in merged_slow.rows
    ]
    for lhs, rhs in zip(merged_fast.rows, merged_slow.rows):
        for label, value in rhs.values.items():
            got = lhs.values[label]
            if isinstance(value, float):
                # Block-partitioned float sums round differently in the
                # last bits than one sequential accumulation.
                assert got == pytest.approx(value, rel=1e-9, abs=1e-12), label
            else:
                assert got == value, label
    return fast, slow


class TestDifferentialExplicit:
    def test_count_only(self):
        fast, _ = assert_equivalent(make_map(), Query("service_requests"))
        assert fast.partial[()][0].count == 120

    def test_all_aggregations_grouped(self):
        query = Query(
            "service_requests",
            aggregations=(
                Aggregation("count"),
                Aggregation("sum", "latency"),
                Aggregation("avg", "latency"),
                Aggregation("min", "latency"),
                Aggregation("max", "latency"),
                Aggregation("p50", "latency"),
                Aggregation("p90", "latency"),
            ),
            group_by=("endpoint",),
        )
        assert_equivalent(make_map(), query)

    def test_filters_on_every_type(self):
        query = Query(
            "service_requests",
            filters=(
                Filter("status", "eq", 200),
                Filter("endpoint", "ne", "/api/3"),
                Filter("latency", "lt", 60.0),
                Filter("tags", "contains", "canary"),
            ),
        )
        fast, slow = assert_equivalent(make_map(), query)
        assert fast.rows_matched == slow.rows_matched > 0

    def test_in_filter_string_and_numeric(self):
        for filt in (
            Filter("endpoint", "in", ("/api/1", "/api/4", "/nope")),
            Filter("status", "in", (503, 999)),
            Filter("status", "in", ("not-a-status", 200)),
        ):
            assert_equivalent(
                make_map(), Query("service_requests", filters=(filt,))
            )

    def test_time_range_and_buckets(self):
        query = Query(
            "service_requests",
            start_time=1055,
            end_time=1090,
            bucket_seconds=30,
            group_by=("endpoint",),
        )
        fast, _ = assert_equivalent(make_map(), query)
        assert fast.blocks_pruned > 0

    def test_group_by_numeric_and_missing_column(self):
        query = Query(
            "service_requests",
            group_by=("status", "ghost"),
            aggregations=(Aggregation("count"), Aggregation("sum", "ghost")),
        )
        fast, _ = assert_equivalent(make_map(), query)
        assert all(key[1] is None for key in fast.partial)

    def test_filter_on_missing_column_matches_nothing(self):
        for op in ("eq", "ne", "lt", "in"):
            value = (1,) if op == "in" else 1
            query = Query(
                "service_requests", filters=(Filter("ghost", op, value),)
            )
            fast, slow = assert_equivalent(make_map(), query)
            assert fast.rows_matched == 0

    def test_contains_on_scalar_column_raises_identically(self):
        query = Query(
            "service_requests", filters=(Filter("status", "contains", "x"),)
        )
        with pytest.raises(QueryError) as fast_err:
            execute_on_leaf(make_map(), query)
        with pytest.raises(QueryError) as slow_err:
            execute_on_leaf_rows(make_map(), query)
        assert str(fast_err.value) == str(slow_err.value)

    def test_contains_on_string_column_raises_identically(self):
        query = Query(
            "service_requests", filters=(Filter("endpoint", "contains", "x"),)
        )
        with pytest.raises(QueryError) as fast_err:
            execute_on_leaf(make_map(), query)
        with pytest.raises(QueryError) as slow_err:
            execute_on_leaf_rows(make_map(), query)
        assert str(fast_err.value) == str(slow_err.value)

    def test_aggregating_string_column_raises_identically(self):
        query = Query(
            "service_requests", aggregations=(Aggregation("sum", "endpoint"),)
        )
        with pytest.raises(QueryError) as fast_err:
            execute_on_leaf(make_map(), query)
        with pytest.raises(QueryError) as slow_err:
            execute_on_leaf_rows(make_map(), query)
        assert str(fast_err.value) == str(slow_err.value)

    def test_group_by_vector_column_raises_identically(self):
        query = Query("service_requests", group_by=("tags",))
        with pytest.raises(TypeError):
            execute_on_leaf(make_map(), query)
        with pytest.raises(TypeError):
            execute_on_leaf_rows(make_map(), query)

    def test_vectorized_false_routes_to_row_path(self):
        query = Query("service_requests", group_by=("endpoint",))
        by_flag = execute_on_leaf(make_map(), query, vectorized=False)
        oracle = execute_on_leaf_rows(make_map(), query)
        assert by_flag.partial.keys() == oracle.partial.keys()
        assert by_flag.rows_scanned == oracle.rows_scanned


FILTER_STRATEGY = st.one_of(
    st.builds(
        Filter,
        st.just("status"),
        st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
        st.sampled_from([200, 503, 300]),
    ),
    st.builds(
        Filter,
        st.just("endpoint"),
        st.sampled_from(["eq", "ne", "lt", "ge"]),
        st.sampled_from(["/api/0", "/api/3", "/zzz"]),
    ),
    st.builds(
        Filter,
        st.just("endpoint"),
        st.just("in"),
        st.sets(
            st.sampled_from(["/api/0", "/api/1", "/api/2", "/nope"]), max_size=3
        ).map(tuple),
    ),
    st.builds(
        Filter,
        st.just("tags"),
        st.just("contains"),
        st.sampled_from(["prod", "canary", "absent"]),
    ),
    st.builds(
        Filter, st.just("ghost"), st.sampled_from(["eq", "ne"]), st.just(1)
    ),
)


class TestDifferentialProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        rows=st.integers(min_value=1, max_value=130),
        filters=st.lists(FILTER_STRATEGY, max_size=3).map(tuple),
        group_by=st.sets(
            st.sampled_from(["endpoint", "status", "ghost"]), max_size=2
        ).map(tuple),
        start=st.one_of(st.none(), st.integers(min_value=990, max_value=1130)),
        width=st.one_of(st.none(), st.integers(min_value=0, max_value=120)),
        bucket=st.one_of(st.none(), st.sampled_from([7, 30, 60])),
        agg_column=st.sampled_from(["latency", "status", "ghost"]),
    )
    def test_row_and_vectorized_paths_agree(
        self, rows, filters, group_by, start, width, bucket, agg_column
    ):
        """Property: the vectorized executor is indistinguishable from
        the row-at-a-time oracle on any query it can answer."""
        end = None if (start is None or width is None) else start + width
        query = Query(
            "service_requests",
            aggregations=(
                Aggregation("count"),
                Aggregation("sum", agg_column),
                Aggregation("min", agg_column),
                Aggregation("max", agg_column),
                Aggregation("p50", agg_column),
            ),
            group_by=group_by,
            filters=filters,
            start_time=start,
            end_time=end,
            bucket_seconds=bucket,
        )
        assert_equivalent(make_map(rows), query)


class TestDecodedColumnCache:
    def query(self):
        return Query(
            "service_requests",
            aggregations=(Aggregation("count"), Aggregation("avg", "latency")),
            group_by=("endpoint",),
            filters=(Filter("status", "eq", 200),),
        )

    def test_cache_populates_and_hits(self):
        cache = DecodedColumnCache(1 << 20)
        leafmap = make_map(cache=cache)
        first = execute_on_leaf(leafmap, self.query())
        assert len(cache) > 0
        assert cache.stats().misses > 0
        misses_after_first = cache.stats().misses
        second = execute_on_leaf(leafmap, self.query())
        stats = cache.stats()
        assert stats.misses == misses_after_first  # fully warm
        assert stats.hits > 0
        assert stats.hit_rate > 0
        merged_first = merge_leaf_results(self.query(), [first.partial], 1)
        merged_second = merge_leaf_results(self.query(), [second.partial], 1)
        assert [(r.group, r.values) for r in merged_first.rows] == [
            (r.group, r.values) for r in merged_second.rows
        ]

    def test_cached_answers_equal_uncached(self):
        cached = execute_on_leaf(
            make_map(cache=DecodedColumnCache(1 << 20)), self.query()
        )
        plain = execute_on_leaf(make_map(), self.query())
        assert cached.partial.keys() == plain.partial.keys()
        for key in plain.partial:
            for lhs, rhs in zip(cached.partial[key], plain.partial[key]):
                assert lhs.to_dict() == rhs.to_dict()

    def test_byte_cap_evicts_lru(self):
        cache = DecodedColumnCache(0)
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        # Every entry is larger than the zero cap: nothing is retained.
        assert len(cache) == 0
        assert cache.nbytes == 0

        small = DecodedColumnCache(2000)
        leafmap = make_map(cache=small)
        execute_on_leaf(leafmap, self.query())
        assert small.nbytes <= 2000
        assert small.stats().evictions > 0 or len(small) > 0

    def test_tracker_charged_and_discharged(self):
        tracker = MemoryTracker()
        cache = DecodedColumnCache(1 << 20, tracker=tracker)
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        assert tracker.in_region(CACHE_REGION) == cache.nbytes > 0
        freed = cache.clear()
        assert freed > 0
        assert tracker.in_region(CACHE_REGION) == 0

    def test_expiry_invalidates_entries(self):
        cache = DecodedColumnCache(1 << 20)
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        before = len(cache)
        table = leafmap.get_table("service_requests")
        dropped = table.expire_before(1000 + 2 * ROWS_PER_BLOCK)
        assert dropped > 0
        assert len(cache) < before
        assert cache.stats().invalidations > 0
        # Post-expiry queries still agree with the oracle.
        assert_equivalent(leafmap, self.query())

    def test_take_blocks_invalidates_entries(self):
        cache = DecodedColumnCache(1 << 20)
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        assert len(cache) > 0
        leafmap.get_table("service_requests").take_blocks()
        assert len(cache) == 0

    def test_drop_table_invalidates_entries(self):
        cache = DecodedColumnCache(1 << 20)
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        assert len(cache) > 0
        leafmap.drop_table("service_requests")
        assert len(cache) == 0

    def test_enforce_size_limit_invalidates_entries(self):
        cache = DecodedColumnCache(1 << 20)
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        table = leafmap.get_table("service_requests")
        table.enforce_size_limit(0)
        # All sealed blocks gone; only buffer-backed entries could
        # remain, and no entries are made for buffer rows.
        assert len(cache) == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            DecodedColumnCache(-1)

    def test_column_heat_counts_lookups_and_survives_clear(self):
        """The heat counters feed the lazy restore's sweep ordering, so
        they deliberately outlive ``clear()`` — what was hot before a
        restart is exactly what the sweep wants to fault in first."""
        cache = DecodedColumnCache(1 << 20)
        assert cache.column_heat() == {}
        leafmap = make_map(cache=cache)
        execute_on_leaf(leafmap, self.query())
        heat = cache.column_heat()
        assert heat  # the query's columns were looked up
        assert "status" in heat  # the filter column, decoded per block
        assert heat == cache.stats().column_lookups
        cache.clear()
        assert len(cache) == 0
        assert cache.column_heat() == heat
        execute_on_leaf(leafmap, self.query())
        hotter = cache.column_heat()
        assert all(hotter[name] >= count for name, count in heat.items())
        # The accessor hands out copies, not the live dict.
        hotter["status"] = -1
        assert cache.column_heat() != hotter


class TestCacheAcrossRestart:
    def test_cache_dropped_at_shutdown_and_cold_after_restore(
        self, shm_namespace, tmp_path, clock
    ):
        """The restart protocol's cache lifecycle: populated while
        serving, emptied before the Figure-6 copy loop (its bytes never
        count against the restart footprint), and rebuilt cold after
        restore — with identical query answers."""
        leaf = LeafServer(
            "leaf0",
            DiskBackup(tmp_path / "backup"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=ROWS_PER_BLOCK,
        )
        leaf.start()
        leaf.add_rows(
            "service_requests",
            [
                {
                    "time": 1000 + i,
                    "endpoint": f"/api/{i % 5}",
                    "latency": float(i % 90),
                }
                for i in range(4 * ROWS_PER_BLOCK)
            ],
        )
        query = Query(
            "service_requests",
            aggregations=(Aggregation("count"), Aggregation("avg", "latency")),
            group_by=("endpoint",),
        )
        before = leaf.query(query)
        assert len(leaf.column_cache) > 0
        assert leaf.tracker.in_region(CACHE_REGION) > 0

        leaf.shutdown(use_shm=True)
        assert len(leaf.column_cache) == 0
        assert leaf.tracker.in_region(CACHE_REGION) == 0

        report = leaf.start()
        assert report.method is RecoveryMethod.SHARED_MEMORY
        # Restore rebuilds blocks; the cache must start cold.
        assert len(leaf.column_cache) == 0
        after = leaf.query(query)
        assert len(leaf.column_cache) > 0
        before_rows = merge_leaf_results(query, [before.partial], 1).rows
        after_rows = merge_leaf_results(query, [after.partial], 1).rows
        assert [(r.group, r.values) for r in before_rows] == [
            (r.group, r.values) for r in after_rows
        ]
        leaf.shutdown(use_shm=False)

    def test_crash_clears_cache(self, tmp_path, clock, shm_namespace):
        leaf = LeafServer(
            "leaf1",
            DiskBackup(tmp_path / "backup"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=ROWS_PER_BLOCK,
        )
        leaf.start()
        leaf.add_rows(
            "service_requests",
            [{"time": 1000 + i, "latency": float(i)} for i in range(60)],
        )
        leaf.query(Query("service_requests", aggregations=(Aggregation("sum", "latency"),)))
        assert len(leaf.column_cache) > 0
        leaf.crash()
        assert len(leaf.column_cache) == 0
        assert leaf.tracker.in_region(CACHE_REGION) == 0


class TestRowsInTimeRange:
    def test_always_a_generator(self):
        """Both the table-present and table-absent paths hand back the
        same shape — previously the absent path returned a bare
        ``iter(())`` while the present path returned a generator."""
        leafmap = make_map(10)
        present = rows_in_time_range(leafmap, "service_requests", None, None)
        absent = rows_in_time_range(leafmap, "nope", None, None)
        assert type(present).__name__ == "generator"
        assert type(absent).__name__ == "generator"
        assert len(list(present)) == 10
        assert list(absent) == []

    def test_respects_time_bounds(self):
        leafmap = make_map(100)
        rows = list(
            rows_in_time_range(leafmap, "service_requests", 1020, 1030)
        )
        assert len(rows) == 10
        assert all(1020 <= row["time"] < 1030 for row in rows)
