"""Tests for row blocks (paper, Figure 2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.rowblock import ROWS_PER_BLOCK, RowBlock
from repro.columnstore.schema import Schema
from repro.errors import (
    CapacityError,
    CorruptionError,
    LayoutVersionError,
    SchemaError,
)
from repro.types import ColumnType


def rows_fixture(n=20, t0=1000):
    return [
        {"time": t0 + i, "host": f"h{i % 3}", "v": float(i), "tags": ["a"][: i % 2]}
        for i in range(n)
    ]


class TestConstruction:
    def test_header_fields(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=5.0)
        assert block.row_count == 20
        assert block.min_time == 1000
        assert block.max_time == 1019
        assert block.created_at == 5.0
        assert block.nbytes > 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            RowBlock.from_rows([], created_at=0.0)

    def test_row_cap_enforced(self):
        rows = [{"time": 1}] * (ROWS_PER_BLOCK + 1)
        with pytest.raises(CapacityError):
            RowBlock.from_rows(rows, created_at=0.0)

    def test_explicit_schema(self):
        schema = Schema({"time": ColumnType.INT64, "v": ColumnType.FLOAT64})
        block = RowBlock.from_rows([{"time": 1}], created_at=0.0, schema=schema)
        assert block.to_rows() == [{"time": 1, "v": 0.0}]

    def test_mismatched_rbcs_rejected(self):
        schema = Schema({"time": ColumnType.INT64})
        with pytest.raises(SchemaError):
            RowBlock(schema, {}, 1, 0, 0, 0.0)

    def test_ragged_rows_get_defaults(self):
        rows = [{"time": 1, "host": "a"}, {"time": 2, "v": 1.5}]
        block = RowBlock.from_rows(rows, created_at=0.0)
        out = block.to_rows()
        assert out[0]["v"] == 0.0
        assert out[1]["host"] == ""


class TestAccess:
    def test_column_values(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=0.0)
        assert block.column_values("time") == list(range(1000, 1020))

    def test_unknown_column(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=0.0)
        with pytest.raises(SchemaError):
            block.rbc_buffer("missing")

    def test_rbc_buffers_in_schema_order(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=0.0)
        names = [name for name, _ in block.rbc_buffers()]
        assert names == block.schema.names

    def test_verify_clean(self):
        RowBlock.from_rows(rows_fixture(), created_at=0.0).verify()

    def test_release_column(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=0.0)
        size = len(block.rbc_buffer("host"))
        assert block.release_column("host") == size
        with pytest.raises(SchemaError):
            block.rbc_buffer("host")
        with pytest.raises(SchemaError):
            block.release_column("host")


class TestTimePruning:
    def test_overlaps(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=0.0)  # 1000..1019
        assert block.overlaps(None, None)
        assert block.overlaps(1019, None)
        assert not block.overlaps(1020, None)
        assert block.overlaps(None, 1001)
        assert not block.overlaps(None, 1000)
        assert block.overlaps(990, 1005)
        assert not block.overlaps(1500, 1600)


class TestPackUnpack:
    def test_roundtrip(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=3.5)
        other = RowBlock.unpack(block.pack())
        assert other.to_rows() == block.to_rows()
        assert other.schema == block.schema
        assert (other.min_time, other.max_time, other.row_count, other.created_at) == (
            block.min_time,
            block.max_time,
            block.row_count,
            block.created_at,
        )

    def test_packed_is_position_independent(self):
        block = RowBlock.from_rows(rows_fixture(), created_at=0.0)
        packed = block.pack()
        shifted = b"\xee" * 11 + packed
        view = memoryview(shifted)[11:]
        assert RowBlock.unpack(view).to_rows() == block.to_rows()

    def test_truncation_detected(self):
        packed = RowBlock.from_rows(rows_fixture(), created_at=0.0).pack()
        with pytest.raises(CorruptionError):
            RowBlock.unpack(packed[:-10])

    def test_bad_magic_detected(self):
        packed = bytearray(RowBlock.from_rows(rows_fixture(), created_at=0.0).pack())
        packed[0] ^= 0xFF
        with pytest.raises(CorruptionError):
            RowBlock.unpack(packed)

    def test_version_mismatch_detected(self):
        packed = bytearray(RowBlock.from_rows(rows_fixture(), created_at=0.0).pack())
        packed[4] = 77
        with pytest.raises(LayoutVersionError):
            RowBlock.unpack(packed)

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.fixed_dictionaries(
                {
                    "time": st.integers(min_value=0, max_value=2**40),
                    "host": st.sampled_from(["a", "b", "c"]),
                    "v": st.floats(allow_nan=False, width=32),
                }
            ),
            min_size=1,
            max_size=60,
        )
    )
    def test_roundtrip_property(self, rows):
        block = RowBlock.from_rows(rows, created_at=1.0)
        assert RowBlock.unpack(block.pack()).to_rows() == block.to_rows()
