"""The leaf server's serve-while-restoring window, end to end.

Covers the ``RECOVERING_MEMORY_SERVING`` status and its data plane, the
status-ladder regression (a leaf must advertise ``RECOVERING_MEMORY``
right up to the disk-fallback boundary and ``RECOVERING_DISK`` after
it), queries in every restore phase — digest-identical to a blocking
restore, on the thread and the process backend — and expiry racing the
fault-in path against the decoded-column cache.
"""

from __future__ import annotations

import pytest

from repro.core.engine import RecoveryMethod
from repro.disk.backup import DiskBackup
from repro.errors import CorruptionError, StateError
from repro.query.query import Aggregation, Query
from repro.server.leaf import LeafServer, LeafStatus
from repro.server.machine import Machine
from repro.util.checksum import rows_digest

ROWS = [
    {"time": 1000 + i, "host": f"h{i % 3}", "v": float(i % 17)}
    for i in range(240)
]

FULL_QUERY = Query(
    "events",
    aggregations=(Aggregation("count", None), Aggregation("sum", "v")),
    group_by=("host",),
)

#: Touches only the last sealed block ([1200, 1239] at 50 rows/block).
NARROW_QUERY = Query(
    "events",
    start_time=1200,
    end_time=1240,
    aggregations=(Aggregation("count", None),),
)


def make_leaf(shm_namespace, tmp_path, clock, leaf_id="0", **kwargs):
    return LeafServer(
        leaf_id,
        backup=DiskBackup(tmp_path / f"leaf-{leaf_id}"),
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=50,
        **kwargs,
    )


def seeded_down_leaf(shm_namespace, tmp_path, clock, leaf_id="0"):
    """A leaf that served ``ROWS`` and shut down into shared memory."""
    leaf = make_leaf(shm_namespace, tmp_path, clock, leaf_id=leaf_id)
    leaf.start()
    leaf.add_rows("events", ROWS)
    leaf.shutdown(use_shm=True)
    return make_leaf(shm_namespace, tmp_path, clock, leaf_id=leaf_id)


def partial_dict(execution):
    return {
        key: [agg.to_dict() for agg in aggs]
        for key, aggs in execution.partial.items()
    }


class TestServingWindow:
    def test_status_and_data_plane_while_serving(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        report = reborn.start(serve_while_restoring=True, sweep=False)
        assert reborn.status is LeafStatus.RECOVERING_MEMORY_SERVING
        assert report.lazy
        assert reborn.accepts_adds and reborn.accepts_queries
        progress = reborn.restore_progress()
        assert progress.fraction_restored < 1.0

        narrow = reborn.query(NARROW_QUERY)
        assert narrow.rows_matched == 40
        assert reborn.restore_progress().fraction_restored < 1.0
        reborn.add_rows("events", [{"time": 2000, "host": "late", "v": 1.0}])

        final = reborn.wait_restored()
        assert reborn.status is LeafStatus.ALIVE
        assert final.method is RecoveryMethod.SHARED_MEMORY
        assert reborn.restore_progress().fraction_restored == 1.0
        assert reborn.leafmap.row_count == 241

    def test_lazy_restore_digest_matches_blocking_restore(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start()  # blocking
        blocking_digest = rows_digest(reborn.leafmap.snapshot_rows())
        reborn.shutdown(use_shm=True)

        reborn.start(serve_while_restoring=True, sweep=False)
        reborn.query(NARROW_QUERY)
        reborn.wait_restored()
        assert rows_digest(reborn.leafmap.snapshot_rows()) == blocking_digest

    def test_background_sweep_finishes_without_queries(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start(serve_while_restoring=True)  # sweep thread on
        final = reborn.wait_restored(timeout=30)
        assert reborn.status is LeafStatus.ALIVE
        assert final.method is RecoveryMethod.SHARED_MEMORY
        assert reborn.leafmap.row_count == 240

    def test_sync_to_disk_skipped_while_partially_resident(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start(serve_while_restoring=True, sweep=False)
        assert reborn.sync_to_disk() == 0
        reborn.wait_restored()
        reborn.sync_to_disk()  # back to the normal path

    def test_shutdown_mid_restore_drains_first(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start(serve_while_restoring=True, sweep=False)
        reborn.query(NARROW_QUERY)
        report = reborn.shutdown(use_shm=True)
        assert report.rows == 240
        again = make_leaf(shm_namespace, tmp_path, clock)
        assert again.start().method is RecoveryMethod.SHARED_MEMORY
        assert again.leafmap.row_count == 240

    def test_crash_mid_restore_next_boot_walks_the_disk_ladder(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start(serve_while_restoring=True, sweep=False)
        reborn.query(NARROW_QUERY)
        reborn.crash()
        assert reborn.status is LeafStatus.DOWN
        again = make_leaf(shm_namespace, tmp_path, clock)
        report = again.start()
        assert report.method in (
            RecoveryMethod.DISK_SNAPSHOT,
            RecoveryMethod.DISK,
        )
        assert again.leafmap.row_count == 240

    def test_expiry_allowed_and_reaches_pending_blocks(
        self, shm_namespace, tmp_path, clock
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start(serve_while_restoring=True, sweep=False)
        # Fault in the newest block, leave the old ones pending; then
        # expire everything older than time 1100 — two pending blocks.
        reborn.query(NARROW_QUERY)
        retention = int(clock.now()) - 1100
        dropped = reborn.expire(retention)
        assert dropped == 100
        reborn.wait_restored()
        assert reborn.leafmap.row_count == 140
        table = reborn.leafmap.get_table("events")
        assert table.total_rows_expired == 100
        assert min(row["time"] for row in table.to_rows()) == 1100


class TestFallbackStatusLadder:
    """Regression: the Figure-5 status ladder around disk fallback.

    The leaf must advertise ``RECOVERING_MEMORY`` (rejecting work) right
    up to the moment memory recovery is abandoned, flip to
    ``RECOVERING_DISK`` (accepting adds and queries) for the disk rungs,
    and end ``ALIVE`` — on the blocking and the lazy start path alike.
    """

    @pytest.mark.parametrize("serve", [False, True])
    def test_status_flips_exactly_at_the_fallback_boundary(
        self, shm_namespace, tmp_path, clock, serve
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        statuses = {}

        def hook(point):
            if point == "restore:after_invalidate":
                statuses[point] = reborn.status
                raise CorruptionError("injected fault")
            if point == "restore:snapshot_table":
                statuses.setdefault(point, reborn.status)

        reborn.engine._fault = hook
        report = reborn.start(serve_while_restoring=serve, sweep=False)
        assert statuses["restore:after_invalidate"] is (
            LeafStatus.RECOVERING_MEMORY
        )
        assert statuses["restore:snapshot_table"] is LeafStatus.RECOVERING_DISK
        assert report.fell_back_to_disk
        assert report.failure_reason == "CorruptionError: injected fault"
        assert reborn.status is LeafStatus.ALIVE
        assert reborn.leafmap.row_count == 240

    def test_rejects_work_before_serving_status(
        self, shm_namespace, tmp_path, clock
    ):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        assert not leaf.accepts_queries
        with pytest.raises(StateError):
            leaf.query(FULL_QUERY)


class TestPhaseSweep:
    """Queries in every restore phase answer identically to a blocking
    restore — the core serve-while-restoring correctness claim."""

    PHASES = ("on_publish", "mid_fault_in", "mid_sweep", "after_restore")

    @pytest.mark.parametrize("phase", PHASES)
    def test_full_query_matches_blocking_restore_in_phase(
        self, shm_namespace, tmp_path, clock, phase
    ):
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start()  # blocking baseline
        baseline = partial_dict(reborn.query(FULL_QUERY))
        blocking_digest = rows_digest(reborn.leafmap.snapshot_rows())
        reborn.shutdown(use_shm=True)

        reborn.start(serve_while_restoring=True, sweep=False)
        if phase == "mid_fault_in":
            reborn.query(NARROW_QUERY)
        elif phase == "mid_sweep":
            restorer = reborn.leafmap.restorer
            assert restorer.sweep_one() and restorer.sweep_one()
        elif phase == "after_restore":
            reborn.wait_restored()
        answer = partial_dict(reborn.query(FULL_QUERY))
        assert answer == baseline
        reborn.wait_restored()
        assert rows_digest(reborn.leafmap.snapshot_rows()) == blocking_digest

    @pytest.mark.parametrize(
        "point", ["restore:publish_directory", "restore:fault_block"]
    )
    def test_faulted_lazy_restore_still_answers_identically(
        self, shm_namespace, tmp_path, clock, point
    ):
        """A fault at either lazy-only boundary routes the leaf down the
        disk ladder; the query in flight (or the next one) still answers
        with the blocking restore's exact result."""
        reborn = seeded_down_leaf(shm_namespace, tmp_path, clock)
        reborn.start()
        baseline = partial_dict(reborn.query(FULL_QUERY))
        blocking_digest = rows_digest(reborn.leafmap.snapshot_rows())
        reborn.shutdown(use_shm=True)

        fired = []

        def hook(p):
            if p == point and not fired:
                fired.append(p)
                raise CorruptionError("injected fault")

        reborn.engine._fault = hook
        report = reborn.start(serve_while_restoring=True, sweep=False)
        if point == "restore:publish_directory":
            # The ladder already ran blocking inside start().
            assert reborn.status is LeafStatus.ALIVE
            assert report.fell_back_to_disk
        answer = partial_dict(reborn.query(FULL_QUERY))
        assert fired, "the injected fault never fired"
        assert answer == baseline
        final = reborn.wait_restored()
        assert final.fell_back_to_disk
        assert reborn.status is LeafStatus.ALIVE
        assert rows_digest(reborn.leafmap.snapshot_rows()) == blocking_digest

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_machine_restart_serving_digest_identical(
        self, shm_namespace, tmp_path, clock, backend
    ):
        """Both restart backends: every leaf's lazily-restored contents
        equal its blocking restore's, with queries served mid-window."""
        machine = Machine(
            "m0",
            tmp_path,
            leaves_per_machine=2,
            namespace=shm_namespace,
            rows_per_block=50,
            shared_tracker=True,
        )
        machine.start_all()
        for offset, leaf in enumerate(machine.leaves):
            leaf.add_rows(
                "events",
                [dict(row, v=row["v"] + offset) for row in ROWS],
            )
        report = machine.restart_all(workers=2, backend=backend)
        assert report.failures == []
        digests = [
            rows_digest(leaf.leafmap.snapshot_rows())
            for leaf in machine.leaves
        ]
        baselines = [
            partial_dict(leaf.query(FULL_QUERY)) for leaf in machine.leaves
        ]

        report = machine.restart_all(
            workers=2, backend=backend, serve_while_restoring=True
        )
        assert report.failures == []
        assert report.serve_while_restoring
        for leaf, baseline in zip(machine.leaves, baselines):
            assert leaf.accepts_queries
            assert partial_dict(leaf.query(FULL_QUERY)) == baseline
        machine.wait_restored_all(timeout=30)
        for leaf, digest in zip(machine.leaves, digests):
            assert leaf.status is LeafStatus.ALIVE
            assert rows_digest(leaf.leafmap.snapshot_rows()) == digest


class TestExpiryAndCacheDuringRestore:
    """Regression: the decoded-column cache vs the fault-in path.

    Blocks adopted mid-restore populate the cache as queries decode
    them; when expiry then drops those blocks — adopted or still
    pending — the cache must shed their entries and every later answer
    must match a leaf that did the same thing with a blocking restore.
    """

    def test_seal_lazy_restore_expire_requery_digest(
        self, shm_namespace, tmp_path, clock
    ):
        retention = int(clock.now()) - 1100

        # Control: blocking restore, then the same expiry and query.
        control = seeded_down_leaf(
            shm_namespace, tmp_path, clock, leaf_id="ctl"
        )
        control.start()
        control.query(FULL_QUERY)  # warm the cache like the lazy leaf
        assert control.expire(retention) == 100
        control_answer = partial_dict(control.query(FULL_QUERY))
        control_digest = rows_digest(control.leafmap.snapshot_rows())

        lazy = seeded_down_leaf(shm_namespace, tmp_path, clock, leaf_id="lzy")
        lazy.start(serve_while_restoring=True, sweep=False)
        # Fault in the oldest data so adopted blocks sit in the cache...
        old_window = Query(
            "events",
            start_time=1000,
            end_time=1100,
            aggregations=(Aggregation("count", None),),
        )
        assert lazy.query(old_window).rows_matched == 100
        assert len(lazy.column_cache) > 0
        # ...then expire exactly those blocks out from under the restore.
        assert lazy.expire(retention) == 100
        lazy_answer = partial_dict(lazy.query(FULL_QUERY))
        assert lazy_answer == control_answer
        lazy.wait_restored()
        assert rows_digest(lazy.leafmap.snapshot_rows()) == control_digest
        # And the expired blocks' decodes are gone from the cache.
        assert lazy.column_cache.stats().invalidations > 0
