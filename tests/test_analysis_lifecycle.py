"""Fixture tests for the segment-lifecycle checker (RL4xx).

Includes the acceptance gate for this PR: deliberately re-introducing
the PR 2 leaked-attach-on-fallback bug into ``core/engine.py`` must be
caught.
"""

from pathlib import Path

import pytest

from repro.analysis.checkers import lifecycle
from repro.analysis.loader import SourceModule, load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(name):
    return lifecycle.check(load_files([FIXTURES / name]))


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.line, f.symbol) for f in run("lifecycle_bad.py")}
        assert found == {
            ("RL401", 7, "leak_forever:ShmSegment.attach"),
            ("RL402", 12, "leak_on_raise:ShmSegment.attach"),
        }


class TestGoodFixture:
    def test_silent(self):
        """with-block, chained unlink, try/finally, handler release,
        constructor hand-off, and return all count as covered."""
        assert run("lifecycle_good.py") == []


class TestRealTree:
    def test_engine_is_clean(self, repo_root):
        modules = load_files(
            [repo_root / "src/repro/core/engine.py"], root=repo_root
        )
        assert lifecycle.check(modules) == []

    def test_reintroducing_pr2_leak_is_caught(self, repo_root):
        """Strip the fallback handler's close() — the original PR 2 bug —
        and the checker must flag the attach in _restore_from_segments."""
        path = repo_root / "src/repro/core/engine.py"
        text = path.read_text()
        buggy = text.replace(
            "                if segment is not None:\n"
            "                    segment.close()\n",
            "",
        )
        assert buggy != text, "engine.py no longer matches the guarded idiom"
        import ast

        module = SourceModule(
            path=path,
            relpath="src/repro/core/engine.py",
            tree=ast.parse(buggy),
            text=buggy,
        )
        module._index_parents()
        findings = lifecycle.check([module])
        leaks = [
            f
            for f in findings
            if f.code == "RL402"
            and f.symbol == "_restore_from_segments:ShmSegment.attach"
        ]
        assert leaks, f"PR 2 leak not caught; findings: {findings}"


class TestOwnershipRules:
    @pytest.mark.parametrize(
        "source,expect_codes",
        [
            # borrow: passing to a lowercase function is NOT a release
            (
                "def f(name, sink):\n"
                "    segment = ShmSegment.attach(name)\n"
                "    sink(segment)\n",
                {"RL401"},
            ),
            # constructor wrap IS an ownership transfer
            (
                "def f(name):\n"
                "    raw = ShmSegment.attach(name)\n"
                "    return Wrapper(raw)\n",
                set(),
            ),
        ],
    )
    def test_borrow_vs_transfer(self, tmp_path, source, expect_codes):
        fixture = tmp_path / "case.py"
        fixture.write_text(source)
        findings = lifecycle.check(load_files([fixture]))
        assert {f.code for f in findings} == expect_codes
