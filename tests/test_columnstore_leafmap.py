"""Tests for the leaf map."""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.table import Table
from repro.errors import SchemaError
from repro.util.clock import ManualClock


def make_map():
    return LeafMap(clock=ManualClock(0.0), rows_per_block=10)


class TestLeafMap:
    def test_create_get(self):
        leafmap = make_map()
        table = leafmap.create_table("events")
        assert leafmap.get_table("events") is table
        assert "events" in leafmap
        assert len(leafmap) == 1

    def test_duplicate_create_rejected(self):
        leafmap = make_map()
        leafmap.create_table("events")
        with pytest.raises(SchemaError):
            leafmap.create_table("events")

    def test_get_missing_raises(self):
        with pytest.raises(SchemaError):
            make_map().get_table("nope")

    def test_get_or_create_idempotent(self):
        leafmap = make_map()
        assert leafmap.get_or_create("x") is leafmap.get_or_create("x")

    def test_drop(self):
        leafmap = make_map()
        leafmap.create_table("events")
        leafmap.drop_table("events")
        assert "events" not in leafmap
        with pytest.raises(SchemaError):
            leafmap.drop_table("events")

    def test_adopt(self):
        leafmap = make_map()
        table = Table("adopted", clock=ManualClock(0.0))
        leafmap.adopt_table(table)
        assert leafmap.get_table("adopted") is table
        with pytest.raises(SchemaError):
            leafmap.adopt_table(Table("adopted"))

    def test_aggregates(self):
        leafmap = make_map()
        leafmap.get_or_create("a").add_rows({"time": i} for i in range(25))
        leafmap.get_or_create("b").add_rows({"time": i} for i in range(5))
        assert leafmap.row_count == 30
        assert leafmap.nbytes > 0
        assert sorted(leafmap.table_names) == ["a", "b"]

    def test_seal_all(self):
        leafmap = make_map()
        leafmap.get_or_create("a").add_rows({"time": i} for i in range(3))
        leafmap.seal_all()
        assert leafmap.get_table("a").buffered_row_count == 0
        assert leafmap.get_table("a").block_count == 1

    def test_snapshot_rows(self):
        leafmap = make_map()
        leafmap.get_or_create("a").add_rows({"time": i} for i in range(3))
        snap = leafmap.snapshot_rows()
        assert list(snap) == ["a"]
        assert [r["time"] for r in snap["a"]] == [0, 1, 2]

    def test_rows_per_block_propagates(self):
        leafmap = make_map()
        table = leafmap.create_table("t")
        table.add_rows({"time": i} for i in range(10))
        assert table.block_count == 1  # sealed at 10, the map's setting
