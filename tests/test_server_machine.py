"""Tests for Machine and remaining server/ingest edges."""

import pytest

from repro.server.machine import Machine


class TestMachine:
    def test_hosts_n_leaves_and_an_aggregator(self, shm_namespace, tmp_path, clock):
        machine = Machine(
            "m0", tmp_path, leaves_per_machine=3, namespace=shm_namespace,
            clock=clock, rows_per_block=32,
        )
        assert len(machine.leaves) == 3
        assert machine.aggregator.leaves == machine.leaves
        assert all(leaf.machine_id == "m0" for leaf in machine.leaves)

    def test_leaf_ids_embed_machine(self, shm_namespace, tmp_path, clock):
        machine = Machine(
            "7", tmp_path, leaves_per_machine=2, namespace=shm_namespace,
            clock=clock,
        )
        assert [leaf.leaf_id for leaf in machine.leaves] == ["7.0", "7.1"]

    def test_start_all_and_restarting_leaves(self, shm_namespace, tmp_path, clock):
        machine = Machine(
            "m1", tmp_path, leaves_per_machine=2, namespace=shm_namespace,
            clock=clock, rows_per_block=32,
        )
        assert len(machine.restarting_leaves) == 2  # INIT state
        machine.start_all()
        assert machine.restarting_leaves == []
        machine.leaves[0].crash()
        assert machine.restarting_leaves == [machine.leaves[0]]

    def test_nbytes_aggregates(self, shm_namespace, tmp_path, clock):
        machine = Machine(
            "m2", tmp_path, leaves_per_machine=2, namespace=shm_namespace,
            clock=clock, rows_per_block=32,
        )
        machine.start_all()
        machine.leaves[0].add_rows("t", [{"time": i} for i in range(64)])
        assert machine.nbytes > 0
        assert machine.nbytes == sum(leaf.used_bytes for leaf in machine.leaves)

    def test_needs_a_leaf(self, tmp_path):
        with pytest.raises(ValueError):
            Machine("m", tmp_path, leaves_per_machine=0)

    def test_repr_counts_alive(self, shm_namespace, tmp_path, clock):
        machine = Machine(
            "m3", tmp_path, leaves_per_machine=2, namespace=shm_namespace,
            clock=clock,
        )
        machine.start_all()
        assert "alive=2" in repr(machine)


class TestLeafBackupSeparation:
    def test_leaves_have_independent_backups(self, shm_namespace, tmp_path, clock):
        machine = Machine(
            "m4", tmp_path, leaves_per_machine=2, namespace=shm_namespace,
            clock=clock, rows_per_block=32,
        )
        machine.start_all()
        machine.leaves[0].add_rows("t", [{"time": 1}])
        machine.leaves[0].sync_to_disk()
        assert machine.leaves[0].backup.synced_rows("t") == 1
        assert machine.leaves[1].backup.synced_rows("t") == 0
        assert (
            machine.leaves[0].backup.directory != machine.leaves[1].backup.directory
        )
