"""Serve-while-restoring at the engine level: the LazyRestore handle.

The blocking restore's guarantees — valid-bit crash safety, tracker
balance, digest-identical recovered data — must all hold when the
restore is incremental: directory published first, blocks faulted in by
queries, remainder swept hottest table first, faults routed down the
disk ladder mid-flight.
"""

from __future__ import annotations

import pytest

from repro.columnstore.colcache import DecodedColumnCache
from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.core.parallel import FootprintBudget
from repro.errors import CorruptionError, RecoveryError
from repro.query.execute import execute_on_leaf
from repro.query.query import Aggregation, Query
from repro.util.memtrack import MemoryTracker

from tests.conftest import make_leafmap


def engine_for(namespace, backup, clock, **kwargs):
    return RestartEngine(
        "0", namespace=namespace, backup=backup, clock=clock, **kwargs
    )


def seed_shm(namespace, backup, clock, tables=("events",), rows=120):
    """Back a populated leaf into shared memory; returns its snapshot."""
    leafmap = make_leafmap(clock, tables=tables, rows=rows)
    leafmap.seal_all()
    snapshot = leafmap.snapshot_rows()
    engine_for(namespace, backup, clock).backup_to_shm(leafmap)
    return snapshot


def fresh_map(clock, cache=None):
    return LeafMap(clock=clock, rows_per_block=50, column_cache=cache)


def count_query(start=None, end=None):
    return Query(
        "events",
        start_time=start,
        end_time=end,
        aggregations=[Aggregation("count", None)],
    )


class TestDirectoryPublish:
    def test_begin_serves_before_any_bytes_are_restored(
        self, shm_namespace, backup, clock
    ):
        seed_shm(shm_namespace, backup, clock)
        engine = engine_for(shm_namespace, backup, clock)
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        try:
            assert not handle.done
            progress = handle.progress()
            assert progress.bytes_restored == 0
            assert progress.blocks_restored == 0
            assert progress.blocks_total == 3  # 120 rows / 50 per block
            assert progress.fraction_restored == 0.0
            # The directory is the leaf's view: tables exist, counters
            # carried over, but no payload bytes were copied.
            assert restored.restorer is handle
            assert not restored.fully_resident
            table = restored.get_table("events")
            assert table.block_count == 0
            assert table.total_rows_ingested == 120
            pending = list(handle.iter_pending("events"))
            assert len(pending) == 3
            assert sum(desc.row_count for desc in pending) == 120
            assert pending[0].min_time == 1000
            assert handle.report.lazy
            # Crash safety: the valid bit went down before the publish.
            assert engine.shm_state_exists()
            assert not engine.shm_state_valid()
        finally:
            handle.drain()

    def test_no_shm_runs_the_disk_ladder_blocking(
        self, shm_namespace, backup, clock
    ):
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        backup.sync_leafmap(leafmap)
        restored = fresh_map(clock)
        handle = engine_for(shm_namespace, backup, clock).begin_lazy_restore(
            restored
        )
        assert handle.done
        assert handle.report.method in (
            RecoveryMethod.DISK_SNAPSHOT,
            RecoveryMethod.DISK,
        )
        assert restored.fully_resident
        assert restored.snapshot_rows() == snapshot


class TestFaultIn:
    def test_query_faults_only_the_blocks_it_touches(
        self, shm_namespace, backup, clock
    ):
        seed_shm(shm_namespace, backup, clock)
        restored = fresh_map(clock)
        handle = engine_for(shm_namespace, backup, clock).begin_lazy_restore(
            restored
        )
        # Block boundaries: [1000, 1049], [1050, 1099], [1100, 1119].
        execution = execute_on_leaf(restored, count_query(1000, 1050))
        assert execution.rows_matched == 50
        progress = handle.progress()
        assert progress.blocks_restored == 1
        assert progress.queries_served == 1
        assert progress.bytes_restored_at_first_query is not None
        assert progress.bytes_restored_at_first_query < progress.bytes_total
        assert len(list(handle.iter_pending("events"))) == 2
        handle.drain()

    def test_fault_in_query_counts_and_is_idempotent(
        self, shm_namespace, backup, clock
    ):
        seed_shm(shm_namespace, backup, clock)
        restored = fresh_map(clock)
        handle = engine_for(shm_namespace, backup, clock).begin_lazy_restore(
            restored
        )
        assert handle.fault_in_query("events", 1050, 1100) == 1
        assert handle.fault_in_query("events", 1050, 1100) == 0
        assert handle.fault_in_query("missing_table", None, None) == 0
        assert handle.fault_in_query("events", None, None) == 2
        assert handle.done  # everything is in; the handle self-finishes

    def test_drain_matches_blocking_restore_and_consumes_shm(
        self, shm_namespace, backup, clock
    ):
        snapshot = seed_shm(
            shm_namespace, backup, clock, tables=("events", "metrics")
        )
        engine = engine_for(shm_namespace, backup, clock)
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        handle.drain()
        assert handle.done
        report = handle.report
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert report.tables == 2
        assert report.row_blocks == 6
        assert report.rows == 240
        assert report.leaf_states == [
            "init",
            "memory_recovery",
            "memory_serving",
            "alive",
        ]
        assert restored.snapshot_rows() == snapshot
        assert restored.restorer is None
        assert restored.fully_resident
        assert not engine.shm_state_exists()

    def test_sweep_prefers_the_hot_table(self, shm_namespace, backup, clock):
        # Two tables with disjoint value columns, "cold" published first.
        leafmap = fresh_map(clock)
        leafmap.get_or_create("cold").add_rows(
            {"time": 1000 + i, "c": i} for i in range(100)
        )
        leafmap.get_or_create("hot").add_rows(
            {"time": 1000 + i, "h": i} for i in range(100)
        )
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        engine_for(shm_namespace, backup, clock).backup_to_shm(leafmap)

        cache = DecodedColumnCache(1 << 20)
        restored = fresh_map(clock, cache=cache)
        handle = engine_for(shm_namespace, backup, clock).begin_lazy_restore(
            restored
        )
        # Heat the "h" column: the cache's lifetime lookup counters are
        # the sweep's priority signal (a probe block's uid is irrelevant
        # — heat is keyed by column name alone).
        probe = fresh_map(clock)
        probe_table = probe.get_or_create("probe")
        probe_table.add_rows([{"time": 1, "h": 0.0}])
        probe.seal_all()
        for _ in range(3):
            cache.get(probe_table.blocks[0], "h")

        assert handle.sweep_one() and handle.sweep_one()
        assert list(handle.iter_pending("hot")) == []
        assert len(list(handle.iter_pending("cold"))) == 2
        handle.drain()
        assert restored.snapshot_rows() == snapshot


class TestAccounting:
    def test_tracker_balances_through_a_lazy_restore(
        self, shm_namespace, backup, clock
    ):
        tracker = MemoryTracker()
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        engine = engine_for(shm_namespace, backup, clock, tracker=tracker)
        engine.backup_to_shm(leafmap)
        assert tracker.in_region("heap") == 0
        shm_bytes = tracker.in_region("shm")
        assert shm_bytes > 0

        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        # Publishing copies nothing: shm still charged, heap still empty.
        assert tracker.in_region("shm") == shm_bytes
        assert tracker.in_region("heap") == 0
        handle.fault_in_query("events", 1000, 1050)
        assert tracker.in_region("heap") > 0
        handle.drain()
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    def test_budget_bounds_each_fault_in_window(
        self, shm_namespace, backup, clock
    ):
        seed_shm(shm_namespace, backup, clock)
        budget = FootprintBudget(1 << 30)
        engine = engine_for(shm_namespace, backup, clock, budget=budget)
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        handle.drain()
        # Each block's copy window was reserved and released one at a
        # time — the peak is one block, not the whole leaf.
        assert 0 < budget.peak_in_flight < handle.progress().bytes_total


class TestFallback:
    def test_fault_at_publish_runs_the_ladder_inside_begin(
        self, shm_namespace, backup, clock
    ):
        snapshot = seed_shm(shm_namespace, backup, clock)
        tracker = MemoryTracker()

        def explode(point):
            if point == "restore:publish_directory":
                raise CorruptionError("injected publish fault")

        engine = engine_for(
            shm_namespace, backup, clock, tracker=tracker, fault_hook=explode
        )
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        assert handle.done
        report = handle.report
        assert report.fell_back_to_disk
        assert report.failure_reason == "CorruptionError: injected publish fault"
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.snapshot_rows() == snapshot
        assert tracker.in_region("shm") == 0
        assert not engine.shm_state_exists()

    def test_fault_mid_fault_in_routes_down_the_ladder(
        self, shm_namespace, backup, clock
    ):
        snapshot = seed_shm(shm_namespace, backup, clock)
        tracker = MemoryTracker()
        fired = []

        def explode(point):
            if point == "restore:fault_block" and len(fired) == 1:
                fired.append(point)
                raise CorruptionError("injected block fault")
            if point == "restore:fault_block":
                fired.append(point)

        engine = engine_for(
            shm_namespace, backup, clock, tracker=tracker, fault_hook=explode
        )
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        # One block faults in cleanly, the second one dies mid-decode.
        assert handle.fault_in_query("events", 1000, 1050) == 1
        handle.fault_in_query("events", None, None)
        assert handle.done
        report = handle.report
        assert report.fell_back_to_disk
        assert report.failure_reason == "CorruptionError: injected block fault"
        assert report.method in (
            RecoveryMethod.DISK_SNAPSHOT,
            RecoveryMethod.DISK,
        )
        # The memory attempt's partial progress survives on the report.
        assert report.memory_attempt_row_blocks == 1
        assert report.memory_attempt_rows == 50
        assert report.queries_served_during_restore == 2
        assert restored.snapshot_rows() == snapshot
        assert restored.restorer is None
        assert tracker.in_region("shm") == 0

    def test_serving_window_adds_survive_the_fallback(
        self, shm_namespace, backup, clock
    ):
        seed_shm(shm_namespace, backup, clock)

        def explode(point):
            if point == "restore:fault_block":
                raise CorruptionError("injected block fault")

        engine = engine_for(shm_namespace, backup, clock, fault_hook=explode)
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        # Rows that arrive while the leaf is serving must not be lost
        # when the restore falls back to replaying the backup.
        restored.get_table("events").add_rows(
            [{"time": 9000 + i, "host": "new"} for i in range(5)]
        )
        handle.fault_in_query("events", None, None)
        assert handle.done and handle.report.fell_back_to_disk
        table = restored.get_table("events")
        assert table.row_count == 125
        rows = table.to_rows()
        assert sum(1 for row in rows if row.get("host") == "new") == 5
        # Replayed rows are strictly older, so time order is preserved.
        times = [row["time"] for row in rows]
        assert times == sorted(times)

    def test_ladder_failure_surfaces_and_marks_the_handle(
        self, shm_namespace, clock
    ):
        # No backup configured: when the lazy restore faults, the disk
        # ladder has nowhere to go and the error must surface.
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        engine.backup_to_shm(leafmap)

        def explode(point):
            if point == "restore:fault_block":
                raise CorruptionError("injected block fault")

        engine._fault = explode
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        with pytest.raises(RecoveryError):
            handle.fault_in_query("events", None, None)
        assert handle.done
        assert handle.error is not None


class TestExpiry:
    def test_expire_drops_pending_blocks_without_faulting_them(
        self, shm_namespace, backup, clock, tmp_path
    ):
        seed_shm(shm_namespace, backup, clock)
        restored = fresh_map(clock)
        handle = engine_for(shm_namespace, backup, clock).begin_lazy_restore(
            restored
        )
        before = handle.progress()
        dropped = handle.expire_before(1050)  # block [1000, 1049] entirely
        assert dropped == 50
        after = handle.progress()
        assert after.blocks_total == before.blocks_total - 1
        assert after.blocks_restored == 0  # expired, never decoded
        handle.drain()

        # Control: blocking restore, then the same expiry.
        from repro.disk.backup import DiskBackup

        control_map = make_leafmap(clock)
        control_map.seal_all()
        control_engine = RestartEngine(
            "ctl",
            namespace=shm_namespace,
            backup=DiskBackup(tmp_path / "control"),
            clock=clock,
        )
        control_engine.backup_to_shm(control_map)
        control = fresh_map(clock)
        control_engine.restore(control)
        control.get_table("events").expire_before(1050)
        assert restored.snapshot_rows() == control.snapshot_rows()
        assert (
            restored.get_table("events").total_rows_expired
            == control.get_table("events").total_rows_expired
        )


class TestAbandon:
    def test_abandon_leaves_invalid_shm_for_the_next_boot(
        self, shm_namespace, backup, clock
    ):
        snapshot = seed_shm(shm_namespace, backup, clock)
        engine = engine_for(shm_namespace, backup, clock)
        restored = fresh_map(clock)
        handle = engine.begin_lazy_restore(restored)
        handle.fault_in_query("events", 1000, 1050)
        handle.abandon()
        assert handle.done
        assert restored.restorer is None
        # The valid bit is down: the next boot distrusts the leftovers,
        # discards them, and walks the disk ladder to the same data.
        reborn = fresh_map(clock)
        report = engine_for(shm_namespace, backup, clock).restore(reborn)
        assert report.method in (
            RecoveryMethod.DISK_SNAPSHOT,
            RecoveryMethod.DISK,
        )
        assert reborn.snapshot_rows() == snapshot
