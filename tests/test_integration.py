"""End-to-end integration scenarios tying every subsystem together."""

import random


from repro.cluster.cluster import Cluster
from repro.cluster.rollover import RolloverCoordinator
from repro.query.query import Aggregation, Filter, Query
from repro.workloads import SCENARIOS, populate_cluster


def make_cluster(shm_namespace, tmp_path, clock, seed=23):
    cluster = Cluster(
        3,
        tmp_path / "cluster",
        leaves_per_machine=2,
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=128,
        rng=random.Random(seed),
    )
    cluster.start_all()
    return cluster


class TestFullStory:
    def test_ingest_upgrade_query(self, shm_namespace, tmp_path, clock):
        """The paper's pitch, end to end: load monitoring data, run the
        dashboards, upgrade the whole cluster through shared memory, and
        every dashboard answer is unchanged."""
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        populate_cluster(cluster, rows_per_scenario=500)
        cluster.sync_all()
        before = {
            name: [
                (row.group, row.values)
                for row in cluster.query(scenario.query).rows
            ]
            for name, scenario in SCENARIOS.items()
        }
        result = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.2, use_shm=True
        ).run()
        assert result.leaves_restarted == 6
        after = {
            name: [
                (row.group, row.values)
                for row in cluster.query(scenario.query).rows
            ]
            for name, scenario in SCENARIOS.items()
        }
        assert before == after

    def test_ingest_continues_during_rollover(self, shm_namespace, tmp_path, clock):
        """Tailers keep delivering between batches: total row count after
        the upgrade includes rows routed around restarting leaves."""
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        populate_cluster(cluster, rows_per_scenario=200, scenarios=["requests"])
        cluster.sync_all()
        coordinator = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.2, use_shm=True
        )
        table = SCENARIOS["requests"].table
        extra = 0
        while True:
            batch = coordinator.select_batch()
            if not batch:
                break
            for leaf in batch:
                leaf.shutdown(use_shm=True)
            # Mid-batch: some leaves are down; ingest must still work.
            rows = [{"time": 2_000_000_000 + extra + i, "endpoint": "/mid"} for i in range(50)]
            extra += cluster.ingest(table, rows, batch_rows=10)
            for leaf in batch:
                leaf.version = "v2"
                leaf.start()
        assert extra > 0
        count = cluster.query(
            Query(table, aggregations=(Aggregation("count"),))
        ).rows[0].values["count(*)"]
        assert count == 200 + extra

    def test_mixed_crash_and_upgrade(self, shm_namespace, tmp_path, clock):
        """A leaf that crashes (losing its shm eligibility) comes back
        from disk with only its synced rows, while the rest of the
        cluster shm-upgrades losslessly."""
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        populate_cluster(cluster, rows_per_scenario=400, scenarios=["requests"])
        cluster.sync_all()
        table = SCENARIOS["requests"].table
        # Unsynced tail lands somewhere.
        cluster.ingest(table, [{"time": 3_000_000_000 + i} for i in range(60)], batch_rows=10)
        crasher = max(cluster.leaves, key=lambda leaf: leaf.leafmap.row_count)
        unsynced = crasher.leafmap.row_count - crasher.backup.synced_rows(table)
        crasher.crash()
        report = crasher.start()
        assert report.method.value == "disk"
        total = cluster.query(
            Query(table, aggregations=(Aggregation("count"),))
        ).rows[0].values["count(*)"]
        assert total == 460 - max(0, unsynced)

    def test_filtered_grouped_query_after_two_generations(
        self, shm_namespace, tmp_path, clock
    ):
        """Two successive shm upgrades; a selective query stays stable."""
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        populate_cluster(cluster, rows_per_scenario=600, scenarios=["requests"])
        cluster.sync_all()
        query = Query(
            SCENARIOS["requests"].table,
            aggregations=(Aggregation("count"), Aggregation("p95", "latency_ms")),
            group_by=("datacenter",),
            filters=(Filter("tags", "contains", "prod"),),
        )
        first = [(r.group, r.values) for r in cluster.query(query).rows]
        for version in ("v2", "v3"):
            RolloverCoordinator(
                cluster, new_version=version, batch_fraction=0.5, use_shm=True
            ).run()
        third = [(r.group, r.values) for r in cluster.query(query).rows]
        assert first == third
        assert all(leaf.version == "v3" for leaf in cluster.leaves)
