"""Tests for the from-scratch LZ codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lzs import lz_compress, lz_decompress
from repro.errors import CorruptionError


class TestLzRoundtrip:
    def test_empty(self):
        assert lz_compress(b"") == b""
        assert lz_decompress(b"") == b""

    def test_tiny_input(self):
        for data in (b"a", b"ab", b"abc"):
            assert lz_decompress(lz_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"GET /api/users 200 OK " * 500
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data
        assert len(compressed) < len(data) / 10

    def test_incompressible_survives(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(4096))
        assert lz_decompress(lz_compress(data)) == data

    def test_overlapping_match(self):
        # distance < length forces the byte-by-byte overlap copy path
        data = b"ab" * 1000
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data
        assert len(compressed) < 50

    def test_all_same_byte(self):
        data = b"\x00" * 10_000
        assert lz_decompress(lz_compress(data)) == data

    def test_match_at_end(self):
        data = b"0123456789" + b"abcdefgh" + b"abcdefgh"
        assert lz_decompress(lz_compress(data)) == data

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=3000))
    def test_roundtrip_property(self, data):
        assert lz_decompress(lz_compress(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from([b"host=web", b"status=200", b" ", b"err", b"\x00\x01"]),
            max_size=400,
        )
    )
    def test_roundtrip_structured_property(self, parts):
        data = b"".join(parts)
        assert lz_decompress(lz_compress(data)) == data


class TestLzCorruption:
    def test_truncated_literals(self):
        compressed = lz_compress(b"hello world, hello world, hello world")
        with pytest.raises(CorruptionError):
            lz_decompress(compressed[: len(compressed) // 2])

    def test_bad_distance(self):
        # literal_len=0, match_len=4, distance=9 with empty output
        stream = bytes([0, 4, 9])
        with pytest.raises(CorruptionError):
            lz_decompress(stream)

    def test_missing_terminator(self):
        # A stream that ends right after a valid literal run
        stream = bytes([3]) + b"abc"
        with pytest.raises(CorruptionError):
            lz_decompress(stream)

    def test_nonzero_distance_on_terminator(self):
        stream = bytes([1]) + b"a" + bytes([0, 5])
        with pytest.raises(CorruptionError):
            lz_decompress(stream)
