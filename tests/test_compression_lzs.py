"""Tests for the from-scratch LZ codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compression.lzs import lz_compress, lz_decompress
from repro.errors import CorruptionError


class TestLzRoundtrip:
    def test_empty(self):
        assert lz_compress(b"") == b""
        assert lz_decompress(b"") == b""

    def test_tiny_input(self):
        for data in (b"a", b"ab", b"abc"):
            assert lz_decompress(lz_compress(data)) == data

    def test_repetitive_compresses_well(self):
        data = b"GET /api/users 200 OK " * 500
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data
        assert len(compressed) < len(data) / 10

    def test_incompressible_survives(self):
        import random

        rng = random.Random(7)
        data = bytes(rng.randrange(256) for _ in range(4096))
        assert lz_decompress(lz_compress(data)) == data

    def test_overlapping_match(self):
        # distance < length forces the byte-by-byte overlap copy path
        data = b"ab" * 1000
        compressed = lz_compress(data)
        assert lz_decompress(compressed) == data
        assert len(compressed) < 50

    def test_all_same_byte(self):
        data = b"\x00" * 10_000
        assert lz_decompress(lz_compress(data)) == data

    def test_match_at_end(self):
        data = b"0123456789" + b"abcdefgh" + b"abcdefgh"
        assert lz_decompress(lz_compress(data)) == data

    @settings(max_examples=60, deadline=None)
    @given(st.binary(max_size=3000))
    def test_roundtrip_property(self, data):
        assert lz_decompress(lz_compress(data)) == data

    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.sampled_from([b"host=web", b"status=200", b" ", b"err", b"\x00\x01"]),
            max_size=400,
        )
    )
    def test_roundtrip_structured_property(self, parts):
        data = b"".join(parts)
        assert lz_decompress(lz_compress(data)) == data


def _seed_decompress(data: bytes) -> bytes:
    """The pre-optimization decompressor: per-byte append for match
    copies.  Kept as the reference for the micro-bench regression test."""
    from repro.util.binary import decode_varint

    data = bytes(data)
    if not data:
        return b""
    out = bytearray()
    pos = 0
    n = len(data)
    while pos < n:
        literal_len, pos = decode_varint(data, pos)
        out += data[pos : pos + literal_len]
        pos += literal_len
        match_len, pos = decode_varint(data, pos)
        match_dist, pos = decode_varint(data, pos)
        if match_len == 0:
            break
        start = len(out) - match_dist
        for i in range(match_len):
            out.append(out[start + i])
    return bytes(out)


class TestLzDecompressSpeed:
    def test_chunked_matches_seed_bytewise_output(self):
        payloads = [
            b"GET /api/users 200 OK " * 500,
            b"ab" * 4000,          # overlapping, period 2
            b"\x00" * 10_000,      # overlapping, period 1
            b"xyz" + b"abcdefgh" * 300 + b"tail",
        ]
        for data in payloads:
            compressed = lz_compress(data)
            assert lz_decompress(compressed) == _seed_decompress(compressed) == data

    def test_decompress_1mb_at_least_5x_faster_than_seed(self):
        """The satellite perf floor: chunked slice extension must beat the
        per-byte loop by >= 5x on a 1 MB repetitive payload."""
        import time

        data = (b"GET /api/users?id=12345 200 OK host=web01 dc=prn " * 25_000)[: 1 << 20]
        compressed = lz_compress(data)

        def best_of(fn, rounds=3):
            times = []
            for _ in range(rounds):
                started = time.perf_counter()
                result = fn(compressed)
                times.append(time.perf_counter() - started)
                assert result == data
            return min(times)

        seed_s = best_of(_seed_decompress, rounds=1)  # the slow one, once
        fast_s = best_of(lz_decompress)
        assert seed_s / fast_s >= 5.0, (
            f"chunked decompress only {seed_s / fast_s:.1f}x faster than the "
            f"seed byte-wise loop ({fast_s * 1000:.1f} ms vs {seed_s * 1000:.1f} ms)"
        )


class TestLzCorruption:
    def test_truncated_literals(self):
        compressed = lz_compress(b"hello world, hello world, hello world")
        with pytest.raises(CorruptionError):
            lz_decompress(compressed[: len(compressed) // 2])

    def test_bad_distance(self):
        # literal_len=0, match_len=4, distance=9 with empty output
        stream = bytes([0, 4, 9])
        with pytest.raises(CorruptionError):
            lz_decompress(stream)

    def test_missing_terminator(self):
        # A stream that ends right after a valid literal run
        stream = bytes([3]) + b"abc"
        with pytest.raises(CorruptionError):
            lz_decompress(stream)

    def test_nonzero_distance_on_terminator(self):
        stream = bytes([1]) + b"a" + bytes([0, 5])
        with pytest.raises(CorruptionError):
            lz_decompress(stream)
