"""Tests for the leaf server lifecycle and data plane."""

import pytest

from repro.core.engine import RecoveryMethod
from repro.disk.backup import DiskBackup
from repro.errors import StateError
from repro.query.query import Aggregation, Query
from repro.server.leaf import LeafServer, LeafStatus


def make_leaf(shm_namespace, tmp_path, clock, leaf_id="0", **kwargs):
    return LeafServer(
        leaf_id,
        backup=DiskBackup(tmp_path / f"leaf-{leaf_id}"),
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=50,
        **kwargs,
    )


ROWS = [{"time": 1000 + i, "host": f"h{i % 3}", "v": float(i)} for i in range(120)]


class TestLifecycle:
    def test_first_boot_is_empty_disk_recovery(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        report = leaf.start()
        assert report.method is RecoveryMethod.DISK
        assert leaf.status is LeafStatus.ALIVE
        assert leaf.leafmap.row_count == 0

    def test_cannot_start_twice(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        with pytest.raises(StateError):
            leaf.start()

    def test_shm_restart_cycle(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS)
        report = leaf.shutdown(use_shm=True)
        assert report is not None and report.rows == 120
        assert leaf.status is LeafStatus.DOWN

        reborn = make_leaf(shm_namespace, tmp_path, clock)
        report = reborn.start()
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert reborn.leafmap.row_count == 120

    def test_disk_only_shutdown_recovers_from_disk(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS)
        assert leaf.shutdown(use_shm=False) is None
        reborn = make_leaf(shm_namespace, tmp_path, clock)
        # A clean shutdown seals and syncs, leaving a fresh snapshot.
        assert reborn.start().method is RecoveryMethod.DISK_SNAPSHOT
        assert reborn.leafmap.row_count == 120

    def test_crash_loses_unsynced_rows(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS[:100])
        leaf.sync_to_disk()
        leaf.add_rows("events", ROWS[100:])  # never synced
        leaf.crash()
        assert leaf.status is LeafStatus.DOWN
        reborn = make_leaf(shm_namespace, tmp_path, clock)
        report = reborn.start()
        # 100 rows sealed evenly at the sync point, so its snapshot is
        # trusted; either disk rung would lose the same unsynced tail.
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert reborn.leafmap.row_count == 100  # the tail is gone

    def test_shutdown_requires_alive(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        with pytest.raises(StateError):
            leaf.shutdown()

    def test_memory_recovery_can_be_disabled(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS)
        leaf.shutdown(use_shm=True)
        reborn = make_leaf(shm_namespace, tmp_path, clock)
        report = reborn.start(memory_recovery_enabled=False)
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert reborn.leafmap.row_count == 120
        reborn.engine.discard_shm()  # stale-but-valid segments remain


class TestDataPlane:
    def test_add_and_query(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS)
        execution = leaf.query(Query("events", aggregations=(Aggregation("count"),)))
        assert execution.partial[()][0].finalize() == 120

    def test_down_leaf_rejects_everything(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        with pytest.raises(StateError):
            leaf.add_rows("events", ROWS)
        with pytest.raises(StateError):
            leaf.query(Query("events"))

    def test_free_memory_reporting(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock, capacity_bytes=1 << 20)
        leaf.start()
        before = leaf.free_memory
        assert before == 1 << 20
        leaf.add_rows("events", ROWS)
        assert leaf.free_memory < before
        assert leaf.free_memory + leaf.used_bytes == 1 << 20

    def test_expire_ages_out_rows(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS)  # times 1000..1119
        leaf.leafmap.seal_all()
        clock.set(1_390_000_000.0)  # now
        dropped = leaf.expire(retention_seconds=int(clock.now()) - 1050)
        assert dropped == 50
        assert leaf.leafmap.row_count == 70
        # Expiry survives a disk recovery (watermark recorded).
        leaf.sync_to_disk()
        leaf.shutdown(use_shm=False)
        reborn = make_leaf(shm_namespace, tmp_path, clock)
        reborn.start()
        assert reborn.leafmap.row_count == 70

    def test_expire_requires_alive(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        with pytest.raises(StateError):
            leaf.expire(10)

    def test_repr_mentions_status(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        assert "init" in repr(leaf)


class TestRestartEquivalence:
    def test_query_results_identical_across_shm_restart(
        self, shm_namespace, tmp_path, clock
    ):
        """Invariant 3, at server level: the same query gives the same
        answer before and after a shared memory restart."""
        query = Query(
            "events",
            aggregations=(Aggregation("count"), Aggregation("avg", "v")),
            group_by=("host",),
        )
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", ROWS)
        from repro.query.aggregate import merge_leaf_results

        before = merge_leaf_results(query, [leaf.query(query).partial], 1)
        leaf.shutdown(use_shm=True)
        reborn = make_leaf(shm_namespace, tmp_path, clock)
        reborn.start()
        after = merge_leaf_results(query, [reborn.query(query).partial], 1)
        assert [(r.group, r.values) for r in before.rows] == [
            (r.group, r.values) for r in after.rows
        ]
