"""Tests for the legacy row-oriented disk format."""

import io

import pytest

from repro.disk.format import (
    read_file_header,
    read_table_chunks,
    write_chunk,
    write_file_header,
)
from repro.errors import CorruptionError


def rows_fixture():
    return [
        {"time": 1, "host": "a", "v": 1.5, "tags": ["x", "y"]},
        {"time": 2, "host": "b", "v": -2.0, "tags": []},
    ]


def file_with_chunks(*chunk_lists):
    buf = io.BytesIO()
    write_file_header(buf)
    for rows in chunk_lists:
        write_chunk(buf, rows)
    buf.seek(0)
    return buf


class TestChunkRoundtrip:
    def test_single_chunk(self):
        buf = file_with_chunks(rows_fixture())
        chunks = list(read_table_chunks(buf))
        assert chunks == [rows_fixture()]

    def test_multiple_chunks_preserve_order(self):
        buf = file_with_chunks([{"time": 1}], [{"time": 2}], [{"time": 3}])
        chunks = list(read_table_chunks(buf))
        assert [c[0]["time"] for c in chunks] == [1, 2, 3]

    def test_empty_chunk(self):
        buf = file_with_chunks([])
        assert list(read_table_chunks(buf)) == [[]]

    def test_all_value_types(self):
        rows = [{"time": 0, "i": -(2**60), "f": 3.75, "s": "héllo", "v": ["a", ""]}]
        buf = file_with_chunks(rows)
        assert list(read_table_chunks(buf)) == [rows]

    def test_bool_rejected_at_write(self):
        buf = io.BytesIO()
        write_file_header(buf)
        with pytest.raises(CorruptionError):
            write_chunk(buf, [{"time": 0, "flag": True}])


class TestTornWrites:
    def test_torn_final_header_is_skipped(self):
        buf = file_with_chunks(rows_fixture())
        data = buf.getvalue() + b"\x43"  # one stray byte: torn next header
        chunks = list(read_table_chunks(io.BytesIO(data)))
        assert chunks == [rows_fixture()]

    def test_torn_final_payload_is_skipped(self):
        full = file_with_chunks(rows_fixture(), rows_fixture()).getvalue()
        torn = full[:-3]
        chunks = list(read_table_chunks(io.BytesIO(torn)))
        assert chunks == [rows_fixture()]

    def test_corrupt_final_chunk_at_eof_is_skipped(self):
        full = bytearray(file_with_chunks(rows_fixture()).getvalue())
        full[-1] ^= 0xFF  # flip a payload byte of the last chunk
        chunks = list(read_table_chunks(io.BytesIO(bytes(full))))
        assert chunks == []

    def test_corrupt_midfile_chunk_raises(self):
        full = bytearray(file_with_chunks(rows_fixture(), rows_fixture()).getvalue())
        # Flip a byte inside the first chunk's payload.
        header_len = 8
        full[header_len + 20] ^= 0x01
        with pytest.raises(CorruptionError):
            list(read_table_chunks(io.BytesIO(bytes(full))))

    def test_bad_chunk_magic_midfile_raises(self):
        buf = io.BytesIO()
        write_file_header(buf)
        buf.write(b"JUNKJUNKJUNKJUNKJUNK")
        buf.seek(0)
        with pytest.raises(CorruptionError):
            list(read_table_chunks(buf))


class TestFileHeader:
    def test_missing_header(self):
        with pytest.raises(CorruptionError):
            read_file_header(io.BytesIO(b"\x00"))

    def test_wrong_magic(self):
        with pytest.raises(CorruptionError):
            read_file_header(io.BytesIO(b"XXXXXXXX"))

    def test_empty_file_yields_nothing_after_header(self):
        buf = io.BytesIO()
        write_file_header(buf)
        buf.seek(0)
        assert list(read_table_chunks(buf)) == []
