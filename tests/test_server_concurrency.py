"""Concurrency: the data plane vs the shutdown path.

The paper's PREPARE state "waits for ADD/QUERY requests in progress to
complete" and then rejects new work.  The leaf's coarse lock implements
that: a shutdown requested while writers/readers hammer the leaf must
(a) never corrupt anything, (b) never interleave with a half-applied
batch, and (c) leave every pre-shutdown batch either fully present or
fully rejected.
"""

import threading


from repro.core.engine import RecoveryMethod
from repro.disk.backup import DiskBackup
from repro.errors import StateError
from repro.query.query import Aggregation, Query
from repro.server.leaf import LeafServer

COUNT = Query("t", aggregations=(Aggregation("count"),))


def make_leaf(shm_namespace, tmp_path, clock):
    leaf = LeafServer(
        "c",
        backup=DiskBackup(tmp_path / "leaf-c"),
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=64,
    )
    leaf.start()
    return leaf


class TestConcurrentDataPlane:
    def test_parallel_writers_lose_nothing(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        n_threads, per_thread = 8, 40

        def writer(tid):
            for i in range(per_thread):
                leaf.add_rows("t", [{"time": tid * 10_000 + i}])

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert leaf.leafmap.row_count == n_threads * per_thread
        execution = leaf.query(COUNT)
        assert execution.partial[()][0].finalize() == n_threads * per_thread

    def test_readers_and_writers_interleave_safely(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        stop = threading.Event()
        errors: list[BaseException] = []

        def writer():
            i = 0
            while not stop.is_set():
                try:
                    leaf.add_rows("t", [{"time": i}])
                except BaseException as exc:  # noqa: BLE001 - recorded for assert
                    errors.append(exc)
                    return
                i += 1

        def reader():
            while not stop.is_set():
                try:
                    leaf.query(COUNT)
                except BaseException as exc:  # noqa: BLE001
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=writer) for _ in range(3)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for thread in threads:
            thread.start()
        import time

        time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join()
        assert errors == []


class TestShutdownUnderLoad:
    def test_shutdown_while_writers_hammer(self, shm_namespace, tmp_path, clock):
        """Batches sent before shutdown land whole; batches after are
        rejected whole; the restored leaf agrees with the writers'
        success count exactly."""
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        accepted = []
        rejected = []
        barrier = threading.Barrier(5)

        def writer(tid):
            barrier.wait()
            for i in range(300):
                try:
                    leaf.add_rows("t", [{"time": tid * 100_000 + i}] * 5)
                    accepted.append(5)
                except StateError:
                    rejected.append(5)
                    return

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(4)]
        for thread in threads:
            thread.start()
        barrier.wait()
        import time

        time.sleep(0.05)  # let some batches through
        leaf.shutdown(use_shm=True)
        for thread in threads:
            thread.join()
        total_accepted = sum(accepted)

        reborn = LeafServer(
            "c",
            backup=DiskBackup(tmp_path / "leaf-c"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=64,
        )
        report = reborn.start()
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert reborn.leafmap.row_count == total_accepted
        reborn.shutdown(use_shm=False)

    def test_shutdown_waits_for_inflight_batch(self, shm_namespace, tmp_path, clock):
        """A batch that acquired the lock before shutdown completes
        fully — no torn batch (the PREPARE 'wait for in-progress')."""
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        entered = threading.Event()
        release = threading.Event()

        def slow_rows():
            entered.set()
            release.wait(timeout=10)
            for i in range(50):
                yield {"time": i}

        writer = threading.Thread(target=lambda: leaf.add_rows("t", slow_rows()))
        writer.start()
        entered.wait(timeout=10)

        shutdown_done = threading.Event()

        def shut():
            leaf.shutdown(use_shm=True)
            shutdown_done.set()

        shutter = threading.Thread(target=shut)
        shutter.start()
        # Shutdown must be blocked behind the in-flight add.
        assert not shutdown_done.wait(timeout=0.2)
        release.set()
        writer.join()
        shutter.join()
        reborn = LeafServer(
            "c",
            backup=DiskBackup(tmp_path / "leaf-c"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=64,
        )
        reborn.start()
        assert reborn.leafmap.row_count == 50  # the whole batch, not a prefix
        reborn.shutdown(use_shm=False)
