"""The replica recovery tier: wire protocol, ladder fallback, failover.

Four angles on the new rung:

- **Wire round trip** (property): a sealed block crossing the framed
  protocol arrives byte-identical to ``RowBlock.pack`` — dictionary and
  float codecs included — for arbitrary table contents.
- **Fault sweep**: the connection dies at every protocol phase
  (handshake, mid-stream, mid-block, post-adopt) and the leaf must land
  on the local disk rungs all-or-nothing: tracker balanced, partial
  attempt counters preserved, rows identical to an unfaulted restore.
- **Cluster failover**: queries issued while a leaf restarts return
  *complete* results — the aggregator substitutes the standby.
- **Catalog plumbing**: ingest mirroring keeps the standby
  digest-identical, and sessions survive concurrent streams.
"""

from __future__ import annotations

import socket
import threading
import uuid

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster.cluster import Cluster
from repro.cluster.replication import (
    FRAME_BLOCK,
    ReplicaBlockServer,
    ReplicaCatalog,
    ReplicaFetchSession,
    recv_frame,
    send_frame,
    snapshot_leafmap,
)
from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.errors import CorruptionError, ReplicaWireError
from repro.query.query import Aggregation, Query
from repro.server.leaf import LeafServer, LeafStatus
from repro.shm.layout import packed_block_chunks
from repro.util.checksum import rows_digest
from repro.util.clock import ManualClock
from repro.util.memtrack import MemoryTracker
from repro.workloads import service_requests

# Rows exercising every codec: dictionary (strings), float, int, list.
row_strategy = st.fixed_dictionaries(
    {"time": st.integers(min_value=0, max_value=2**40)},
    optional={
        "host": st.sampled_from(["a", "bb", "ccc", ""]),
        "value": st.floats(allow_nan=False, width=32),
        "count": st.integers(min_value=-(2**40), max_value=2**40),
        "tags": st.lists(st.sampled_from(["x", "y", "zz"]), max_size=3),
    },
)

tables_strategy = st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma"]),
    st.lists(row_strategy, min_size=1, max_size=40),
    min_size=1,
    max_size=3,
)


def build_map(tables) -> LeafMap:
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=16)
    for name, rows in tables.items():
        leafmap.get_or_create(name).add_rows(rows)
    leafmap.seal_all()
    return leafmap


class TestWireRoundTripProperty:
    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(tables=tables_strategy)
    def test_framed_block_is_byte_identical(self, tables):
        """Sealed block -> wire frame -> remote decode is the identity."""
        leafmap = build_map(tables)
        client, server = socket.socketpair()
        try:
            for table in leafmap:
                for block in table.blocks:
                    packed = block.pack()
                    chunks = packed_block_chunks(block)
                    assert b"".join(bytes(c) for c in chunks) == packed
                    send_frame(server, FRAME_BLOCK, *chunks)
                    kind, payload = recv_frame(client)
                    assert kind == FRAME_BLOCK
                    assert payload == packed
                    remote = RowBlock.unpack(payload, copy=True)
                    remote.verify()
                    assert remote.pack() == packed
                    assert remote.to_rows() == block.to_rows()
                    assert rows_digest(remote.to_rows()) == rows_digest(
                        block.to_rows()
                    )
        finally:
            client.close()
            server.close()

    def test_session_fetch_matches_pack_over_tcp(self):
        """The full server/session path, dictionary + float columns."""
        leafmap = build_map(
            {
                "events": [
                    {"time": i, "host": f"h{i % 3}", "value": i / 7}
                    for i in range(64)
                ]
            }
        )
        server = ReplicaBlockServer(lambda: snapshot_leafmap(leafmap))
        session = ReplicaFetchSession(server.address, streams=3)
        try:
            blocks = session.blocks()
            table = leafmap.get_table("events")
            assert len(blocks) == table.block_count
            for desc in blocks:
                payload = session.fetch(desc.table, desc.index)
                assert payload == table.blocks[desc.index].pack()
                assert desc.size == len(payload)
            # fetch_many covers the pipelined path with the same bytes.
            got: dict[int, bytes] = {}
            session.fetch_many(
                [(d.table, d.index) for d in blocks],
                lambda _t, i, p: got.__setitem__(i, p),
                window=4,
            )
            for desc in blocks:
                assert got[desc.index] == table.blocks[desc.index].pack()
        finally:
            session.close()
            server.close()


def synced_state(tmp_path, clock):
    """A leafmap, its synced backup, and a block server mirroring it."""
    leafmap = LeafMap(clock=clock, rows_per_block=32)
    leafmap.get_or_create("events").add_rows(
        [
            {"time": 1000 + i, "host": f"h{i % 5}", "value": i / 3}
            for i in range(300)
        ]
    )
    leafmap.get_or_create("metrics").add_rows(
        [{"time": 2000 + i, "count": i} for i in range(150)]
    )
    leafmap.seal_all()
    backup = DiskBackup(tmp_path / "backup")
    backup.sync_leafmap(leafmap)
    server = ReplicaBlockServer(lambda: snapshot_leafmap(leafmap))
    return leafmap, backup, server


def make_engine(shm_namespace, backup, server, clock, tracker, streams=2):
    engine = RestartEngine(
        "7",
        namespace=shm_namespace,
        backup=backup,
        tracker=tracker,
        clock=clock,
    )
    engine.replica_source = lambda: ReplicaFetchSession(
        server.address, streams=streams
    )
    return engine


FAULT_POINTS = (
    "replica:handshake",
    "replica:stream",
    "replica:block",
    "replica:adopt",
)


class TestReplicaFaultSweep:
    def test_unfaulted_wire_restore_is_identity(
        self, shm_namespace, tmp_path, clock
    ):
        source, backup, server = synced_state(tmp_path, clock)
        tracker = MemoryTracker()
        try:
            engine = make_engine(shm_namespace, backup, server, clock, tracker)
            restored = LeafMap(clock=clock, rows_per_block=32)
            report = engine.restore(restored)
        finally:
            server.close()
        assert report.method is RecoveryMethod.REPLICA
        assert restored.snapshot_rows() == source.snapshot_rows()
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_fault_lands_on_snapshot_rung_at_baseline(
        self, point, shm_namespace, tmp_path, clock
    ):
        source, backup, server = synced_state(tmp_path, clock)
        tracker = MemoryTracker()
        fired = []

        def explode(p: str) -> None:
            if p == point and not fired:
                fired.append(p)
                raise CorruptionError(f"injected {point} fault")

        try:
            engine = make_engine(shm_namespace, backup, server, clock, tracker)
            engine._fault = explode
            restored = LeafMap(clock=clock, rows_per_block=32)
            report = engine.restore(restored)
        finally:
            server.close()
        assert fired, "the injected fault never fired"
        assert report.fell_back_from_replica
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.failure_reason and "injected" in report.failure_reason
        assert restored.snapshot_rows() == source.snapshot_rows()
        # All-or-nothing: the tracker holds exactly the winning tier's
        # bytes, nothing from the abandoned wire attempt.
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_fault_with_torn_snapshot_lands_on_legacy(
        self, point, shm_namespace, tmp_path, clock
    ):
        source, backup, server = synced_state(tmp_path, clock)
        victim = backup.snapshot_path("events")
        victim.write_bytes(victim.read_bytes()[:64])
        tracker = MemoryTracker()
        fired = []

        def explode(p: str) -> None:
            if p == point and not fired:
                fired.append(p)
                raise CorruptionError(f"injected {point} fault")

        try:
            engine = make_engine(shm_namespace, backup, server, clock, tracker)
            engine._fault = explode
            restored = LeafMap(clock=clock, rows_per_block=32)
            report = engine.restore(restored)
        finally:
            server.close()
        assert fired
        assert report.fell_back_from_replica
        assert report.fell_back_to_legacy
        assert report.method is RecoveryMethod.DISK
        assert restored.snapshot_rows() == source.snapshot_rows()
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    def test_post_adopt_fault_preserves_attempt_counters(
        self, shm_namespace, tmp_path, clock
    ):
        """A fault after the first table adopted must surface how far the
        wire attempt got before the rungs below discarded it."""
        source, backup, server = synced_state(tmp_path, clock)
        tracker = MemoryTracker()
        fired = []

        def explode(p: str) -> None:
            if p == "replica:adopt" and not fired:
                fired.append(p)
                raise CorruptionError("injected post-adopt fault")

        try:
            engine = make_engine(shm_namespace, backup, server, clock, tracker)
            engine._fault = explode
            restored = LeafMap(clock=clock, rows_per_block=32)
            report = engine.restore(restored)
        finally:
            server.close()
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.replica_attempt_row_blocks > 0
        assert report.replica_attempt_bytes > 0
        assert restored.snapshot_rows() == source.snapshot_rows()

    def test_connection_killed_mid_stream_by_server_close(
        self, shm_namespace, tmp_path, clock
    ):
        """A real dead connection (not an injected raise): the server
        vanishes between session open and the block pulls."""
        source, backup, server = synced_state(tmp_path, clock)
        tracker = MemoryTracker()
        engine = RestartEngine(
            "7",
            namespace=shm_namespace,
            backup=backup,
            tracker=tracker,
            clock=clock,
        )

        def half_dead_session():
            session = ReplicaFetchSession(server.address, streams=2)
            server.close()  # every subsequent GET dies on the wire
            return session

        engine.replica_source = half_dead_session
        restored = LeafMap(clock=clock, rows_per_block=32)
        report = engine.restore(restored)
        assert report.fell_back_from_replica
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.snapshot_rows() == source.snapshot_rows()
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    def test_serve_path_handshake_fault_still_serves_from_disk(
        self, shm_namespace, tmp_path, clock
    ):
        """Serve-while-restoring with a dead replica: the leaf must still
        come up (from the disk rungs) and answer queries."""
        primary = LeafServer(
            "p0",
            backup=DiskBackup(tmp_path / "p0"),
            namespace=shm_namespace,
            rows_per_block=32,
        )
        primary.start()
        data = list(service_requests(600))
        primary.add_rows("service_requests", data)
        primary.leafmap.seal_all()
        primary.sync_to_disk()
        baseline = rows_digest(primary.leafmap.snapshot_rows())

        def explode(point: str) -> None:
            if point == "replica:handshake":
                raise ReplicaWireError("injected handshake fault")

        primary.engine.replica_source = lambda: None
        primary.engine._fault = explode
        primary.crash()
        primary.start(serve_while_restoring=True, sweep=False)
        primary.wait_restored()
        report = primary.last_restart_report
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert rows_digest(primary.leafmap.snapshot_rows()) == baseline
        assert primary.status is LeafStatus.ALIVE


def build_cluster(tmp_path, namespace: str) -> Cluster:
    return Cluster(
        2,
        tmp_path / "cluster",
        leaves_per_machine=2,
        namespace=namespace,
        rows_per_block=64,
        replication=True,
    )


COUNT = Query(table="events", aggregations=(Aggregation("count"),))


def total_count(result) -> int:
    assert len(result.rows) == 1
    return result.rows[0].values["count(*)"]


class TestClusterFailover:
    def test_mirror_keeps_standby_digest_identical(self, tmp_path):
        namespace = f"reprorep-{uuid.uuid4().hex[:8]}"
        cluster = build_cluster(tmp_path, namespace)
        try:
            cluster.start_all()
            cluster.ingest(
                "events",
                [{"time": 1000 + i, "host": f"h{i % 7}"} for i in range(2000)],
                batch_rows=100,
            )
            assert cluster.replica_catalog.batches_mirrored > 0
            for leaf in cluster.leaves:
                replica = cluster.replica_catalog.replica_for(leaf.leaf_id)
                assert replica is not None
                assert rows_digest(
                    replica.leafmap.snapshot_rows()
                ) == rows_digest(leaf.leafmap.snapshot_rows())
        finally:
            cluster.close()

    def test_queries_complete_during_restart_window(self, tmp_path):
        """The acceptance test: no partial results at any point of a
        leaf's crash -> failover -> wire restore -> alive cycle."""
        namespace = f"reprorep-{uuid.uuid4().hex[:8]}"
        cluster = build_cluster(tmp_path, namespace)
        try:
            cluster.start_all()
            n_rows = 2000
            cluster.ingest(
                "events",
                [{"time": 1000 + i, "host": f"h{i % 7}"} for i in range(n_rows)],
                batch_rows=100,
            )
            cluster.sync_all()
            before = cluster.query(COUNT)
            assert before.leaves_responded == before.leaves_total
            assert total_count(before) == n_rows

            victim = cluster.leaves[0]
            machine = cluster.machine_of(victim)
            victim.crash()

            # Down: the aggregator must substitute the standby.
            down = cluster.query(COUNT)
            assert down.leaves_responded == down.leaves_total
            assert total_count(down) == n_rows
            assert machine.aggregator.failovers >= 1

            # Restarting: the leaf serves mid-restore over the wire; a
            # background storm of queries must stay complete throughout.
            results = []

            def storm():
                for _ in range(20):
                    results.append(cluster.query(COUNT))

            storm_thread = threading.Thread(target=storm)
            storm_thread.start()
            victim.start(serve_while_restoring=True)
            victim.wait_restored()
            storm_thread.join()
            for result in results:
                assert result.leaves_responded == result.leaves_total
                assert total_count(result) == n_rows

            assert victim.last_restart_report.method is RecoveryMethod.REPLICA
            after = cluster.query(COUNT)
            assert total_count(after) == n_rows
            # The flat aggregator shares the same router.
            flat = cluster.flat_aggregator.query(COUNT)
            assert total_count(flat) == n_rows
        finally:
            cluster.close()

    def test_failover_unavailable_when_both_down(self, tmp_path):
        namespace = f"reprorep-{uuid.uuid4().hex[:8]}"
        cluster = build_cluster(tmp_path, namespace)
        try:
            cluster.start_all()
            cluster.ingest(
                "events",
                [{"time": 1000 + i} for i in range(400)],
                batch_rows=100,
            )
            victim = cluster.leaves[0]
            replica = cluster.replica_catalog.replica_for(victim.leaf_id)
            victim.crash()
            replica.crash()
            result = cluster.query(COUNT)
            assert result.leaves_responded == result.leaves_total - 1
            assert 0 < result.coverage < 1
        finally:
            cluster.close()

    def test_catalog_close_stops_serving_sessions(self, tmp_path):
        namespace = f"reprorep-{uuid.uuid4().hex[:8]}"
        cluster = build_cluster(tmp_path, namespace)
        try:
            cluster.start_all()
            cluster.ingest(
                "events",
                [{"time": 1000 + i} for i in range(400)],
                batch_rows=100,
            )
            victim = cluster.leaves[0]
            source = victim.engine.replica_source
            session = source()
            assert session is not None
            session.close()
        finally:
            cluster.close()
        # After close the provider degrades to "no replica" — the ladder
        # falls through instead of hanging on a dead socket.
        assert source() is None