"""Cross-module property tests: restart equivalence on arbitrary data.

Invariant 3 of DESIGN.md: for *any* table contents, heap → shared memory
→ heap and heap → disk → heap reproduce exactly the same rows, in order.
"""

import uuid

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.util.clock import ManualClock

# Rows with every column type, ragged on purpose.
row_strategy = st.fixed_dictionaries(
    {"time": st.integers(min_value=0, max_value=2**40)},
    optional={
        "host": st.sampled_from(["a", "bb", "ccc", ""]),
        "value": st.floats(allow_nan=False, width=32),
        "count": st.integers(min_value=-(2**40), max_value=2**40),
        "tags": st.lists(st.sampled_from(["x", "y", "zz"]), max_size=3),
    },
)

tables_strategy = st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma"]),
    st.lists(row_strategy, min_size=1, max_size=40),
    min_size=1,
    max_size=3,
)


def build_map(tables):
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=16)
    for name, rows in tables.items():
        leafmap.get_or_create(name).add_rows(rows)
    leafmap.seal_all()
    return leafmap


class TestRestartEquivalenceProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(tables=tables_strategy)
    def test_shm_roundtrip_is_identity(self, tables, tmp_path_factory):
        namespace = f"reprohyp-{uuid.uuid4().hex[:10]}"
        clock = ManualClock(0.0)
        leafmap = build_map(tables)
        snapshot = leafmap.snapshot_rows()
        engine = RestartEngine("0", namespace=namespace, clock=clock)
        engine.backup_to_shm(leafmap)
        restored = LeafMap(clock=clock, rows_per_block=16)
        report = RestartEngine("0", namespace=namespace, clock=clock).restore(restored)
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(tables=tables_strategy)
    def test_disk_roundtrip_is_identity(self, tables, tmp_path_factory):
        clock = ManualClock(0.0)
        backup = DiskBackup(tmp_path_factory.mktemp("hyp-backup"))
        leafmap = build_map(tables)
        snapshot = leafmap.snapshot_rows()
        backup.sync_leafmap(leafmap)
        namespace = f"reprohyp-{uuid.uuid4().hex[:10]}"
        restored = LeafMap(clock=clock, rows_per_block=16)
        report = RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock
        ).restore(restored)
        # Which disk rung runs depends on whether every generated table
        # happened to seal evenly at the sync point; the recovered data
        # must be identical either way.
        assert report.method in (RecoveryMethod.DISK, RecoveryMethod.DISK_SNAPSHOT)
        assert restored.snapshot_rows() == snapshot
        legacy = LeafMap(clock=clock, rows_per_block=16)
        legacy_report = RestartEngine(
            "0",
            namespace=namespace,
            backup=backup,
            clock=clock,
            disk_snapshot_tier=False,
        ).restore(legacy)
        assert legacy_report.method is RecoveryMethod.DISK
        assert legacy.snapshot_rows() == snapshot
