"""Cross-module property tests: restart equivalence on arbitrary data.

Invariant 3 of DESIGN.md: for *any* table contents, heap → shared memory
→ heap and heap → disk → heap reproduce exactly the same rows, in order.
The incremental-chain property extends it: for any interleaving of
ingest, seal, expiry, and sync — whatever chain of base, deltas,
manifest-only links, and compactions that produces — recovering through
the chain equals recovering a fresh full snapshot of the same state.
"""

import uuid

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.disk.recovery import recover_leafmap_snapshots
from repro.util.checksum import rows_digest
from repro.util.clock import ManualClock

# Rows with every column type, ragged on purpose.
row_strategy = st.fixed_dictionaries(
    {"time": st.integers(min_value=0, max_value=2**40)},
    optional={
        "host": st.sampled_from(["a", "bb", "ccc", ""]),
        "value": st.floats(allow_nan=False, width=32),
        "count": st.integers(min_value=-(2**40), max_value=2**40),
        "tags": st.lists(st.sampled_from(["x", "y", "zz"]), max_size=3),
    },
)

tables_strategy = st.dictionaries(
    st.sampled_from(["alpha", "beta", "gamma"]),
    st.lists(row_strategy, min_size=1, max_size=40),
    min_size=1,
    max_size=3,
)


def build_map(tables):
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=16)
    for name, rows in tables.items():
        leafmap.get_or_create(name).add_rows(rows)
    leafmap.seal_all()
    return leafmap


class TestRestartEquivalenceProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(tables=tables_strategy)
    def test_shm_roundtrip_is_identity(self, tables, tmp_path_factory):
        namespace = f"reprohyp-{uuid.uuid4().hex[:10]}"
        clock = ManualClock(0.0)
        leafmap = build_map(tables)
        snapshot = leafmap.snapshot_rows()
        engine = RestartEngine("0", namespace=namespace, clock=clock)
        engine.backup_to_shm(leafmap)
        restored = LeafMap(clock=clock, rows_per_block=16)
        report = RestartEngine("0", namespace=namespace, clock=clock).restore(restored)
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(tables=tables_strategy)
    def test_disk_roundtrip_is_identity(self, tables, tmp_path_factory):
        clock = ManualClock(0.0)
        backup = DiskBackup(tmp_path_factory.mktemp("hyp-backup"))
        leafmap = build_map(tables)
        snapshot = leafmap.snapshot_rows()
        backup.sync_leafmap(leafmap)
        namespace = f"reprohyp-{uuid.uuid4().hex[:10]}"
        restored = LeafMap(clock=clock, rows_per_block=16)
        report = RestartEngine(
            "0", namespace=namespace, backup=backup, clock=clock
        ).restore(restored)
        # Which disk rung runs depends on whether every generated table
        # happened to seal evenly at the sync point; the recovered data
        # must be identical either way.
        assert report.method in (RecoveryMethod.DISK, RecoveryMethod.DISK_SNAPSHOT)
        assert restored.snapshot_rows() == snapshot
        legacy = LeafMap(clock=clock, rows_per_block=16)
        legacy_report = RestartEngine(
            "0",
            namespace=namespace,
            backup=backup,
            clock=clock,
            disk_snapshot_tier=False,
        ).restore(legacy)
        assert legacy_report.method is RecoveryMethod.DISK
        assert legacy.snapshot_rows() == snapshot


# One workload step: ingest a batch, seal, expire a prefix, or take a
# sync point.  Tiny chain thresholds on the backup force base rewrites,
# delta appends, and mid-sequence compactions to all occur within a few
# steps of each other.
op_strategy = st.one_of(
    st.tuples(st.just("add"), st.integers(min_value=1, max_value=40)),
    st.just(("seal",)),
    st.just(("sync",)),
    st.tuples(st.just("expire"), st.floats(min_value=0.0, max_value=1.0)),
)


def _full_row(t: int) -> dict:
    # Every column present in every row: block regrouping pads ragged
    # rows differently per tier, which is orthogonal to chain recovery.
    return {
        "time": t,
        "host": f"h{t % 7}",
        "value": float(t % 13) / 4,
        "tags": ["x", "y", "zz"][: 1 + t % 3],
    }


class TestIncrementalChainProperty:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(ops=st.lists(op_strategy, min_size=1, max_size=14))
    def test_chain_recovery_equals_fresh_full_snapshot(
        self, ops, tmp_path_factory
    ):
        clock = ManualClock(0.0)
        backup = DiskBackup(
            tmp_path_factory.mktemp("hyp-chain"),
            max_chain_links=3,
            compact_churn=0.4,
        )
        leafmap = LeafMap(clock=clock, rows_per_block=16)
        table = leafmap.get_or_create("events")
        t = 0
        for op in ops:
            if op[0] == "add":
                table.add_rows(_full_row(t + i) for i in range(op[1]))
                t += op[1]
            elif op[0] == "seal":
                leafmap.seal_all()
            elif op[0] == "sync":
                backup.sync_leafmap(leafmap)
            else:
                cutoff = int(op[1] * t)
                table.expire_before(cutoff)
                backup.record_expiry(
                    "events", cutoff, rows_expired=table.total_rows_expired
                )
        # Close the sequence at a trusted sync point.
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        assert backup.snapshot_valid("events")
        expected = rows_digest(leafmap.snapshot_rows())

        # Chain recovery, through a reopened manager (manifest reload).
        chained = LeafMap(clock=clock, rows_per_block=16)
        recover_leafmap_snapshots(DiskBackup(backup.directory), chained)
        assert rows_digest(chained.snapshot_rows()) == expected

        # A fresh full (non-incremental) snapshot of the same state.
        full_backup = DiskBackup(
            tmp_path_factory.mktemp("hyp-full"), incremental=False
        )
        full_backup.sync_leafmap(leafmap)
        full = LeafMap(clock=clock, rows_per_block=16)
        recover_leafmap_snapshots(full_backup, full)
        assert rows_digest(full.snapshot_rows()) == expected

        # Watermarks restored identically on both routes.
        assert (
            chained.get_table("events").total_rows_ingested
            == full.get_table("events").total_rows_ingested
        )
        assert (
            chained.get_table("events").total_rows_expired
            == full.get_table("events").total_rows_expired
        )
