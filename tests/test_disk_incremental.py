"""Incremental snapshot chains: delta writes, compaction, chain recovery.

The snapshot side of ``DiskBackup`` appends per-block delta files keyed
by the sync/snapshot generation protocol instead of rewriting whole
tables; recovery materializes base + deltas and any torn or stale link
routes the leaf to legacy replay exactly as a torn base always has.
These tests pin the write-path behavior (what gets written when), the
chain reader's validity gate (every phase, swept through the engine so
tracker balances are checked too), and the directory-fsync durability
fix.
"""

from __future__ import annotations

import json

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk import shmformat
from repro.disk.backup import DiskBackup
from repro.disk.recovery import materialize_chain, recover_leafmap_snapshots
from repro.errors import CorruptionError, SnapshotStaleError
from repro.util.memtrack import MemoryTracker
from tests.conftest import make_leafmap


def sealed_sync(backup, leafmap):
    leafmap.seal_all()
    backup.sync_leafmap(leafmap)


def grow(leafmap, n, start):
    # Same column set as make_leafmap's rows: the legacy chunk writer
    # pads rows to the table-wide schema, so differently-shaped rows
    # would round-trip differently through the two disk tiers.
    leafmap.get_table("events").add_rows(
        {
            "time": start + i,
            "host": f"h{i % 5}",
            "latency_ms": float(i),
            "tags": ["prod"],
        }
        for i in range(n)
    )
    return start + n


class TestDeltaChain:
    def test_second_sync_appends_delta_not_base(self, backup, clock):
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        base = backup.snapshot_path("events")
        before = base.read_bytes()
        grow(leafmap, 60, 5000)
        sealed_sync(backup, leafmap)
        chain = backup.snapshot_chain("events")
        assert [link["kind"] for link in chain] == ["base", "delta"]
        assert base.read_bytes() == before, "base must not be rewritten"
        assert (backup.snapshot_dir / chain[1]["file"]).exists()
        assert backup.stats.bases_written == 1
        assert backup.stats.deltas_written == 1
        assert backup.snapshot_valid("events")

    def test_delta_bytes_far_below_full_rewrite(self, backup, clock):
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        base_bytes = backup.stats.snapshot_bytes_written
        start = 5000
        for _ in range(4):
            start = grow(leafmap, 50, start)
            sealed_sync(backup, leafmap)
        delta_bytes = backup.stats.snapshot_bytes_written - base_bytes
        # 4 one-block deltas versus 4 rewrites of an ever-growing table.
        assert delta_bytes < 4 * base_bytes
        assert backup.stats.write_amplification < 1.0

    def test_pure_expiry_sync_is_manifest_only(self, tmp_path, clock):
        """A generation that only drops blocks writes no file at all:
        the chain link's drop list describes it completely.

        A pure-expiry generation empties the table (expiry consumes a
        prefix, and it must pass the sync watermark to bump), which is
        100% churn — so this link shape only survives when churn folding
        is tuned off."""
        backup = DiskBackup(tmp_path / "b", compact_churn=1.0)
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        # New rows sealed and then expired *before* ever being synced:
        # the sync point sees expiry outpacing the watermark.
        grow(leafmap, 50, 5000)
        leafmap.seal_all()
        leafmap.get_table("events").expire_before(10_000)
        backup.record_expiry("events", 10_000)
        files_before = sorted(backup.snapshot_dir.iterdir())
        backup.sync_leafmap(leafmap)
        chain = backup.snapshot_chain("events")
        assert chain[-1]["file"] is None
        assert chain[-1]["dropped"] == [0, 1, 2]
        assert backup.stats.manifest_only_links == 1
        assert sorted(backup.snapshot_dir.iterdir()) == files_before
        recovered = LeafMap(clock=clock, rows_per_block=50)
        recover_leafmap_snapshots(DiskBackup(backup.directory), recovered)
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()

    def test_chain_compacts_at_max_links(self, tmp_path, clock):
        backup = DiskBackup(tmp_path / "b", max_chain_links=3)
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        start = 5000
        for _ in range(6):
            start = grow(leafmap, 50, start)
            sealed_sync(backup, leafmap)
        assert backup.stats.compactions >= 1
        assert len(backup.snapshot_chain("events")) <= 3
        # Compaction folded the chain: obsolete delta files are gone.
        live = {link["file"] for link in backup.snapshot_chain("events")}
        on_disk = {p.name for p in backup.snapshot_dir.iterdir()}
        assert on_disk == live

    def test_churn_triggers_compaction(self, tmp_path, clock):
        backup = DiskBackup(tmp_path / "b", max_chain_links=100, compact_churn=0.4)
        leafmap = make_leafmap(clock)  # 3 blocks at times 1000..1119
        sealed_sync(backup, leafmap)
        start = grow(leafmap, 50, 5000)
        sealed_sync(backup, leafmap)
        # Expire the original three blocks: churn 3/4 > 0.4.
        leafmap.get_table("events").expire_before(2000)
        backup.record_expiry("events", 2000)
        start = grow(leafmap, 50, start)
        sealed_sync(backup, leafmap)
        assert backup.stats.compactions == 1
        chain = backup.snapshot_chain("events")
        assert [link["kind"] for link in chain] == ["base"]
        recovered = LeafMap(clock=clock, rows_per_block=50)
        recover_leafmap_snapshots(DiskBackup(backup.directory), recovered)
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()

    def test_noop_sync_skips_snapshot_write(self, backup, clock):
        """Satellite fix: an unchanged sync generation writes nothing —
        no base, no delta, no manifest-only link, no manifest save."""
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        points = backup.stats.snapshot_points
        stamp = [(p.name, p.stat().st_mtime_ns) for p in backup.snapshot_dir.iterdir()]
        chain_len = len(backup.snapshot_chain("events"))
        backup.sync_leafmap(leafmap)
        backup.sync_leafmap(leafmap)
        assert backup.stats.skipped_unchanged == 2
        assert backup.stats.snapshot_points == points
        assert len(backup.snapshot_chain("events")) == chain_len
        after = [(p.name, p.stat().st_mtime_ns) for p in backup.snapshot_dir.iterdir()]
        assert after == stamp

    def test_fresh_manager_rewrites_base(self, backup, clock):
        """Block uids are process-local, so a reopened manager cannot
        extend the chain it finds: its first snapshot is a fresh base."""
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        grow(leafmap, 60, 5000)
        sealed_sync(backup, leafmap)
        assert len(backup.snapshot_chain("events")) == 2
        reopened = DiskBackup(backup.directory)
        grow(leafmap, 60, 6000)
        leafmap.seal_all()
        reopened.sync_leafmap(leafmap)
        assert reopened.stats.bases_written == 1
        assert reopened.stats.deltas_written == 0
        chain = reopened.snapshot_chain("events")
        assert [link["kind"] for link in chain] == ["base"]
        # And the old delta files were cleaned up with the fold.
        on_disk = {p.name for p in reopened.snapshot_dir.iterdir()}
        assert on_disk == {chain[0]["file"]}

    def test_incremental_disabled_always_rewrites(self, tmp_path, clock):
        backup = DiskBackup(tmp_path / "b", incremental=False)
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        start = 5000
        for _ in range(3):
            start = grow(leafmap, 50, start)
            sealed_sync(backup, leafmap)
        assert backup.stats.bases_written == 4
        assert backup.stats.deltas_written == 0
        assert len(backup.snapshot_chain("events")) == 1
        assert backup.stats.write_amplification >= 1.0

    def test_chain_survives_manager_restart(self, backup, clock):
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        grow(leafmap, 60, 5000)
        sealed_sync(backup, leafmap)
        reopened = DiskBackup(backup.directory)
        assert reopened.snapshot_valid("events")
        assert [link["kind"] for link in reopened.snapshot_chain("events")] == [
            "base",
            "delta",
        ]
        recovered = LeafMap(clock=clock, rows_per_block=50)
        recover_leafmap_snapshots(reopened, recovered)
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()

    def test_missing_delta_file_invalidates_chain(self, backup, clock):
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        grow(leafmap, 60, 5000)
        sealed_sync(backup, leafmap)
        delta = backup.snapshot_chain("events")[-1]
        (backup.snapshot_dir / delta["file"]).unlink()
        assert not backup.snapshot_valid("events")
        assert not backup.snapshots_ready()

    def test_drop_table_removes_chain_files(self, backup, clock):
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        grow(leafmap, 60, 5000)
        sealed_sync(backup, leafmap)
        files = backup.chain_files("events")
        assert len(files) == 2 and all(p.exists() for p in files)
        backup.drop_table("events")
        assert not any(p.exists() for p in files)

    def test_wipe_removes_delta_files(self, backup, clock):
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        grow(leafmap, 60, 5000)
        sealed_sync(backup, leafmap)
        backup.wipe()
        assert not backup.snapshot_dir.exists()

    def test_legacy_manifest_chain_synthesis(self, backup, clock):
        """A pre-chain manifest (bare ``snapshot_gen``, single base file)
        must still recover through the chain reader."""
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        manifest_path = backup.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for entry in manifest.values():
            entry.pop("chain", None)
            entry.pop("next_seq", None)
        manifest_path.write_text(json.dumps(manifest))
        reopened = DiskBackup(backup.directory)
        assert reopened.snapshot_valid("events")
        snap = materialize_chain(reopened, "events")
        assert snap.row_count == 120
        recovered = LeafMap(clock=clock, rows_per_block=50)
        recover_leafmap_snapshots(reopened, recovered)
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()


class TestDirectoryFsync:
    """Satellite fix: ``os.replace`` is atomic but not durable — the
    containing directory must be fsynced or a crash can roll back a
    rename the manifest already vouches for."""

    def test_snapshot_write_fsyncs_directory(self, backup, clock, monkeypatch):
        synced_dirs = []
        real = shmformat.fsync_directory
        monkeypatch.setattr(
            shmformat, "fsync_directory", lambda d: (synced_dirs.append(d), real(d))
        )
        leafmap = make_leafmap(clock)
        sealed_sync(backup, leafmap)
        assert backup.snapshot_dir in synced_dirs

    def test_manifest_save_fsyncs_directory(self, backup, clock, monkeypatch):
        synced_dirs = []
        real = shmformat.fsync_directory
        monkeypatch.setattr(
            "repro.disk.backup.fsync_directory",
            lambda d: (synced_dirs.append(d), real(d)),
        )
        leafmap = make_leafmap(clock)
        backup.sync_leafmap(leafmap)
        assert backup.directory in synced_dirs

    def test_dir_fsync_fault_never_vouches_generation(
        self, shm_namespace, tmp_path, clock, monkeypatch
    ):
        """Fault injection: the directory fsync after the snapshot rename
        fails.  The manifest is saved only after the snapshot landed
        durably, so the failed generation is never vouched for — the
        orphaned file is untrusted, and a retried sync recovers fully."""
        backup = DiskBackup(tmp_path / "backup")
        leafmap = make_leafmap(clock)
        leafmap.seal_all()

        def explode(directory):
            raise OSError("injected: directory fsync failed")

        monkeypatch.setattr(shmformat, "fsync_directory", explode)
        with pytest.raises(OSError, match="injected"):
            backup.sync_leafmap(leafmap)
        monkeypatch.undo()

        # The snapshot file may exist on disk, but nothing vouches for it.
        reopened = DiskBackup(tmp_path / "backup")
        assert not reopened.snapshot_valid("events")
        assert not reopened.snapshots_ready()

        # The application retries the sync point after the fault clears;
        # the chain is rebuilt and recovery sees every row.
        reopened.sync_leafmap(leafmap)
        assert reopened.snapshots_ready()
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=reopened, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.snapshot_rows() == leafmap.snapshot_rows()


def chained_backup(tmp_path, clock):
    """A backup whose 'events' chain is base + delta + delta with drops."""
    backup = DiskBackup(tmp_path / "backup")
    leafmap = make_leafmap(clock)  # blocks at times 1000..1119
    sealed_sync(backup, leafmap)
    grow(leafmap, 60, 5000)
    sealed_sync(backup, leafmap)
    leafmap.get_table("events").expire_before(1100)  # drops blocks 0..1
    backup.record_expiry("events", 1100)
    grow(leafmap, 60, 6000)
    sealed_sync(backup, leafmap)
    chain = backup.snapshot_chain("events")
    assert [link["kind"] for link in chain] == ["base", "delta", "delta"]
    assert chain[-1]["dropped"], "sweep needs a link with drops"
    assert backup.snapshots_ready()
    return backup, leafmap.snapshot_rows()


def _patch_manifest(backup, mutate):
    path = backup.directory / "manifest.json"
    manifest = json.loads(path.read_text())
    mutate(manifest["events"])
    path.write_text(json.dumps(manifest))
    return DiskBackup(backup.directory)


class TestChainReadFaultSweep:
    """Every chain-read phase, failed on purpose: the leaf must land on
    legacy replay with identical rows and a balanced tracker."""

    def corruption(self, backup, case):
        chain = backup.snapshot_chain("events")
        if case == "missing_base":
            (backup.snapshot_dir / chain[0]["file"]).unlink()
            return backup
        if case == "missing_delta":
            (backup.snapshot_dir / chain[1]["file"]).unlink()
            return backup
        if case == "torn_delta":
            path = backup.snapshot_dir / chain[1]["file"]
            path.write_bytes(path.read_bytes()[:40])
            return backup
        if case == "tip_gen_mismatch":
            return _patch_manifest(
                backup, lambda e: e["chain"][-1].update(gen=e["chain"][-1]["gen"] + 1)
            )
        if case == "nonmonotone_gens":
            return _patch_manifest(
                backup, lambda e: e["chain"][1].update(gen=e["chain"][0]["gen"])
            )
        if case == "kind_out_of_position":
            return _patch_manifest(backup, lambda e: e["chain"][1].update(kind="base"))
        if case == "unknown_dropped_seq":
            return _patch_manifest(
                backup, lambda e: e["chain"][1]["dropped"].append(999)
            )
        if case == "reused_seq":
            return _patch_manifest(
                backup, lambda e: e["chain"][1].update(start_seq=0)
            )
        if case == "block_count_mismatch":
            return _patch_manifest(
                backup,
                lambda e: e["chain"][1].update(blocks=e["chain"][1]["blocks"] + 1),
            )
        if case == "flag_kind_mismatch":
            # Clear the delta flag in the file envelope: the link says
            # delta, the file now claims to be a base.
            path = backup.snapshot_dir / chain[1]["file"]
            raw = bytearray(path.read_bytes())
            raw[6:8] = (0).to_bytes(2, "little")  # flags u16 at offset 6
            path.write_bytes(bytes(raw))
            return backup
        raise AssertionError(case)

    # The manifest itself refuses to vouch for these (snapshot_valid is
    # false), so the engine never enters the snapshot tier.
    UNTRUSTED = ("missing_base", "missing_delta", "tip_gen_mismatch")
    # These pass the validity pre-check and fail mid-read: the tier is
    # entered and the whole leaf falls back.
    FAULTED = (
        "torn_delta",
        "nonmonotone_gens",
        "kind_out_of_position",
        "unknown_dropped_seq",
        "reused_seq",
        "block_count_mismatch",
        "flag_kind_mismatch",
    )
    CASES = UNTRUSTED + FAULTED

    @pytest.mark.parametrize("case", CASES)
    def test_chain_fault_falls_back_to_legacy(
        self, case, shm_namespace, tmp_path, clock
    ):
        backup, snapshot = chained_backup(tmp_path, clock)
        backup = self.corruption(backup, case)
        with pytest.raises((SnapshotStaleError, CorruptionError)):
            materialize_chain(backup, "events")
        tracker = MemoryTracker()
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, tracker=tracker, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        if case in self.FAULTED:
            assert report.fell_back_to_legacy
            assert report.leaf_states == [
                "init",
                "disk_snapshot_recovery",
                "disk_recovery",
                "alive",
            ]
        else:
            assert not backup.snapshot_valid("events")
            assert report.leaf_states == ["init", "disk_recovery", "alive"]
        assert restored.snapshot_rows() == snapshot
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    @pytest.mark.parametrize("case", CASES)
    def test_chain_fault_parallel_replay_matches(
        self, case, shm_namespace, tmp_path, clock
    ):
        """The same sweep with the legacy rung running parallel replay:
        identical rows, balanced tracker, on both fan-out backends."""
        backup, snapshot = chained_backup(tmp_path, clock)
        backup = self.corruption(backup, case)
        tracker = MemoryTracker()
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            tracker=tracker,
            clock=clock,
            replay_workers=3,
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_legacy == (case in self.FAULTED)
        assert restored.snapshot_rows() == snapshot
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)
