"""Corruption fuzzing: hostile bytes never escape the error hierarchy.

A restore reads bytes written by another process; if those bytes are
garbage (a partially-written segment, a disk sector gone bad, an
operator's stray write), every reader must fail with a
:class:`~repro.errors.ReproError` subclass — never an uncontrolled
IndexError/struct.error/UnicodeDecodeError — and never loop or crash the
interpreter.  The restart engine additionally must convert any such
failure into a disk fallback, which test_core_engine covers; here we
fuzz the parsers themselves.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.columnstore.rbc import RowBlockColumn, build_rbc
from repro.columnstore.rowblock import RowBlock
from repro.errors import ReproError
from repro.shm.layout import read_segment_header
from repro.types import ColumnType

ACCEPTABLE = (ReproError,)


def sample_rbc():
    return build_rbc(ColumnType.STRING, ["alpha", "beta", "alpha"] * 10)


def sample_packed_block():
    rows = [{"time": i, "host": f"h{i % 2}", "v": float(i)} for i in range(30)]
    return RowBlock.from_rows(rows, created_at=1.0).pack()


class TestRbcFuzz:
    @settings(max_examples=150, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_random_bytes_never_crash(self, data):
        try:
            column = RowBlockColumn(data)
            column.verify()
            column.values(ColumnType.STRING)
        except ACCEPTABLE:
            pass

    @settings(max_examples=100, deadline=None)
    @given(st.data())
    def test_mutated_valid_buffer_never_crashes(self, data):
        buf = bytearray(sample_rbc())
        n_mutations = data.draw(st.integers(min_value=1, max_value=8))
        for _ in range(n_mutations):
            index = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
            buf[index] = data.draw(st.integers(min_value=0, max_value=255))
        try:
            column = RowBlockColumn(bytes(buf))
            column.verify()
            column.values(ColumnType.STRING)
        except ACCEPTABLE:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_truncations_never_crash(self, cut):
        buf = sample_rbc()
        try:
            RowBlockColumn(buf[: min(cut, len(buf))]).verify()
        except ACCEPTABLE:
            pass


class TestPackedBlockFuzz:
    @settings(max_examples=120, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_random_bytes_never_crash(self, data):
        try:
            RowBlock.unpack(data)
        except ACCEPTABLE:
            pass

    @settings(max_examples=80, deadline=None)
    @given(st.data())
    def test_mutated_block_never_crashes(self, data):
        buf = bytearray(sample_packed_block())
        for _ in range(data.draw(st.integers(min_value=1, max_value=6))):
            index = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
            buf[index] ^= 1 << data.draw(st.integers(min_value=0, max_value=7))
        try:
            block = RowBlock.unpack(bytes(buf))
            block.verify()
            block.to_rows()
        except ACCEPTABLE:
            pass


class TestSegmentHeaderFuzz:
    @settings(max_examples=120, deadline=None)
    @given(st.binary(min_size=0, max_size=300))
    def test_random_bytes_never_crash(self, data):
        try:
            read_segment_header(memoryview(data))
        except ACCEPTABLE:
            pass


class TestDiskChunkFuzz:
    @settings(max_examples=100, deadline=None)
    @given(st.binary(min_size=0, max_size=400))
    def test_random_file_never_crashes(self, data):
        import io

        from repro.disk.format import read_table_chunks

        try:
            list(read_table_chunks(io.BytesIO(data)))
        except ACCEPTABLE:
            pass

    @settings(max_examples=60, deadline=None)
    @given(st.data())
    def test_mutated_file_never_crashes(self, data):
        import io

        from repro.disk.format import read_table_chunks, write_chunk, write_file_header

        buf = io.BytesIO()
        write_file_header(buf)
        write_chunk(buf, [{"time": 1, "host": "a", "v": 0.5}] * 5)
        raw = bytearray(buf.getvalue())
        index = data.draw(st.integers(min_value=0, max_value=len(raw) - 1))
        raw[index] ^= 0xFF
        try:
            list(read_table_chunks(io.BytesIO(bytes(raw))))
        except ACCEPTABLE:
            pass


class TestMetadataFuzz:
    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.binary(min_size=0, max_size=64))
    def test_garbage_metadata_never_crashes(self, dirty_shm_namespace, prefix):
        """A metadata segment overwritten with garbage must fail with a
        library error and route the engine to disk (the engine path is
        asserted in test_core_engine; here we check the parser)."""
        from repro.shm.metadata import LeafMetadata
        from repro.shm.segment import ShmSegment

        import uuid as _uuid

        name = f"{dirty_shm_namespace}-leaf-fz{_uuid.uuid4().hex[:6]}-meta"
        segment = ShmSegment.create(name, 4096)
        try:
            segment.write_at(0, prefix)
            meta = LeafMetadata(segment)
            try:
                meta.valid
                meta.records
            except ACCEPTABLE:
                pass
        finally:
            segment.unlink()
