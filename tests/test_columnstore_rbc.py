"""Tests for the row block column buffer (paper, Figure 3).

Key invariants: single-buffer contiguity, position independence (offsets
from base), and checksum detection of any byte flip.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.rbc import (
    FOOTER_SIZE,
    HEADER_SIZE,
    RowBlockColumn,
    build_rbc,
)
from repro.errors import ChecksumMismatchError, CorruptionError, LayoutVersionError
from repro.types import ColumnType


def sample_rbc(values=None):
    return build_rbc(ColumnType.STRING, values or ["a", "b", "a", "c"] * 10)


class TestLayout:
    def test_header_and_footer_present(self):
        buf = sample_rbc()
        assert len(buf) >= HEADER_SIZE + FOOTER_SIZE

    def test_sections_are_contiguous_and_ordered(self):
        column = RowBlockColumn(sample_rbc())
        # dictionary then data then footer, all within the buffer
        assert len(column.dictionary) + len(column.data) == (
            len(column.buffer) - HEADER_SIZE - FOOTER_SIZE
        )

    def test_values_decode(self):
        values = ["x", "y", "x"] * 7
        column = RowBlockColumn(build_rbc(ColumnType.STRING, values))
        assert column.values(ColumnType.STRING) == values
        assert column.n_items == len(values)

    def test_every_type(self):
        cases = [
            (ColumnType.INT64, [1, -5, 7] * 5),
            (ColumnType.FLOAT64, [1.5, 2.25] * 5),
            (ColumnType.STRING, ["a", "bb"] * 5),
            (ColumnType.STRING_VECTOR, [["a"], [], ["b", "c"]] * 5),
        ]
        for ctype, values in cases:
            assert RowBlockColumn(build_rbc(ctype, values)).values(ctype) == values

    def test_empty_column(self):
        column = RowBlockColumn(build_rbc(ColumnType.INT64, []))
        assert column.values(ColumnType.INT64) == []


class TestPositionIndependence:
    def test_relocated_buffer_decodes_identically(self):
        """The whole point of base+offset pointers: move the bytes
        anywhere and they still parse."""
        buf = sample_rbc()
        arena = bytearray(b"\xcc" * 17) + bytearray(buf) + bytearray(b"\xdd" * 9)
        view = memoryview(arena)[17 : 17 + len(buf)]
        relocated = RowBlockColumn(view)
        relocated.verify()
        assert relocated.values(ColumnType.STRING) == RowBlockColumn(buf).values(
            ColumnType.STRING
        )

    def test_copy_bytes_detaches(self):
        buf = bytearray(sample_rbc())
        column = RowBlockColumn(buf)
        copy = column.copy_bytes()
        buf[HEADER_SIZE] ^= 0xFF
        assert copy != bytes(buf)


class TestValidation:
    def test_bad_magic(self):
        buf = bytearray(sample_rbc())
        buf[0] ^= 0xFF
        with pytest.raises(CorruptionError):
            RowBlockColumn(buf)

    def test_bad_version(self):
        buf = bytearray(sample_rbc())
        buf[4] = 99
        with pytest.raises(LayoutVersionError):
            RowBlockColumn(buf)

    def test_truncated(self):
        buf = sample_rbc()
        with pytest.raises(CorruptionError):
            RowBlockColumn(buf[:-4])

    def test_too_small(self):
        with pytest.raises(CorruptionError):
            RowBlockColumn(b"\x00" * 10)

    def test_wrong_size_claim(self):
        buf = sample_rbc()
        with pytest.raises(CorruptionError):
            RowBlockColumn(buf + b"extra")

    def test_checksum_detects_payload_flip(self):
        buf = bytearray(sample_rbc())
        buf[HEADER_SIZE + 2] ^= 0x01
        column = RowBlockColumn(buf)
        with pytest.raises(ChecksumMismatchError):
            column.verify()

    def test_bad_end_magic(self):
        buf = bytearray(sample_rbc())
        buf[-1] ^= 0xFF
        with pytest.raises(CorruptionError):
            RowBlockColumn(buf).verify()

    def test_pristine_verifies(self):
        RowBlockColumn(sample_rbc()).verify()

    @settings(max_examples=40, deadline=None)
    @given(st.data())
    def test_any_single_byte_flip_is_detected_property(self, data):
        """Invariant 2: the checksum catches any corruption of the
        header-through-data region (footer flips fail end-magic or CRC
        comparison instead)."""
        buf = bytearray(sample_rbc())
        index = data.draw(st.integers(min_value=0, max_value=len(buf) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        buf[index] ^= 1 << bit
        with pytest.raises((CorruptionError, LayoutVersionError)):
            column = RowBlockColumn(buf)
            column.verify()

    def test_to_encoded_reconstructs(self):
        values = [5, 6, 7] * 4
        buf = build_rbc(ColumnType.INT64, values)
        column = RowBlockColumn(buf)
        encoded = column.to_encoded()
        from repro.columnstore.rbc import build_rbc_from_encoded

        assert build_rbc_from_encoded(encoded) == buf
