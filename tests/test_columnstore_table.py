"""Tests for tables: sealing, expiry, scans, and the restart hooks."""

import pytest

from repro.columnstore.table import Table, estimate_row_bytes
from repro.errors import SchemaError
from repro.util.clock import ManualClock


def make_table(rows_per_block=10, **kwargs):
    return Table("events", clock=ManualClock(100.0), rows_per_block=rows_per_block, **kwargs)


class TestIngest:
    def test_rows_accumulate_in_buffer(self):
        table = make_table()
        table.add_rows({"time": i} for i in range(5))
        assert table.buffered_row_count == 5
        assert table.block_count == 0
        assert table.row_count == 5

    def test_seal_at_row_threshold(self):
        table = make_table(rows_per_block=10)
        table.add_rows({"time": i} for i in range(25))
        assert table.block_count == 2
        assert table.buffered_row_count == 5

    def test_seal_at_byte_threshold(self):
        table = Table(
            "big", clock=ManualClock(0.0), rows_per_block=10_000, max_block_bytes=500
        )
        table.add_rows({"time": i, "payload": "x" * 100} for i in range(20))
        assert table.block_count >= 2

    def test_time_required(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.add_row({"host": "a"})

    def test_time_must_be_int(self):
        table = make_table()
        with pytest.raises(SchemaError):
            table.add_row({"time": "not-a-timestamp"})
        with pytest.raises(SchemaError):
            table.add_row({"time": True})

    def test_seal_empty_buffer_is_noop(self):
        table = make_table()
        assert table.seal_buffer() is None

    def test_ingest_counter_monotone(self):
        table = make_table()
        table.add_rows({"time": i} for i in range(25))
        assert table.total_rows_ingested == 25
        table.expire_before(100)
        assert table.total_rows_ingested == 25

    def test_rows_are_copied_on_add(self):
        table = make_table()
        row = {"time": 1, "tags": ["a"]}
        table.add_row(row)
        row["time"] = 999
        assert next(table.scan())["time"] == 1

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            Table("")

    def test_bad_rows_per_block_rejected(self):
        with pytest.raises(ValueError):
            Table("x", rows_per_block=0)


class TestExpiry:
    def test_expire_before_drops_whole_blocks(self):
        table = make_table(rows_per_block=10)
        table.add_rows({"time": i} for i in range(30))
        dropped = table.expire_before(10)  # first block: times 0..9
        assert dropped == 10
        assert table.row_count == 20
        assert table.total_rows_expired == 10

    def test_expire_keeps_partially_live_blocks(self):
        table = make_table(rows_per_block=10)
        table.add_rows({"time": i} for i in range(10))
        assert table.expire_before(5) == 0  # block max_time=9 >= 5
        assert table.row_count == 10

    def test_size_limit_drops_oldest(self):
        table = make_table(rows_per_block=10)
        table.add_rows({"time": i, "pad": f"p{i % 4}"} for i in range(40))
        per_block = table.sealed_nbytes // 4
        dropped = table.enforce_size_limit(per_block * 2)
        assert dropped >= 10
        remaining_times = [r["time"] for r in table.to_rows()]
        assert min(remaining_times) >= 10  # oldest went first


class TestScan:
    def test_scan_includes_buffer(self):
        table = make_table(rows_per_block=10)
        table.add_rows({"time": i} for i in range(15))
        assert len(list(table.scan())) == 15

    def test_scan_time_range_half_open(self):
        table = make_table(rows_per_block=5)
        table.add_rows({"time": i} for i in range(20))
        got = [r["time"] for r in table.scan(5, 10)]
        assert got == [5, 6, 7, 8, 9]

    def test_scan_filters_inside_overlapping_block(self):
        table = make_table(rows_per_block=10)
        table.add_rows({"time": i} for i in range(10))
        got = [r["time"] for r in table.scan(3, 6)]
        assert got == [3, 4, 5]

    def test_scan_rows_are_copies(self):
        table = make_table()
        table.add_row({"time": 1})
        row = next(table.scan())
        row["time"] = 42
        assert next(table.scan())["time"] == 1


class TestRestartHooks:
    def test_take_blocks_empties_table(self):
        table = make_table(rows_per_block=5)
        table.add_rows({"time": i} for i in range(10))
        blocks = table.take_blocks()
        assert len(blocks) == 2
        assert table.block_count == 0

    def test_replace_blocks(self):
        source = make_table(rows_per_block=5)
        source.add_rows({"time": i} for i in range(10))
        target = make_table(rows_per_block=5)
        target.replace_blocks(source.blocks)
        assert target.to_rows() == source.to_rows()


class TestEstimate:
    def test_estimate_counts_strings_and_vectors(self):
        small = estimate_row_bytes({"time": 1})
        big = estimate_row_bytes({"time": 1, "s": "x" * 100, "v": ["y" * 50] * 3})
        assert big > small + 200
