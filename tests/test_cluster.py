"""Tests for the cluster, aggregator partiality, rollover, and dashboard."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.dashboard import Dashboard, render_dashboard
from repro.cluster.rollover import RolloverCoordinator
from repro.query.query import Aggregation, Query
from repro.server.aggregator import Aggregator


def make_cluster(shm_namespace, tmp_path, clock, n_machines=3, leaves=2, seed=11):
    cluster = Cluster(
        n_machines,
        tmp_path / "cluster",
        leaves_per_machine=leaves,
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=64,
        rng=random.Random(seed),
    )
    cluster.start_all()
    return cluster


COUNT = Query("requests", aggregations=(Aggregation("count"),))


def ingest_some(cluster, n=1200):
    rows = [{"time": 1000 + i, "svc": f"s{i % 5}", "lat": float(i % 40)} for i in range(n)]
    return cluster.ingest("requests", rows, batch_rows=100)


class TestCluster:
    def test_ingest_spreads_over_leaves(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        assert ingest_some(cluster) == 1200
        populated = [leaf for leaf in cluster.leaves if leaf.leafmap.row_count]
        assert len(populated) >= 4  # spread, not one hot leaf
        assert cluster.total_rows() == 1200

    def test_query_aggregates_cluster_wide(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        ingest_some(cluster)
        result = cluster.query(COUNT)
        assert result.rows[0].values["count(*)"] == 1200
        assert result.coverage == 1.0

    def test_partial_results_when_leaf_down(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        ingest_some(cluster)
        victim = next(leaf for leaf in cluster.leaves if leaf.leafmap.row_count)
        lost = victim.leafmap.row_count
        victim.crash()
        result = cluster.query(COUNT)
        assert result.rows[0].values["count(*)"] == 1200 - lost
        assert result.leaves_responded == len(cluster.leaves) - 1
        assert 0 < result.coverage < 1

    def test_partiality_is_exactly_live_leaf_restriction(
        self, shm_namespace, tmp_path, clock
    ):
        """Invariant 8: the degraded answer equals the full answer
        restricted to live leaves."""
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        ingest_some(cluster)
        victim = cluster.leaves[0]
        survivors = [leaf for leaf in cluster.leaves if leaf is not victim]
        expected = Aggregator(survivors).query(COUNT).rows[0].values["count(*)"]
        victim.crash()
        got = cluster.query(COUNT).rows[0].values["count(*)"]
        assert got == expected

    def test_leaf_lookup(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        leaf = cluster.leaves[3]
        assert cluster.leaf_by_id(leaf.leaf_id) is leaf
        assert leaf in cluster.machine_of(leaf).leaves
        with pytest.raises(KeyError):
            cluster.leaf_by_id("nope")

    def test_availability_metric(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        assert cluster.availability == 1.0
        cluster.leaves[0].crash()
        assert cluster.availability == pytest.approx(5 / 6)


class TestRollover:
    def test_shm_rollover_preserves_data_and_upgrades_all(
        self, shm_namespace, tmp_path, clock
    ):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        ingest_some(cluster)
        cluster.sync_all()
        result = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.2, use_shm=True
        ).run()
        assert result.leaves_restarted == 6
        assert all(leaf.version == "v2" for leaf in cluster.leaves)
        assert cluster.query(COUNT).rows[0].values["count(*)"] == 1200
        assert all(
            report.method.value == "shared_memory"
            for report in result.restart_reports
            if report.leaf_states and report.leaf_states[0] == "init"
        )

    def test_disk_rollover_also_preserves_synced_data(
        self, shm_namespace, tmp_path, clock
    ):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        ingest_some(cluster)
        cluster.sync_all()
        RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.2, use_shm=False
        ).run()
        assert cluster.query(COUNT).rows[0].values["count(*)"] == 1200

    def test_at_most_one_leaf_per_machine_restarts(
        self, shm_namespace, tmp_path, clock
    ):
        cluster = make_cluster(shm_namespace, tmp_path, clock, n_machines=2, leaves=4)
        coordinator = RolloverCoordinator(cluster, new_version="v2", batch_fraction=0.9)
        batch = coordinator.select_batch()
        machines = [cluster.machine_of(leaf).machine_id for leaf in batch]
        assert len(machines) == len(set(machines))  # invariant 7

    def test_batch_size_respects_fraction(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock, n_machines=5, leaves=2)
        coordinator = RolloverCoordinator(cluster, new_version="v2", batch_fraction=0.2)
        assert coordinator.batch_size == 2
        assert len(coordinator.select_batch()) <= 2

    def test_availability_never_below_one_minus_fraction(
        self, shm_namespace, tmp_path, clock
    ):
        cluster = make_cluster(shm_namespace, tmp_path, clock, n_machines=5, leaves=2)
        ingest_some(cluster, 500)
        result = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.2
        ).run()
        floor = 1 - 0.2 - 1e-9
        assert result.min_availability >= floor
        assert result.dashboard.samples[-1].new_version == 10

    def test_bad_fraction_rejected(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        with pytest.raises(ValueError):
            RolloverCoordinator(cluster, "v2", batch_fraction=0.0)


class TestDashboard:
    def test_series_shape(self):
        dashboard = Dashboard()
        dashboard.record(0.0, 10, 0, 0, 1.0)
        dashboard.record(5.0, 8, 2, 0, 0.8)
        dashboard.record(10.0, 0, 0, 10, 1.0)
        assert dashboard.duration == 10.0
        assert dashboard.min_availability == 0.8
        assert 0.8 < dashboard.mean_availability() < 1.0

    def test_mean_availability_is_time_weighted(self):
        dashboard = Dashboard()
        dashboard.record(0.0, 10, 0, 0, 1.0)
        dashboard.record(9.0, 8, 2, 0, 0.5)  # held for 1s only
        dashboard.record(10.0, 0, 0, 10, 1.0)
        assert dashboard.mean_availability() == pytest.approx((9 * 1.0 + 1 * 0.5) / 10)

    def test_render_contains_all_three_phases(self):
        dashboard = Dashboard()
        dashboard.record(0.0, 6, 2, 2, 0.8)
        art = render_dashboard(dashboard, width=30)
        assert "#" in art and "~" in art and "=" in art
        assert "80.0%" in art

    def test_render_empty(self):
        assert render_dashboard(Dashboard()) == "(no samples)"

    def test_render_downsamples_long_series(self):
        dashboard = Dashboard()
        for i in range(100):
            dashboard.record(float(i), 100 - i, 0, i, 1.0)
        art = render_dashboard(dashboard, max_rows=8)
        assert len(art.splitlines()) == 9  # header + 8 rows


class TestRolloverStragglers:
    def test_failed_shm_copy_falls_back_and_rollover_completes(
        self, shm_namespace, tmp_path, clock
    ):
        """One leaf's copy dies mid-shutdown (the watchdog-kill case):
        the coordinator counts a straggler, the leaf recovers from disk,
        every leaf still ends on the new version with all synced data."""
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        ingest_some(cluster, 600)
        cluster.sync_all()
        victim = next(leaf for leaf in cluster.leaves if leaf.leafmap.row_count)

        original_fault = victim.engine._fault
        def explode(point):
            if point == "backup:before_valid":
                raise RuntimeError("copy overran the deadline")
        victim.engine._fault = explode

        result = RolloverCoordinator(
            cluster, new_version="v2", batch_fraction=0.5, use_shm=True
        ).run()
        victim.engine._fault = original_fault
        assert result.stragglers == 1
        assert all(leaf.version == "v2" for leaf in cluster.leaves)
        assert cluster.query(COUNT).rows[0].values["count(*)"] == 600
        # The victim's shutdown synced (and snapshotted) before the copy
        # blew up, so its solo restart takes the fast disk tier.
        assert victim.last_restart_report.method.value == "disk_snapshot"
