"""Tests for the process-level workers and the deploy tooling.

These run real child processes: the strongest form of the paper's claim,
since heap state genuinely dies with each worker.
"""

import pytest

from repro.cluster.deploy import ProcessDeployment
from repro.query.aggregate import merge_leaf_results, partial_from_wire, partial_to_wire
from repro.query.query import Aggregation, Filter, Query
from repro.server.process_client import LeafProcess, LeafProcessConfig, LeafProcessError

pytestmark = pytest.mark.slow

COUNT = Query("events", aggregations=(Aggregation("count"),))


def make_leaf(shm_namespace, tmp_path, leaf_id="0", version="v1"):
    return LeafProcess(
        LeafProcessConfig(
            leaf_id=leaf_id,
            backup_dir=tmp_path / f"leaf-{leaf_id}",
            namespace=shm_namespace,
            version=version,
            rows_per_block=256,
        ),
        request_timeout=60.0,
    )


class TestLeafProcess:
    def test_spawn_ingest_query_shutdown(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        report = leaf.spawn()
        assert report["method"] == "disk"  # empty first boot
        leaf.add_rows("events", [{"time": i, "v": float(i)} for i in range(600)])
        partial = leaf.query_partial(COUNT)
        assert partial[()][0].finalize() == 600
        assert leaf.shutdown(use_shm=False) is True  # shm path covered below
        assert not leaf.running

    def test_shm_restart_across_processes(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        leaf.spawn()
        leaf.add_rows("events", [{"time": i} for i in range(400)])
        leaf.shutdown(use_shm=True)
        reborn = make_leaf(shm_namespace, tmp_path)
        report = reborn.spawn()
        assert report["method"] == "shared_memory"
        assert report["rows"] == 400
        assert reborn.query_partial(COUNT)[()][0].finalize() == 400
        reborn.shutdown(use_shm=False)

    def test_killed_worker_forces_disk_recovery(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        leaf.spawn()
        leaf.add_rows("events", [{"time": i} for i in range(300)])
        leaf.sync()
        leaf.request({"op": "status"})
        # Make the worker hang instead of shutting down; the deploy
        # loop's watchdog kills it.
        assert leaf.running
        assert leaf._proc is not None and leaf._proc.stdin is not None
        leaf._proc.stdin.write('{"op": "hang"}\n')
        leaf._proc.stdin.flush()
        from repro.core.watchdog import wait_or_kill

        assert wait_or_kill(leaf._proc, timeout=1.0) is False
        leaf._proc = None
        reborn = make_leaf(shm_namespace, tmp_path)
        report = reborn.spawn()
        assert report["method"] == "disk"
        assert report["rows"] == 300
        reborn.shutdown(use_shm=False)

    def test_crash_op_loses_unsynced_rows(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        leaf.spawn()
        leaf.add_rows("events", [{"time": i} for i in range(200)])
        leaf.sync()
        leaf.add_rows("events", [{"time": 1000 + i} for i in range(50)])
        with pytest.raises(LeafProcessError):
            leaf.request({"op": "crash"})
        leaf._proc = None
        reborn = make_leaf(shm_namespace, tmp_path)
        report = reborn.spawn()
        assert report["method"] == "disk"
        assert report["rows"] == 200
        reborn.shutdown(use_shm=False)

    def test_error_response_does_not_kill_worker(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        leaf.spawn()
        with pytest.raises(LeafProcessError):
            leaf.request({"op": "no-such-op"})
        assert leaf.running
        assert leaf.status()["status"] == "alive"
        leaf.shutdown(use_shm=False)

    def test_double_spawn_rejected(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        leaf.spawn()
        with pytest.raises(LeafProcessError):
            leaf.spawn()
        leaf.shutdown(use_shm=False)

    def test_request_on_stopped_leaf_rejected(self, shm_namespace, tmp_path):
        leaf = make_leaf(shm_namespace, tmp_path)
        with pytest.raises(LeafProcessError):
            leaf.status()

    def test_execv_restart_swaps_the_image_in_place(self, shm_namespace, tmp_path):
        """The in-place upgrade: ``os.execv`` keeps the pid and the
        controller's pipes but replaces the process image — proven by
        the incarnation token changing while the pid does not — and the
        data crosses the swap through shared memory."""
        leaf = make_leaf(shm_namespace, tmp_path)
        leaf.spawn()
        leaf.add_rows("events", [{"time": i, "v": float(i)} for i in range(350)])
        before = leaf.status()
        digest = leaf.digest()

        result = leaf.restart(mode="execv", version="v2")
        assert result["handoff"]["used_shm"] is True
        assert result["handoff"]["pid"] == before["pid"]
        assert result["start"]["method"] == "shared_memory"
        assert result["start"]["rows"] == 350

        after = leaf.status()
        assert after["pid"] == before["pid"], "execv must keep the pid"
        assert after["incarnation"] != before["incarnation"], (
            "a new process image must mint a new incarnation"
        )
        assert after["version"] == "v2"
        assert leaf.digest() == digest
        assert leaf.query_partial(COUNT)[()][0].finalize() == 350
        leaf.shutdown(use_shm=False)


class TestWireFormats:
    def test_query_roundtrip(self):
        query = Query(
            "t",
            aggregations=(Aggregation("count"), Aggregation("p95", "v")),
            group_by=("a", "b"),
            filters=(Filter("a", "in", ("x", "y")), Filter("tags", "contains", "z")),
            start_time=10,
            end_time=20,
            limit=5,
        )
        assert Query.from_dict(query.to_dict()) == query

    def test_partial_roundtrip(self, clock):
        from repro.columnstore.leafmap import LeafMap
        from repro.query.execute import execute_on_leaf

        leafmap = LeafMap(clock=clock, rows_per_block=64)
        leafmap.get_or_create("t").add_rows(
            {"time": i, "g": f"g{i % 3}", "v": float(i)} for i in range(100)
        )
        query = Query(
            "t",
            aggregations=(Aggregation("count"), Aggregation("p50", "v")),
            group_by=("g",),
        )
        partial = execute_on_leaf(leafmap, query).partial
        rebuilt = partial_from_wire(partial_to_wire(partial))
        before = merge_leaf_results(query, [partial], 1)
        after = merge_leaf_results(query, [rebuilt], 1)
        assert [(r.group, r.values) for r in before.rows] == [
            (r.group, r.values) for r in after.rows
        ]


class TestProcessDeployment:
    def test_rolling_upgrade_over_real_processes(self, shm_namespace, tmp_path):
        deployment = ProcessDeployment(
            tmp_path, n_leaves=3, namespace=shm_namespace, rows_per_block=256
        )
        try:
            deployment.start_all()
            rows = [{"time": i, "v": float(i % 10)} for i in range(900)]
            assert deployment.ingest("events", rows, batch_rows=150) == 900
            deployment.sync_all()
            before = deployment.query(COUNT).rows[0].values["count(*)"]
            result = deployment.rolling_upgrade("v2", batch_fraction=0.34)
            assert result.leaves_restarted == 3
            assert result.clean_shutdowns == 3
            assert result.killed == 0
            assert result.recovered_via == {"shared_memory": 3}
            assert deployment.query(COUNT).rows[0].values["count(*)"] == before
            assert all(
                leaf.status()["version"] == "v2" for leaf in deployment.leaves
            )
        finally:
            deployment.stop_all()

    def test_queries_mid_upgrade_are_partial(self, shm_namespace, tmp_path):
        deployment = ProcessDeployment(
            tmp_path, n_leaves=3, namespace=shm_namespace, rows_per_block=256
        )
        try:
            deployment.start_all()
            deployment.ingest("events", [{"time": i} for i in range(300)], 100)
            deployment.sync_all()
            victim = deployment.leaves[0]
            victim.shutdown(use_shm=True)
            result = deployment.query(COUNT)
            assert result.leaves_responded == 2
            assert 0 < result.coverage < 1
            victim.spawn()
        finally:
            deployment.stop_all()

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ProcessDeployment(tmp_path, n_leaves=0)
