"""Fixture tests for the resource-balance checker (RL6xx)."""

from pathlib import Path

from repro.analysis.checkers import resource
from repro.analysis.loader import load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(name):
    return resource.check(load_files([FIXTURES / name]))


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.symbol) for f in run("resource_bad.py")}
        assert found == {
            # PR 2 shape: shm charges with no free anywhere in the module
            ("RL601", "attach_all:self.tracker.allocate:shm"),
            # PR 6 shape: balanced on the normal path, leaked on exception
            ("RL602", "fault_block:self._budget.acquire"),
            ("RL602", "charge_cache:self._charge"),
            # reserve() called outside `with`
            ("RL603", "start:self._budget.reserve"),
        }

    def test_messages_name_the_leak_class(self):
        by_code = {f.code: f.message for f in run("resource_bad.py")}
        assert "ever releases" in by_code["RL601"]
        assert "exception edge" in by_code["RL602"]
        assert "with" in by_code["RL603"]


class TestGoodFixture:
    def test_silent(self):
        """try/finally, handler coverage, handoff idioms, with-reserve,
        and the handoff pragma are all accepted."""
        assert run("resource_good.py") == []


class TestRealTree:
    def _check(self, repo_root, *relpaths):
        modules = load_files(
            [repo_root / rel for rel in relpaths], root=repo_root
        )
        return resource.check(modules)

    def test_engine_budget_and_heap_paths_are_clean(self, repo_root):
        """Budget charges balance via try/finally; decoded-heap charges
        via the pending-mirror handler free.  The only remaining
        findings are the two shm charges whose failure path is the
        documented handoff to _discard_shm_tracked (baselined)."""
        found = {(f.code, f.symbol) for f in self._check(repo_root, "src/repro/core/engine.py")}
        assert found == {
            ("RL602", "_copy_table_out:self.tracker.allocate:shm"),
            ("RL602", "_restore_from_segments:self.tracker.allocate:shm"),
        }

    def test_lazyrestore_fault_in_is_clean(self, repo_root):
        """The fault-in budget charge is released by the inner finally;
        heap charges hand off to the engine's discard path."""
        assert self._check(repo_root, "src/repro/core/lazyrestore.py") == []

    def test_colcache_charges_are_clean(self, repo_root):
        """colcache is outside the default scan dirs; keep it balanced
        via this direct check — put's charge hands off to the eviction
        and invalidation paths."""
        assert self._check(repo_root, "src/repro/columnstore/colcache.py") == []

    def test_parallel_reserve_internals_are_clean(self, repo_root):
        """FootprintBudget's own implementation (self.acquire inside
        reserve) must not be mistaken for an unbalanced charge."""
        assert self._check(repo_root, "src/repro/core/parallel.py") == []
