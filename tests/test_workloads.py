"""Tests for the synthetic workload generators and scenarios."""

import random

import pytest

from repro.cluster.cluster import Cluster
from repro.columnstore.schema import Schema
from repro.workloads import (
    SCENARIOS,
    ads_revenue,
    code_regressions,
    error_logs,
    populate_cluster,
    service_requests,
)

GENERATORS = [service_requests, error_logs, ads_revenue, code_regressions]


@pytest.mark.parametrize("generator", GENERATORS)
class TestGenerators:
    def test_row_count(self, generator):
        assert len(list(generator(123))) == 123

    def test_deterministic_for_seed(self, generator):
        assert list(generator(50, seed=5)) == list(generator(50, seed=5))

    def test_different_seeds_differ(self, generator):
        assert list(generator(50, seed=1)) != list(generator(50, seed=2))

    def test_time_is_nearly_sorted(self, generator):
        times = [row["time"] for row in generator(500)]
        assert times == sorted(times)
        assert times[0] >= 1_390_000_000

    def test_rows_have_consistent_schema(self, generator):
        rows = list(generator(200))
        Schema.from_rows(rows)  # raises on type conflicts


class TestScenarios:
    def test_all_scenarios_declared(self):
        assert set(SCENARIOS) == {"requests", "errors", "ads", "regressions"}

    def test_queries_target_their_tables(self):
        for scenario in SCENARIOS.values():
            assert scenario.query.table == scenario.table

    def test_populate_cluster_runs_every_scenario(self, shm_namespace, tmp_path, clock):
        cluster = Cluster(
            2,
            tmp_path / "c",
            leaves_per_machine=2,
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=128,
            rng=random.Random(3),
        )
        cluster.start_all()
        total = populate_cluster(cluster, rows_per_scenario=300)
        assert total == 1200
        for scenario in SCENARIOS.values():
            result = cluster.query(scenario.query)
            assert result.rows, scenario.name
            assert result.coverage == 1.0
