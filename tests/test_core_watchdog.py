"""Tests for the shutdown watchdogs (paper, Section 4.3)."""

import subprocess
import sys

import pytest

from repro.core.watchdog import CooperativeDeadline, wait_or_kill
from repro.errors import ShutdownTimeout
from repro.util.clock import ManualClock


class TestCooperativeDeadline:
    def test_not_expired_initially(self):
        clock = ManualClock(0.0)
        deadline = CooperativeDeadline(timeout=180.0, clock=clock)
        assert not deadline.expired
        assert deadline.remaining == 180.0
        deadline.check()  # no raise

    def test_expires_with_time(self):
        clock = ManualClock(0.0)
        deadline = CooperativeDeadline(timeout=10.0, clock=clock)
        clock.advance(10.0)
        assert deadline.expired
        with pytest.raises(ShutdownTimeout):
            deadline.check()

    def test_bad_timeout_rejected(self):
        with pytest.raises(ValueError):
            CooperativeDeadline(timeout=0.0)

    def test_remaining_counts_down(self):
        clock = ManualClock(0.0)
        deadline = CooperativeDeadline(timeout=30.0, clock=clock)
        clock.advance(12.0)
        assert deadline.remaining == 18.0


class TestWaitOrKill:
    def test_fast_exit_not_killed(self):
        process = subprocess.Popen([sys.executable, "-c", "pass"])
        assert wait_or_kill(process, timeout=30.0) is True
        assert process.returncode == 0

    def test_hung_process_killed(self):
        process = subprocess.Popen([sys.executable, "-c", "import time; time.sleep(600)"])
        assert wait_or_kill(process, timeout=0.5) is False
        assert process.returncode != 0
