"""Tests for the shared memory inspection tooling."""

from repro.core.engine import RestartEngine
from repro.shm.inspect import format_leaf_info, inspect_leaf
from repro.shm.metadata import LeafMetadata
from repro.shm.segment import ShmSegment

from tests.conftest import make_leafmap


class TestInspect:
    def test_no_state(self, shm_namespace):
        info = inspect_leaf(shm_namespace, "0")
        assert not info.metadata_exists
        assert not info.recoverable
        assert "no shared memory state" in format_leaf_info(info)

    def test_valid_state_is_recoverable(self, shm_namespace, clock):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        leafmap = make_leafmap(clock, tables=("events", "errors"))
        engine.backup_to_shm(leafmap)
        info = inspect_leaf(shm_namespace, "0")
        assert info.metadata_exists and info.valid
        assert info.recoverable
        assert len(info.tables) == 2
        assert all(t.exists and t.row_blocks > 0 for t in info.tables)
        assert info.total_bytes > 0
        report = format_leaf_info(info)
        assert "valid bit: SET" in report
        assert "recoverable: yes" in report
        engine.discard_shm()

    def test_invalid_bit_not_recoverable(self, shm_namespace, clock):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        engine.backup_to_shm(make_leafmap(clock))
        meta = LeafMetadata.attach(shm_namespace, "0")
        meta.set_valid(False)
        meta.close()
        info = inspect_leaf(shm_namespace, "0")
        assert info.metadata_exists and not info.valid
        assert not info.recoverable
        assert "valid bit: clear" in format_leaf_info(info)
        engine.discard_shm()

    def test_missing_table_segment_reported(self, shm_namespace, clock):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        engine.backup_to_shm(make_leafmap(clock))
        meta = LeafMetadata.attach(shm_namespace, "0")
        victim = meta.records[0].segment_name
        meta.close()
        ShmSegment.attach(victim).unlink()
        info = inspect_leaf(shm_namespace, "0")
        assert not info.recoverable
        assert info.tables[0].error == "segment missing"
        assert "ERROR" in format_leaf_info(info)
        engine.discard_shm()

    def test_corrupted_segment_reported(self, shm_namespace, clock):
        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        engine.backup_to_shm(make_leafmap(clock))
        meta = LeafMetadata.attach(shm_namespace, "0")
        victim = meta.records[0].segment_name
        meta.close()
        segment = ShmSegment.attach(victim)
        segment.write_at(0, b"\xff\xff\xff\xff")
        segment.close()
        info = inspect_leaf(shm_namespace, "0")
        assert not info.recoverable
        assert info.tables[0].error and "CorruptionError" in info.tables[0].error
        engine.discard_shm()

    def test_inspection_is_nondestructive(self, shm_namespace, clock):
        from repro.columnstore.leafmap import LeafMap
        from repro.core.engine import RecoveryMethod

        engine = RestartEngine("0", namespace=shm_namespace, clock=clock)
        leafmap = make_leafmap(clock)
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        engine.backup_to_shm(leafmap)
        inspect_leaf(shm_namespace, "0")
        inspect_leaf(shm_namespace, "0")
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine("0", namespace=shm_namespace, clock=clock).restore(
            restored
        )
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert restored.snapshot_rows() == snapshot
