"""Tests for schemas and type inference."""

import pytest

from repro.columnstore.schema import Schema, infer_column_type
from repro.errors import SchemaError
from repro.types import ColumnType
from repro.util.binary import BufferReader, BufferWriter


class TestInference:
    def test_basic_types(self):
        assert infer_column_type(1) is ColumnType.INT64
        assert infer_column_type(1.5) is ColumnType.FLOAT64
        assert infer_column_type("x") is ColumnType.STRING
        assert infer_column_type(["x"]) is ColumnType.STRING_VECTOR

    def test_bool_rejected(self):
        with pytest.raises(SchemaError):
            infer_column_type(True)

    def test_unsupported_rejected(self):
        with pytest.raises(SchemaError):
            infer_column_type({"nested": 1})


class TestSchema:
    def test_requires_time_column(self):
        with pytest.raises(SchemaError):
            Schema({"host": ColumnType.STRING})

    def test_time_must_be_int64(self):
        with pytest.raises(SchemaError):
            Schema({"time": ColumnType.STRING})

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            Schema({"time": ColumnType.INT64, "": ColumnType.STRING})

    def test_from_rows_union(self):
        rows = [
            {"time": 1, "host": "a"},
            {"time": 2, "latency": 1.5},
        ]
        schema = Schema.from_rows(rows)
        assert set(schema.names) == {"time", "host", "latency"}
        assert schema.type_of("latency") is ColumnType.FLOAT64

    def test_from_rows_conflict_raises(self):
        rows = [{"time": 1, "v": 1}, {"time": 2, "v": "oops"}]
        with pytest.raises(SchemaError):
            Schema.from_rows(rows)

    def test_from_rows_without_time_raises(self):
        with pytest.raises(SchemaError):
            Schema.from_rows([{"host": "a"}])

    def test_unknown_column_raises(self):
        schema = Schema({"time": ColumnType.INT64})
        with pytest.raises(SchemaError):
            schema.type_of("missing")

    def test_column_values_fill_defaults(self):
        schema = Schema(
            {"time": ColumnType.INT64, "host": ColumnType.STRING,
             "v": ColumnType.FLOAT64, "tags": ColumnType.STRING_VECTOR}
        )
        rows = [{"time": 1}, {"time": 2, "host": "x", "v": 2, "tags": ["a"]}]
        assert schema.column_values("host", rows) == ["", "x"]
        assert schema.column_values("v", rows) == [0.0, 2.0]
        assert schema.column_values("tags", rows) == [[], ["a"]]

    def test_column_values_copies_lists(self):
        schema = Schema({"time": ColumnType.INT64, "tags": ColumnType.STRING_VECTOR})
        tags = ["a"]
        values = schema.column_values("tags", [{"time": 1, "tags": tags}])
        values[0].append("mutated")
        assert tags == ["a"]

    def test_column_values_type_checked(self):
        schema = Schema({"time": ColumnType.INT64, "host": ColumnType.STRING})
        with pytest.raises(TypeError):
            schema.column_values("host", [{"time": 1, "host": 5}])

    def test_serialize_roundtrip(self):
        schema = Schema(
            {"time": ColumnType.INT64, "host": ColumnType.STRING,
             "tags": ColumnType.STRING_VECTOR}
        )
        writer = BufferWriter()
        schema.serialize(writer)
        assert Schema.deserialize(BufferReader(writer.getvalue())) == schema

    def test_equality_is_order_sensitive(self):
        a = Schema({"time": ColumnType.INT64, "x": ColumnType.STRING})
        b = Schema({"x": ColumnType.STRING, "time": ColumnType.INT64})
        assert a != b  # column order is part of the layout

    def test_hashable(self):
        schema = Schema({"time": ColumnType.INT64})
        assert schema in {schema}
