"""Behavioral regression tests for the bugs reprolint's first run found.

Each test pins the *functional* behavior of a fix; the lint-level
guarantee (the finding stays gone) is pinned by
``test_analysis_runner.TestRunLint.test_repo_is_clean_against_checked_in_baseline``.
"""

import threading

import pytest

from repro.core.parallel import FootprintBudget
from repro.disk.backup import DiskBackup
from repro.errors import StateError
from repro.server.leaf import LeafServer, LeafStatus


def make_leaf(shm_namespace, tmp_path, clock):
    return LeafServer(
        "0",
        backup=DiskBackup(tmp_path / "leaf-0"),
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=50,
    )


class TestBudgetRepr:
    def test_repr_reads_consistent_state(self):
        budget = FootprintBudget(100)
        budget.acquire(40)
        text = repr(budget)
        assert "in_flight=40" in text
        assert "peak=40" in text
        budget.release(40)

    def test_repr_does_not_deadlock_under_contention(self):
        budget = FootprintBudget(100)
        stop = threading.Event()

        def churn():
            while not stop.is_set():
                budget.acquire(10)
                budget.release(10)

        thread = threading.Thread(target=churn)
        thread.start()
        try:
            for _ in range(200):
                repr(budget)
        finally:
            stop.set()
            thread.join(timeout=5)
        assert not thread.is_alive()


class TestLeafCrash:
    def test_crash_drops_heap_and_goes_down(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        leaf.add_rows("events", [{"time": 1000, "v": 1.0}])
        leaf.crash()
        assert leaf.status is LeafStatus.DOWN
        assert leaf.used_bytes == 0


class TestExpireStatusGate:
    def test_expire_refused_when_down(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        with pytest.raises(StateError):
            leaf.expire(60)

    def test_expire_works_when_alive(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        now = int(clock.now())
        leaf.add_rows("events", [{"time": now - 3600, "v": 1.0}])
        leaf.leafmap.seal_all()  # expiry only visits sealed blocks
        assert leaf.expire(60) == 1

    def test_crash_during_expiry_cannot_interleave(
        self, shm_namespace, tmp_path, clock
    ):
        """crash() takes the lock now, so a concurrent expire() either
        completes first or sees DOWN — never a half-expired leafmap."""
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.start()
        now = int(clock.now())
        leaf.add_rows("events", [{"time": now - 3600, "v": 1.0}] * 5)
        errors = []

        def expire_loop():
            for _ in range(20):
                try:
                    leaf.expire(60)
                except StateError:
                    return

        def crash_late():
            leaf.crash()

        expirer = threading.Thread(target=expire_loop)
        crasher = threading.Thread(target=crash_late)
        expirer.start()
        crasher.start()
        expirer.join(timeout=10)
        crasher.join(timeout=10)
        assert not errors
        assert leaf.status is LeafStatus.DOWN
        assert leaf.used_bytes == 0
