"""Tests for table statistics."""

from repro.columnstore.stats import format_table_stats, table_stats
from repro.columnstore.table import Table
from repro.types import ColumnType
from repro.util.clock import ManualClock
from repro.workloads import service_requests


def make_table(rows=300):
    table = Table("service_requests", clock=ManualClock(0.0), rows_per_block=100)
    table.add_rows(service_requests(rows))
    table.seal_buffer()
    return table


class TestTableStats:
    def test_counts_and_range(self):
        table = make_table()
        stats = table_stats(table)
        assert stats.row_count == 300
        assert stats.block_count == 3
        assert stats.buffered_rows == 0
        assert stats.min_time is not None and stats.max_time >= stats.min_time
        assert stats.compressed_bytes == table.sealed_nbytes

    def test_per_column_breakdown(self):
        stats = table_stats(make_table())
        names = {column.name for column in stats.columns}
        assert "time" in names and "endpoint" in names
        time_column = next(c for c in stats.columns if c.name == "time")
        assert time_column.ctype is ColumnType.INT64
        # small 100-row blocks carry fixed RBC header overhead;
        # the ratio still clears 5x (30x+ at production block sizes)
        assert time_column.compression_ratio > 5

    def test_overall_ratio_reflects_monitoring_shape(self):
        stats = table_stats(make_table())
        assert stats.compression_ratio > 3

    def test_empty_table(self):
        table = Table("empty", clock=ManualClock(0.0))
        stats = table_stats(table)
        assert stats.row_count == 0
        assert stats.block_count == 0
        assert stats.min_time is None
        assert stats.compression_ratio == 1.0

    def test_buffered_only_table(self):
        table = Table("buffered", clock=ManualClock(0.0), rows_per_block=1000)
        table.add_rows({"time": i} for i in range(10))
        stats = table_stats(table)
        assert stats.row_count == 10
        assert stats.buffered_rows == 10
        assert stats.block_count == 0

    def test_format_contains_key_lines(self):
        report = format_table_stats(table_stats(make_table()))
        assert "service_requests" in report
        assert "row blocks" in report
        assert "time range" in report
        assert "INT64" in report
