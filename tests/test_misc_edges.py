"""Edge cases across modules that no other file pins down."""

import pytest

from repro.compression.lzs import lz_compress, lz_decompress


class TestLzWindow:
    def test_match_beyond_window_is_not_referenced(self):
        """A repeat farther back than the 64 KiB window must still
        round-trip (stored as literals, not a bad reference)."""
        unique = bytes(range(256)) * 300  # ~76 KiB of filler
        data = b"NEEDLE-PATTERN-12345" + unique + b"NEEDLE-PATTERN-12345"
        assert lz_decompress(lz_compress(data)) == data

    def test_window_edge_match_roundtrips(self):
        filler = b"\x01\x02\x03\x04\x05\x06\x07" * 9000  # ~63 KiB
        data = b"HEADERXYZ" + filler + b"HEADERXYZ"
        assert lz_decompress(lz_compress(data)) == data


class TestTailerAtLeastOnce:
    def test_cursor_only_advances_after_delivery(self, shm_namespace, tmp_path, clock):
        """If a leaf dies mid-send, the batch is re-read: nothing is
        acknowledged before add_rows returns."""
        import random

        from repro.disk.backup import DiskBackup
        from repro.errors import StateError
        from repro.ingest.scribe import ScribeLog
        from repro.ingest.tailer import Tailer
        from repro.server.leaf import LeafServer

        leaf = LeafServer(
            "x", backup=DiskBackup(tmp_path / "x"), namespace=shm_namespace,
            clock=clock, rows_per_block=64,
        )
        leaf.start()
        scribe = ScribeLog()
        scribe.append("t", [{"time": i} for i in range(10)])
        tailer = Tailer(
            scribe, "t", "t", [leaf], batch_rows=10, rng=random.Random(0), clock=clock
        )
        leaf.crash()
        # choose_leaf settles on nobody -> RoutingError; cursor unmoved.
        from repro.errors import RoutingError

        with pytest.raises(RoutingError):
            tailer.pump_once()
        assert tailer.backlog == 10
        leaf.start()
        assert tailer.pump_once() == 10
        assert tailer.backlog == 0


class TestSimBreakdown:
    def test_disk_breakdown_fields(self):
        from repro.sim import paper_profile, simulate_leaf_restart

        breakdown = simulate_leaf_restart(paper_profile(), "disk", 1)
        assert breakdown.copy_out_seconds == 0.0
        assert breakdown.read_seconds > 0 and breakdown.translate_seconds > 0
        assert breakdown.total_seconds == pytest.approx(
            breakdown.read_seconds
            + breakdown.translate_seconds
            + breakdown.overhead_seconds
        )

    def test_shm_breakdown_fields(self):
        from repro.sim import paper_profile, simulate_leaf_restart

        breakdown = simulate_leaf_restart(paper_profile(), "shm", 1)
        assert breakdown.read_seconds == 0.0
        assert breakdown.copy_out_seconds > 0 and breakdown.copy_in_seconds > 0


class TestDeployEdges:
    def test_ingest_without_running_leaves_raises(self, shm_namespace, tmp_path):
        from repro.cluster.deploy import ProcessDeployment

        deployment = ProcessDeployment(tmp_path, 1, namespace=shm_namespace)
        with pytest.raises(RuntimeError):
            deployment.ingest("t", [{"time": 1}])

    def test_bad_batch_fraction(self, shm_namespace, tmp_path):
        from repro.cluster.deploy import ProcessDeployment

        deployment = ProcessDeployment(tmp_path, 1, namespace=shm_namespace)
        with pytest.raises(ValueError):
            deployment.rolling_upgrade("v2", batch_fraction=0)


class TestDashboardEdges:
    def test_single_sample_mean(self):
        from repro.cluster.dashboard import Dashboard

        dashboard = Dashboard()
        dashboard.record(0.0, 5, 0, 0, 0.9)
        assert dashboard.mean_availability() == 0.9
        assert dashboard.duration == 0.0

    def test_empty_dashboard(self):
        from repro.cluster.dashboard import Dashboard

        dashboard = Dashboard()
        assert dashboard.mean_availability() == 1.0
        assert dashboard.min_availability == 1.0


class TestScribeEdges:
    def test_independent_categories(self):
        from repro.ingest.scribe import ScribeLog

        scribe = ScribeLog()
        scribe.append("a", [{"time": 1}])
        scribe.append("b", [{"time": 2}, {"time": 3}])
        assert scribe.end_offset("a") == 1
        assert scribe.end_offset("b") == 2
        assert sorted(scribe.categories) == ["a", "b"]

    def test_cursor_past_trim_skips_forward(self):
        from repro.ingest.scribe import ScribeLog

        scribe = ScribeLog(retention_per_category=2)
        scribe.append("a", [{"time": i} for i in range(5)])
        rows, cursor = scribe.read("a", 1)  # older than retention
        assert [r["time"] for r in rows] == [3, 4]
        assert cursor == 5
