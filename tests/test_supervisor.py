"""The supervisor loop: respawn-on-request, version rewriting, limits.

The loop logic is tested with a stubbed ``Popen`` (no real workers);
the end-to-end supervised upgrade handoff — new pid, new version, data
through shared memory — lives in ``test_process_deployment.py``-style
integration tests at the bottom.
"""

from __future__ import annotations

import pytest

from repro.server import supervisor
from repro.server.process_client import LeafProcess, LeafProcessConfig
from repro.server.restart_manager import (
    RESTART_EXIT_CODE,
    check_restart,
    request_restart,
)


class FakeProc:
    def __init__(self, code: int):
        self._code = code

    def wait(self) -> int:
        return self._code


def stub_popen(monkeypatch, codes):
    """Replace Popen with a stub yielding ``codes``; returns the argv log."""
    spawned: list[list[str]] = []
    remaining = list(codes)

    def fake_popen(argv):
        spawned.append(list(argv))
        return FakeProc(remaining.pop(0))

    monkeypatch.setattr(supervisor.subprocess, "Popen", fake_popen)
    return spawned


class TestSuperviseLoop:
    def test_exit_code_triggers_respawn(self, monkeypatch, tmp_path):
        spawned = stub_popen(
            monkeypatch, [RESTART_EXIT_CODE, RESTART_EXIT_CODE, 3]
        )
        log: list[str] = []
        code = supervisor.supervise(
            ["--leaf-id", "x"], restart_dir=str(tmp_path), announce=log.append
        )
        assert code == 3  # the non-restart exit becomes the supervisor's
        assert len(spawned) == 3
        assert len(log) == 2
        for argv in spawned:
            assert argv[1:3] == ["-m", "repro.server.process_worker"]
            assert argv[3:] == ["--leaf-id", "x"]

    def test_request_file_triggers_respawn_even_on_clean_exit(
        self, monkeypatch, tmp_path
    ):
        spawned = stub_popen(monkeypatch, [0, 0])
        request_restart(tmp_path, version="v9", at=1_390_000_000)
        code = supervisor.supervise(
            ["--leaf-id", "x", "--version", "v1"], restart_dir=str(tmp_path)
        )
        assert code == 0
        assert len(spawned) == 2
        # The respawn picked up the requested version and cleared the file.
        assert spawned[1][-2:] == ["--version", "v9"]
        assert not check_restart(tmp_path)

    def test_max_restarts_breaks_a_respawn_loop(self, monkeypatch, tmp_path):
        spawned = stub_popen(monkeypatch, [RESTART_EXIT_CODE] * 4)
        code = supervisor.supervise(
            ["--leaf-id", "x"], restart_dir=str(tmp_path), max_restarts=3
        )
        assert code == RESTART_EXIT_CODE  # gave up mid-request
        assert len(spawned) == 4  # the original + 3 respawns

    def test_main_strips_the_double_dash(self, monkeypatch, tmp_path):
        seen = {}

        def fake_supervise(worker_args, restart_dir, max_restarts, announce):
            seen.update(
                worker_args=worker_args,
                restart_dir=restart_dir,
                max_restarts=max_restarts,
            )
            return 0

        monkeypatch.setattr(supervisor, "supervise", fake_supervise)
        code = supervisor.main(
            ["--restart-dir", str(tmp_path), "--", "--leaf-id", "x"]
        )
        assert code == 0
        assert seen["worker_args"] == ["--leaf-id", "x"]
        assert seen["restart_dir"] == str(tmp_path)
        assert seen["max_restarts"] == 16


@pytest.mark.slow
class TestSupervisedHandoff:
    """E14's deployment story end to end: a real supervisor, a real
    worker, a genuine old-process → new-process upgrade with the data
    riding shared memory."""

    def test_exit_mode_respawns_with_new_pid_and_version(
        self, shm_namespace, tmp_path
    ):
        leaf = LeafProcess(
            LeafProcessConfig(
                leaf_id="sup",
                backup_dir=tmp_path / "sup",
                namespace=shm_namespace,
                rows_per_block=256,
                supervised=True,
            ),
            request_timeout=60.0,
        )
        leaf.spawn()
        leaf.add_rows("events", [{"time": i, "v": float(i)} for i in range(300)])
        before = leaf.status()
        digest = leaf.digest()

        result = leaf.restart(mode="exit", version="v2")
        assert result["handoff"]["used_shm"] is True
        assert result["start"]["method"] == "shared_memory"
        assert result["start"]["rows"] == 300

        after = leaf.status()
        assert after["pid"] != before["pid"], "supervisor must spawn a new process"
        assert after["incarnation"] != before["incarnation"]
        assert after["version"] == "v2"
        assert leaf.digest() == digest, "upgrade must not change the data"
        leaf.shutdown(use_shm=False)

    def test_exit_mode_requires_a_supervisor(self, shm_namespace, tmp_path):
        leaf = LeafProcess(
            LeafProcessConfig(
                leaf_id="nosup",
                backup_dir=tmp_path / "nosup",
                namespace=shm_namespace,
                supervised=False,
            )
        )
        with pytest.raises(Exception, match="supervis"):
            leaf.restart(mode="exit")
