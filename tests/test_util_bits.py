"""Tests for bit packing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.util.bits import pack_uints, required_bit_width, unpack_uints


class TestRequiredBitWidth:
    def test_zero_needs_one_bit(self):
        assert required_bit_width(0) == 1

    def test_powers_of_two(self):
        assert required_bit_width(1) == 1
        assert required_bit_width(2) == 2
        assert required_bit_width(255) == 8
        assert required_bit_width(256) == 9

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            required_bit_width(-1)


class TestPackUnpack:
    def test_empty(self):
        assert pack_uints(np.array([], dtype=np.uint64), 5) == b""
        assert unpack_uints(b"", 5, 0).size == 0

    def test_one_bit_values(self):
        values = np.array([1, 0, 1, 1, 0, 0, 0, 1, 1], dtype=np.uint64)
        packed = pack_uints(values, 1)
        assert len(packed) == 2  # 9 bits -> 2 bytes
        assert unpack_uints(packed, 1, 9).tolist() == values.tolist()

    def test_dense_packing_size(self):
        values = np.arange(100, dtype=np.uint64)
        width = required_bit_width(99)  # 7
        packed = pack_uints(values, width)
        assert len(packed) == (100 * 7 + 7) // 8

    def test_value_too_wide_rejected(self):
        with pytest.raises(ValueError):
            pack_uints(np.array([8], dtype=np.uint64), 3)

    def test_full_64_bit(self):
        values = np.array([2**64 - 1, 0, 2**63], dtype=np.uint64)
        packed = pack_uints(values, 64)
        assert unpack_uints(packed, 64, 3).tolist() == values.tolist()

    def test_bad_width_rejected(self):
        for width in (0, 65):
            with pytest.raises(ValueError):
                pack_uints(np.array([0], dtype=np.uint64), width)
            with pytest.raises(ValueError):
                unpack_uints(b"\x00" * 100, width, 1)

    def test_short_payload_raises_corruption(self):
        with pytest.raises(CorruptionError):
            unpack_uints(b"\x00", 8, 5)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**40 - 1), max_size=200),
    )
    def test_roundtrip_property(self, values):
        arr = np.array(values, dtype=np.uint64)
        width = required_bit_width(int(arr.max()) if values else 0)
        packed = pack_uints(arr, width)
        assert unpack_uints(packed, width, len(values)).tolist() == values
