"""The process-pool restart backend: forked workers, one GIL per stream.

The invariants of the thread backend must survive the move across
address spaces: restart equivalence, valid-bit-last, the machine-wide
footprint bound (now via :class:`SharedFootprintBudget`), and failure
isolation — including the failure mode threads cannot have, a worker
process SIGKILLed mid-copy.
"""

from __future__ import annotations

import os
import signal

import pytest

from repro.core.engine import RecoveryMethod
from repro.core.parallel import FootprintBudget, ParallelRestartCoordinator
from repro.core.procpool import partition_leaves, run_process_phase
from repro.core.sharedbudget import SharedFootprintBudget
from repro.errors import CorruptionError, ReproError, WorkerCrashedError
from tests.test_core_parallel import make_machine, max_segment_bytes, sealed_bytes

pytestmark = pytest.mark.slow  # every test forks real worker processes

LEAVES = 4


def make_process_machine(shm_namespace, tmp_path, clock, leaves=LEAVES):
    machine = make_machine(shm_namespace, tmp_path, clock, leaves=leaves)
    # The crash paths recover from disk; make the backup current first.
    for leaf in machine.leaves:
        leaf.sync_to_disk()
    return machine


class TestPartition:
    def test_round_robin_striping(self):
        assert partition_leaves(10, 3) == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_never_more_workers_than_leaves(self):
        assert partition_leaves(3, 8) == [[0], [1], [2]]

    def test_single_worker_takes_everything(self):
        assert partition_leaves(4, 1) == [[0, 1, 2, 3]]


class TestProcessBackendEquivalence:
    def test_full_cycle_preserves_every_leaf(self, shm_namespace, tmp_path, clock):
        machine = make_process_machine(shm_namespace, tmp_path, clock)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        report = machine.restart_all(workers=2, backend="process")
        assert report.backend == "process"
        assert report.failures == []
        assert all(
            o.report.method is RecoveryMethod.SHARED_MEMORY for o in report.restore
        )
        assert all(o.worker_pid not in (None, os.getpid()) for o in report.restore)
        for leaf, snapshot in zip(machine.leaves, snapshots):
            assert leaf.is_alive
            assert leaf.leafmap.snapshot_rows() == snapshot
            assert not leaf.engine.shm_state_exists()

    def test_two_consecutive_cycles(self, shm_namespace, tmp_path, clock):
        """The coordinator's leaf objects must stay consistent across
        repeated process-backend cycles (manifest reloads, heap
        accounting, shm namespace all reconciled)."""
        machine = make_process_machine(shm_namespace, tmp_path, clock, leaves=2)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        for _ in range(2):
            report = machine.restart_all(workers=2, backend="process")
            assert report.failures == []
            for leaf, snapshot in zip(machine.leaves, snapshots):
                assert leaf.leafmap.snapshot_rows() == snapshot

    def test_restart_window_excludes_adoption(self, shm_namespace, tmp_path, clock):
        machine = make_process_machine(shm_namespace, tmp_path, clock, leaves=2)
        report = machine.restart_all(workers=2, backend="process")
        assert report.adopt_seconds > 0.0
        assert report.restart_window_seconds == pytest.approx(
            report.shutdown_seconds + report.restore_seconds
        )
        assert report.wall_seconds == pytest.approx(
            report.restart_window_seconds + report.adopt_seconds
        )


class TestSharedBudgetAcrossWorkers:
    def test_workers_queue_against_one_budget(self, shm_namespace, tmp_path, clock):
        machine = make_process_machine(shm_namespace, tmp_path, clock)
        data_bytes = sealed_bytes(machine)
        limit = max(max_segment_bytes(machine), data_bytes // 3)
        budget = SharedFootprintBudget(limit)
        coordinator = ParallelRestartCoordinator(
            machine.leaves, budget=budget, backend="process"
        )
        report = coordinator.restart_all()
        assert report.failures == []
        # The peak is visible in the parent's shared array — proof the
        # forked workers really acquired against this budget object.
        assert 0 < budget.peak_in_flight <= limit
        assert report.peak_in_flight_bytes == budget.peak_in_flight
        assert budget.in_flight == 0

    def test_thread_budget_is_rejected(self, shm_namespace, tmp_path, clock):
        machine = make_process_machine(shm_namespace, tmp_path, clock, leaves=2)
        with pytest.raises(ValueError, match="SharedFootprintBudget"):
            ParallelRestartCoordinator(
                machine.leaves, budget=FootprintBudget(1024), backend="process"
            )

    def test_int_budget_builds_the_shared_class(
        self, shm_namespace, tmp_path, clock
    ):
        machine = make_process_machine(shm_namespace, tmp_path, clock, leaves=2)
        coordinator = ParallelRestartCoordinator(
            machine.leaves, budget=1 << 20, backend="process"
        )
        assert isinstance(coordinator.budget, SharedFootprintBudget)
        report = coordinator.restart_all()
        assert report.failures == []


class TestWorkerFailureIsolation:
    def test_marshalled_error_does_not_poison_siblings(
        self, shm_namespace, tmp_path, clock
    ):
        """A leaf whose shm backup raises in the worker comes back as a
        failed outcome with the marshalled error; its siblings shut down
        normally and everyone recovers (the victim from disk)."""
        machine = make_process_machine(shm_namespace, tmp_path, clock)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        victim = machine.leaves[1]

        def explode(point: str) -> None:
            if point == "backup:table":
                raise CorruptionError("injected worker-side backup failure")

        victim.engine._fault = explode
        coordinator = ParallelRestartCoordinator(
            machine.leaves, max_workers=2, backend="process"
        )
        outcomes = coordinator.shutdown_all()
        by_leaf = {o.leaf_id: o for o in outcomes}
        bad = by_leaf[victim.leaf_id]
        assert not bad.ok
        assert isinstance(bad.error, ReproError)
        assert "CorruptionError" in str(bad.error)
        for leaf in machine.leaves:
            if leaf is not victim:
                assert by_leaf[leaf.leaf_id].ok
        # The fault hook died with the workers; the parent's copy of the
        # victim recovers from its synced disk backup.
        victim.engine._fault = lambda point: None
        start = coordinator.start_all()
        assert all(o.ok for o in start)
        for leaf, snapshot in zip(machine.leaves, snapshots):
            assert leaf.leafmap.snapshot_rows() == snapshot
            assert not leaf.engine.shm_state_exists()

    def test_sigkill_mid_restore_falls_down_the_ladder(
        self, shm_namespace, tmp_path, clock
    ):
        """The satellite scenario: a worker is SIGKILLed mid-copy while
        holding a budget reservation.  Its leaf must surface a failed
        outcome carrying WorkerCrashedError, the reservation must return
        to the shared budget, and adoption must walk the leaf down the
        recovery ladder to disk — with no shm leak (the namespace
        fixture asserts that at teardown)."""
        machine = make_process_machine(shm_namespace, tmp_path, clock)
        snapshots = [leaf.leafmap.snapshot_rows() for leaf in machine.leaves]
        victim = machine.leaves[2]

        def die(point: str) -> None:
            # Fires after budget.acquire, before the copy: the worker
            # dies holding its in-flight reservation.
            if point == "restore:in_window":
                os.kill(os.getpid(), signal.SIGKILL)

        victim.engine._fault = die
        budget = SharedFootprintBudget(sealed_bytes(machine))
        coordinator = ParallelRestartCoordinator(
            machine.leaves, budget=budget, backend="process"
        )
        outcomes = coordinator.shutdown_all()
        assert all(o.ok for o in outcomes)

        # The restore workers fork from the parent and inherit the hook
        # (that is how the SIGKILL reaches the right worker).
        outcomes = coordinator.restore_all()
        # Disarm before adoption runs restore in *this* process.
        victim.engine._fault = lambda point: None
        by_leaf = {o.leaf_id: o for o in outcomes}
        bad = by_leaf[victim.leaf_id]
        assert not bad.ok
        assert isinstance(bad.error, WorkerCrashedError)
        assert str(bad.worker_pid) in str(bad.error)
        for leaf in machine.leaves:
            if leaf is not victim:
                assert by_leaf[leaf.leaf_id].ok
        # The corpse's reservation was reclaimed, not leaked.
        assert budget.in_flight == 0

        adopted = coordinator.adopt_all()
        assert all(o.ok for o in adopted)
        by_leaf = {o.leaf_id: o for o in adopted}
        # Invalidate-first means the victim's valid bit was down when the
        # worker died, so adoption goes straight to the disk-snapshot
        # tier (no shm attempt, hence no fell_back_to_disk flag).
        assert by_leaf[victim.leaf_id].report.method is RecoveryMethod.DISK_SNAPSHOT
        assert "disk_snapshot_recovery" in by_leaf[victim.leaf_id].report.leaf_states
        for leaf in machine.leaves:
            if leaf is not victim:
                assert by_leaf[leaf.leaf_id].report.method is (
                    RecoveryMethod.SHARED_MEMORY
                )
        for leaf, snapshot in zip(machine.leaves, snapshots):
            assert leaf.is_alive
            assert leaf.leafmap.snapshot_rows() == snapshot
            assert not leaf.engine.shm_state_exists()


class TestRunProcessPhaseContract:
    def test_unknown_phase_rejected(self, shm_namespace, tmp_path, clock):
        machine = make_process_machine(shm_namespace, tmp_path, clock, leaves=1)
        with pytest.raises(ValueError, match="unknown process phase"):
            run_process_phase(machine.leaves, "reticulate", max_workers=1)

    def test_budget_cleared_from_engines_after_phase(
        self, shm_namespace, tmp_path, clock
    ):
        machine = make_process_machine(shm_namespace, tmp_path, clock, leaves=2)
        budget = SharedFootprintBudget(1 << 20)
        coordinator = ParallelRestartCoordinator(
            machine.leaves, budget=budget, backend="process"
        )
        coordinator.restart_all()
        for leaf in machine.leaves:
            assert leaf.engine.budget is None
