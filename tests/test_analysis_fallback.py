"""Fixture tests for the fallback-routing checker (RL5xx)."""

from pathlib import Path

from repro.analysis.checkers import fallback
from repro.analysis.loader import load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(name):
    # Fixtures live outside the default core/disk scope.
    return fallback.check(load_files([FIXTURES / name]), scope_prefixes=())


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.line, f.symbol) for f in run("fallback_bad.py")}
        assert found == {
            ("RL501", 7, "recover_tier:except:Exception"),
            ("RL502", 14, "recover_quietly:except:ValueError"),
            ("RL503", 21, "recover_rows:raise:RuntimeError"),
        }


class TestGoodFixture:
    def test_silent(self):
        """Re-raise-typed, fell_back record + replay, and used exc all
        count as routing."""
        assert run("fallback_good.py") == []


class TestScope:
    def test_default_scope_skips_out_of_tier_files(self):
        modules = load_files([FIXTURES / "fallback_bad.py"])
        assert fallback.check(modules) == []


class TestRealTree:
    def test_recovery_tiers_route_or_are_baselined(self, repo_root):
        """engine.py and recovery.py route every broad handler; the one
        intentional swallow (backup.wipe teardown) is the only finding."""
        modules = load_files(
            [
                repo_root / "src/repro/core/engine.py",
                repo_root / "src/repro/disk/recovery.py",
                repo_root / "src/repro/disk/backup.py",
            ],
            root=repo_root,
        )
        findings = fallback.check(modules)
        assert [(f.code, f.symbol) for f in findings] == [
            ("RL502", "wipe:except:OSError")
        ]
