"""Tests for the disk backup manager and legacy recovery."""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.disk.recovery import recover_leafmap, recover_table_rows
from repro.errors import RecoveryError
from repro.util.clock import ManualClock


def make_map(rows=30):
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
    table = leafmap.get_or_create("events")
    table.add_rows({"time": 100 + i, "host": f"h{i % 3}"} for i in range(rows))
    return leafmap


class TestSync:
    def test_first_sync_writes_everything(self, backup):
        leafmap = make_map()
        assert backup.sync_leafmap(leafmap) == 30
        assert backup.synced_rows("events") == 30

    def test_sync_is_incremental(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        assert backup.sync_leafmap(leafmap) == 0
        leafmap.get_table("events").add_rows([{"time": 200}])
        assert backup.sync_leafmap(leafmap) == 1

    def test_sync_after_expiry_without_new_rows(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        leafmap.get_table("events").expire_before(110)
        backup.record_expiry("events", 110)
        assert backup.sync_leafmap(leafmap) == 0

    def test_expiry_watermark_never_regresses(self, backup):
        backup.record_expiry("events", 100)
        backup.record_expiry("events", 50)
        assert backup.expire_cutoff("events") == 100


class TestRecovery:
    def test_roundtrip_equality(self, backup):
        leafmap = make_map()
        leafmap.get_or_create("empty_buffered").add_rows([{"time": 5, "x": 1.0}])
        backup.sync_leafmap(leafmap)
        recovered = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        total = recover_leafmap(backup, recovered)
        assert total == 31
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()

    def test_recovery_applies_expiry_watermark(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        leafmap.get_table("events").expire_before(110)
        backup.record_expiry("events", 110)
        recovered = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        recover_leafmap(backup, recovered)
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()
        assert min(r["time"] for r in recovered.get_table("events").to_rows()) >= 110

    def test_recovery_requires_empty_map(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        with pytest.raises(RecoveryError):
            recover_leafmap(backup, leafmap)

    def test_incremental_sync_after_recovery(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        recovered = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        recover_leafmap(backup, recovered)
        recovered.get_table("events").add_rows([{"time": 999}])
        assert backup.sync_leafmap(recovered) == 1
        # And a second recovery sees the appended row too.
        second = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        recover_leafmap(backup, second)
        assert second.get_table("events").row_count == 31

    def test_missing_table_file_yields_nothing(self, backup):
        assert list(recover_table_rows(backup, "ghost")) == []

    def test_recovery_of_empty_backup(self, backup):
        recovered = LeafMap(clock=ManualClock(0.0))
        assert recover_leafmap(backup, recovered) == 0
        assert len(recovered) == 0


class TestMaintenance:
    def test_drop_table(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        assert backup.table_file("events").exists()
        backup.drop_table("events")
        assert not backup.table_file("events").exists()
        assert "events" not in backup.table_names

    def test_wipe(self, backup):
        backup.sync_leafmap(make_map())
        backup.wipe()
        assert backup.table_names == []

    def test_weird_table_names_are_filesystem_safe(self, backup):
        leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        leafmap.get_or_create("weird/../name with spaces").add_rows([{"time": 1}])
        backup.sync_leafmap(leafmap)
        recovered = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        recover_leafmap(backup, recovered)
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()
        # The file must live inside the backup directory.
        assert backup.table_file("weird/../name with spaces").parent == backup.directory

    def test_manifest_survives_manager_restart(self, backup, tmp_path):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        reopened = DiskBackup(backup.directory)
        assert reopened.synced_rows("events") == 30


class TestSnapshots:
    """The shm-format snapshot side of sync points (paper §6)."""

    def test_sealed_sync_writes_fresh_snapshot(self, backup):
        leafmap = make_map()
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        assert backup.snapshot_path("events").exists()
        assert backup.snapshot_generation("events") == backup.sync_generation(
            "events"
        )
        assert backup.snapshot_valid("events")
        assert backup.snapshots_ready()

    def test_buffered_sync_leaves_snapshot_stale(self, backup):
        """A snapshot holds sealed blocks only; trusting one written with
        buffered rows outstanding would drop those rows."""
        leafmap = make_map()  # 30 rows seal evenly into 3 blocks...
        leafmap.get_table("events").add_rows([{"time": 999}])  # ...plus 1 buffered
        backup.sync_leafmap(leafmap)
        assert not backup.snapshot_valid("events")
        assert not backup.snapshots_ready()

    def test_later_sync_invalidates_then_refreshes(self, backup):
        leafmap = make_map()
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        gen_before = backup.snapshot_generation("events")
        leafmap.get_table("events").add_rows([{"time": 500}])
        backup.sync_leafmap(leafmap)  # buffered -> sync_gen moved past snapshot
        assert backup.sync_generation("events") > backup.snapshot_generation(
            "events"
        )
        assert not backup.snapshot_valid("events")
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        assert backup.snapshot_valid("events")
        assert backup.snapshot_generation("events") > gen_before

    def test_sync_gen_bumps_on_every_synced_change(self, backup):
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        gen = backup.sync_generation("events")
        backup.sync_leafmap(leafmap)  # no change -> no bump
        assert backup.sync_generation("events") == gen
        leafmap.get_table("events").add_rows([{"time": 800}])
        backup.sync_leafmap(leafmap)
        assert backup.sync_generation("events") == gen + 1

    def test_empty_table_gets_a_trusted_snapshot(self, backup):
        leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        leafmap.get_or_create("bare")
        backup.sync_leafmap(leafmap)
        assert backup.snapshot_valid("bare")
        assert backup.snapshots_ready()

    def test_snapshots_can_be_disabled(self, tmp_path):
        backup = DiskBackup(tmp_path / "nosnap", snapshots=False)
        leafmap = make_map()
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        assert not backup.snapshot_path("events").exists()
        assert not backup.snapshots_ready()

    def test_record_expiry_keeps_snapshot_trusted(self, backup):
        """Expiry is a manifest watermark re-applied after recovery; it
        must not force a snapshot rewrite."""
        leafmap = make_map()
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        backup.record_expiry("events", 110)
        assert backup.snapshot_valid("events")

    def test_drop_and_wipe_remove_snapshot_files(self, backup):
        leafmap = make_map()
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        snapshot = backup.snapshot_path("events")
        assert snapshot.exists()
        backup.drop_table("events")
        assert not snapshot.exists()
        leafmap2 = make_map()
        leafmap2.seal_all()
        backup.sync_leafmap(leafmap2)
        backup.wipe()
        assert not backup.snapshot_dir.exists()

    def test_old_manifest_without_generation_keys(self, backup):
        """A manifest from a pre-snapshot build must read as 'no trusted
        snapshot', never crash."""
        leafmap = make_map()
        backup.sync_leafmap(leafmap)
        import json

        manifest_path = backup.directory / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        for entry in manifest.values():
            entry.pop("sync_gen", None)
            entry.pop("snapshot_gen", None)
        manifest_path.write_text(json.dumps(manifest))
        reopened = DiskBackup(backup.directory)
        assert reopened.sync_generation("events") == 0
        assert not reopened.snapshot_valid("events")
        assert not reopened.snapshots_ready()
        # And the next sealed sync upgrades it to a trusted snapshot.
        leafmap.seal_all()
        reopened.sync_leafmap(leafmap)
        assert reopened.snapshots_ready()

    def test_snapshot_state_survives_manager_restart(self, backup):
        leafmap = make_map()
        leafmap.seal_all()
        backup.sync_leafmap(leafmap)
        reopened = DiskBackup(backup.directory)
        assert reopened.snapshots_ready()
        assert reopened.snapshot_generation("events") == backup.snapshot_generation(
            "events"
        )
