"""Tests for the command line interface."""

import pytest

from repro.cli import main
from repro.core.engine import RestartEngine

from tests.conftest import make_leafmap


class TestSimRollover:
    def test_shm_rollover(self, capsys):
        assert main(["sim-rollover", "--strategy", "shm", "--machines", "20"]) == 0
        out = capsys.readouterr().out
        assert "shm rollover of 160 leaves" in out
        assert "availability" in out

    def test_dashboard_flag(self, capsys):
        main(["sim-rollover", "--machines", "10", "--dashboard", "4"])
        out = capsys.readouterr().out
        assert "avail  bar" in out

    def test_leaves_per_machine_override(self, capsys):
        main(["sim-rollover", "--machines", "10", "--leaves-per-machine", "2"])
        assert "20 leaves" in capsys.readouterr().out


class TestAvailability:
    def test_paper_number(self, capsys):
        assert main(["availability", "--rollover-hours", "12"]) == 0
        out = capsys.readouterr().out
        assert "92.86%" in out

    def test_cadence(self, capsys):
        main(["availability", "--rollover-hours", "1", "--per-week", "3"])
        assert "3.0/week" in capsys.readouterr().out


class TestInspectShm:
    def test_absent_leaf_exits_nonzero(self, shm_namespace, capsys):
        code = main(["inspect-shm", "--namespace", shm_namespace, "--leaf-id", "9"])
        assert code == 1
        assert "no shared memory state" in capsys.readouterr().out

    def test_present_leaf(self, shm_namespace, clock, capsys):
        engine = RestartEngine("7", namespace=shm_namespace, clock=clock)
        engine.backup_to_shm(make_leafmap(clock))
        code = main(["inspect-shm", "--namespace", shm_namespace, "--leaf-id", "7"])
        assert code == 0
        out = capsys.readouterr().out
        assert "valid bit: SET" in out
        engine.discard_shm()


class TestBenchRestart:
    def test_runs_and_reports_speedup(self, capsys):
        assert main(["bench-restart", "--rows", "2000"]) == 0
        out = capsys.readouterr().out
        assert "restore from shared memory" in out
        assert "faster" in out


class TestBenchQuery:
    def test_reports_speedups_and_cache(self, capsys):
        assert main(["bench-query", "--rows", "3000", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "grouped-aggregation" in out
        assert "vectorized cold" in out
        assert "cache:" in out

    def test_json_output(self, tmp_path, capsys):
        import json

        path = tmp_path / "BENCH_e13.json"
        assert main(
            ["bench-query", "--rows", "3000", "--repeats", "1", "--json", str(path)]
        ) == 0
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "E13"
        assert payload["rows"] == 3000
        assert payload["min_speedup"] > 0
        assert {q["query"] for q in payload["queries"]} == {
            "grouped-aggregation",
            "filtered-count",
            "time-window-buckets",
        }


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["no-such-command"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])
