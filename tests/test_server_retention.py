"""Tests for retention policies, the aggregation tree, and rendering."""

import pytest

from repro.disk.backup import DiskBackup
from repro.query.aggregate import merge_leaf_results
from repro.query.execute import execute_on_leaf
from repro.query.query import Aggregation, Query
from repro.query.render import render_table, render_timeseries
from repro.server.aggregator import Aggregator, AggregatorTree
from repro.server.leaf import LeafServer
from repro.server.retention import (
    RetentionEnforcer,
    RetentionPolicy,
)


def make_leaf(shm_namespace, tmp_path, clock, leaf_id="0"):
    leaf = LeafServer(
        leaf_id,
        backup=DiskBackup(tmp_path / f"leaf-{leaf_id}"),
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=20,
    )
    leaf.start()
    return leaf


class TestRetentionPolicy:
    def test_needs_a_limit(self):
        with pytest.raises(ValueError):
            RetentionPolicy()

    def test_limits_validated(self):
        with pytest.raises(ValueError):
            RetentionPolicy(max_age_seconds=0)
        with pytest.raises(ValueError):
            RetentionPolicy(max_bytes_per_leaf=-1)


class TestEnforcement:
    def test_age_limit_drops_and_records_watermark(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        now = int(clock.now())
        leaf.add_rows("events", [{"time": now - 5000 + i} for i in range(40)])
        leaf.add_rows("events", [{"time": now - 10 + i} for i in range(10)])
        leaf.leafmap.seal_all()
        enforcer = RetentionEnforcer({"events": RetentionPolicy(max_age_seconds=3600)})
        report = enforcer.enforce([leaf])
        assert report.rows_dropped_by_age == 40
        assert leaf.leafmap.row_count == 10
        assert leaf.backup.expire_cutoff("events") == now - 3600

    def test_size_limit_drops_oldest(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.add_rows("big", [{"time": i, "pad": f"x{i % 5}" * 10} for i in range(100)])
        leaf.leafmap.seal_all()
        table = leaf.leafmap.get_table("big")
        limit = table.sealed_nbytes // 2
        enforcer = RetentionEnforcer({"big": RetentionPolicy(max_bytes_per_leaf=limit)})
        report = enforcer.enforce([leaf])
        assert report.rows_dropped_by_size > 0
        assert table.sealed_nbytes <= limit

    def test_default_policy_applies_to_unlisted_tables(
        self, shm_namespace, tmp_path, clock
    ):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        now = int(clock.now())
        leaf.add_rows("anything", [{"time": now - 9999 + i} for i in range(20)])
        leaf.leafmap.seal_all()
        enforcer = RetentionEnforcer(
            default_policy=RetentionPolicy(max_age_seconds=60)
        )
        assert enforcer.enforce([leaf]).rows_dropped == 20

    def test_tables_without_policy_untouched(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        now = int(clock.now())
        leaf.add_rows("keep", [{"time": now - 9999}])
        leaf.leafmap.seal_all()
        enforcer = RetentionEnforcer({"other": RetentionPolicy(max_age_seconds=1)})
        report = enforcer.enforce([leaf])
        assert report.rows_dropped == 0
        assert leaf.leafmap.row_count == 1

    def test_non_alive_leaves_skipped(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        leaf.crash()
        enforcer = RetentionEnforcer(
            default_policy=RetentionPolicy(max_age_seconds=60)
        )
        report = enforcer.enforce([leaf])
        assert report.leaves_skipped == 1

    def test_expiry_survives_disk_recovery(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        now = int(clock.now())
        leaf.add_rows("events", [{"time": now - 5000 + i} for i in range(40)])
        leaf.leafmap.seal_all()
        leaf.sync_to_disk()
        RetentionEnforcer({"events": RetentionPolicy(max_age_seconds=3600)}).enforce(
            [leaf]
        )
        leaf.shutdown(use_shm=False)
        reborn = make_leaf(shm_namespace, tmp_path, clock)
        assert reborn.leafmap.row_count == 0  # the deletions re-applied


class TestAggregatorTree:
    def test_tree_equals_flat_merge(self, shm_namespace, tmp_path, clock):
        """Invariant: associativity — a two-level merge gives exactly
        the flat merge's answer."""
        leaves = [
            make_leaf(shm_namespace, tmp_path, clock, leaf_id=str(i)) for i in range(4)
        ]
        for index, leaf in enumerate(leaves):
            leaf.add_rows(
                "t",
                [{"time": i, "g": f"g{i % 3}", "v": float(i + index)} for i in range(50)],
            )
        query = Query(
            "t",
            aggregations=(Aggregation("count"), Aggregation("p90", "v")),
            group_by=("g",),
        )
        flat = Aggregator(leaves).query(query)
        tree = AggregatorTree(
            [Aggregator(leaves[:2]), Aggregator(leaves[2:])]
        ).query(query)
        assert [(r.group, r.values) for r in flat.rows] == [
            (r.group, r.values) for r in tree.rows
        ]
        assert tree.leaves_total == flat.leaves_total

    def test_tree_partiality_counts_leaves(self, shm_namespace, tmp_path, clock):
        leaves = [
            make_leaf(shm_namespace, tmp_path, clock, leaf_id=str(i)) for i in range(4)
        ]
        leaves[0].add_rows("t", [{"time": 1}])
        leaves[0].crash()
        tree = AggregatorTree([Aggregator(leaves[:2]), Aggregator(leaves[2:])])
        result = tree.query(Query("t"))
        assert result.leaves_responded == 3
        assert result.leaves_total == 4

    def test_empty_tree_rejected(self):
        with pytest.raises(ValueError):
            AggregatorTree([])


class TestRendering:
    def _result(self, query, leafmap):
        execution = execute_on_leaf(leafmap, query)
        return merge_leaf_results(query, [execution.partial], 1)

    def test_render_table(self, clock):
        from repro.columnstore.leafmap import LeafMap

        leafmap = LeafMap(clock=clock, rows_per_block=64)
        leafmap.get_or_create("t").add_rows(
            {"time": i, "g": f"g{i % 2}", "v": float(i)} for i in range(20)
        )
        query = Query(
            "t", aggregations=(Aggregation("count"), Aggregation("avg", "v")),
            group_by=("g",),
        )
        art = render_table(self._result(query, leafmap))
        assert "count(*)" in art and "g0" in art and "g1" in art

    def test_render_table_partial_notice(self):
        from repro.query.query import QueryResult, ResultRow

        result = QueryResult(
            rows=[ResultRow((), {"count(*)": 5})], leaves_responded=1, leaves_total=4
        )
        assert "partial result" in render_table(result)

    def test_render_timeseries(self, clock):
        from repro.columnstore.leafmap import LeafMap

        leafmap = LeafMap(clock=clock, rows_per_block=64)
        leafmap.get_or_create("t").add_rows(
            {"time": 1000 + i, "svc": f"s{i % 2}", "v": float(i % 30)}
            for i in range(240)
        )
        query = Query(
            "t", aggregations=(Aggregation("avg", "v"),),
            group_by=("svc",), bucket_seconds=60,
        )
        art = render_timeseries(self._result(query, leafmap), "avg(v)")
        lines = art.splitlines()
        assert len(lines) == 2  # one sparkline per service
        assert all("|" in line for line in lines)

    def test_render_timeseries_requires_buckets(self, clock):
        from repro.columnstore.leafmap import LeafMap

        leafmap = LeafMap(clock=clock, rows_per_block=64)
        leafmap.get_or_create("t").add_rows([{"time": 1, "g": "x"}])
        query = Query("t", group_by=("g",))
        with pytest.raises(ValueError):
            render_timeseries(self._result(query, leafmap), "count(*)")

    def test_render_empty(self):
        from repro.query.query import QueryResult

        assert render_table(QueryResult()) == "(empty result)"
        assert render_timeseries(QueryResult(), "x") == "(empty result)"
