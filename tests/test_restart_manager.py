"""The restart-request protocol: file signaling and argv rewriting."""

from __future__ import annotations

from repro.server.restart_manager import (
    RESTART_EXIT_CODE,
    RESTART_FILE,
    check_restart,
    clear_restart,
    read_restart_version,
    request_restart,
    rewrite_version,
)


class TestRequestFile:
    def test_request_check_clear_roundtrip(self, tmp_path):
        assert not check_restart(tmp_path)
        path = request_restart(tmp_path, at=1_390_000_000)
        assert path == tmp_path / RESTART_FILE
        assert check_restart(tmp_path)
        assert "restart requested at 1390000000" in path.read_text()
        clear_restart(tmp_path)
        assert not check_restart(tmp_path)

    def test_clear_without_request_is_a_noop(self, tmp_path):
        clear_restart(tmp_path)  # must not raise
        assert not check_restart(tmp_path)

    def test_version_survives_the_file(self, tmp_path):
        request_restart(tmp_path, version="v7", at=1_390_000_000)
        assert read_restart_version(tmp_path) == "v7"

    def test_no_version_reads_as_none(self, tmp_path):
        request_restart(tmp_path, at=1_390_000_000)
        assert read_restart_version(tmp_path) is None

    def test_no_file_reads_as_none(self, tmp_path):
        assert read_restart_version(tmp_path) is None

    def test_second_request_overwrites_the_first(self, tmp_path):
        request_restart(tmp_path, version="v2", at=1_390_000_000)
        request_restart(tmp_path, version="v3", at=1_390_000_060)
        assert read_restart_version(tmp_path) == "v3"

    def test_default_timestamp_is_now_not_zero(self, tmp_path):
        path = request_restart(tmp_path)
        stamp = int(path.read_text().splitlines()[0].rsplit(" ", 1)[1])
        assert stamp > 1_400_000_000  # any real wall clock, not 0

    def test_exit_code_is_distinct_from_clean_and_crash(self):
        assert RESTART_EXIT_CODE not in (0, 70)


class TestRewriteVersion:
    def test_replaces_space_form(self):
        args = ["--leaf-id", "a", "--version", "v1", "--namespace", "n"]
        assert rewrite_version(args, "v2") == [
            "--leaf-id", "a", "--version", "v2", "--namespace", "n",
        ]

    def test_replaces_equals_form(self):
        assert rewrite_version(["--version=v1"], "v2") == ["--version=v2"]

    def test_appends_when_absent(self):
        assert rewrite_version(["--leaf-id", "a"], "v2") == [
            "--leaf-id", "a", "--version", "v2",
        ]

    def test_does_not_mutate_the_input(self):
        args = ["--version", "v1"]
        rewrite_version(args, "v2")
        assert args == ["--version", "v1"]
