"""Tests for the rejected-alternative shared memory allocator (E11)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AllocationError
from repro.shm.allocator import ShmAllocator


class TestAllocFree:
    def test_simple_alloc(self):
        arena = ShmAllocator(1024)
        offset = arena.alloc(100)
        assert offset == 0
        assert arena.allocated_bytes == 104  # rounded to 8

    def test_alignment(self):
        arena = ShmAllocator(1024)
        arena.alloc(3)
        assert arena.alloc(3) == 8

    def test_exhaustion(self):
        arena = ShmAllocator(64)
        arena.alloc(64)
        with pytest.raises(AllocationError):
            arena.alloc(1)

    def test_free_and_reuse(self):
        arena = ShmAllocator(64)
        a = arena.alloc(32)
        arena.alloc(32)
        arena.free(a)
        assert arena.alloc(32) == a

    def test_double_free_rejected(self):
        arena = ShmAllocator(64)
        a = arena.alloc(8)
        arena.free(a)
        with pytest.raises(AllocationError):
            arena.free(a)

    def test_free_unknown_rejected(self):
        with pytest.raises(AllocationError):
            ShmAllocator(64).free(0)

    def test_bad_sizes_rejected(self):
        with pytest.raises(ValueError):
            ShmAllocator(0)
        arena = ShmAllocator(64)
        with pytest.raises(ValueError):
            arena.alloc(0)

    def test_coalescing_restores_one_hole(self):
        arena = ShmAllocator(96)
        a = arena.alloc(32)
        b = arena.alloc(32)
        c = arena.alloc(32)
        arena.free(a)
        arena.free(c)
        arena.free(b)  # merges with both neighbours
        stats = arena.stats()
        assert stats.free_block_count == 1
        assert stats.largest_free_block == 96


class TestFragmentation:
    def test_fragmentation_blocks_large_request(self):
        """Total free space is sufficient but no hole is big enough —
        the failure mode the paper rejected this design over."""
        arena = ShmAllocator(1000)
        offsets = [arena.alloc(96) for _ in range(10)]
        for offset in offsets[::2]:
            arena.free(offset)  # free every other block: 5 x 96 free
        stats = arena.stats()
        assert stats.free_bytes >= 480
        assert stats.largest_free_block < 200
        with pytest.raises(AllocationError):
            arena.alloc(300)
        assert stats.fragmentation > 0.5

    def test_stats_consistency(self):
        arena = ShmAllocator(512)
        arena.alloc(100)
        stats = arena.stats()
        assert stats.allocated_bytes + stats.free_bytes == stats.capacity

    @settings(max_examples=50, deadline=None)
    @given(st.integers(min_value=0, max_value=2**32))
    def test_random_churn_never_corrupts_accounting(self, seed):
        """Property: under random alloc/free churn, allocated+free ==
        capacity and no two live blocks overlap."""
        rng = random.Random(seed)
        arena = ShmAllocator(4096)
        live: list[int] = []
        for _ in range(100):
            if live and rng.random() < 0.45:
                arena.free(live.pop(rng.randrange(len(live))))
            else:
                try:
                    live.append(arena.alloc(rng.randrange(1, 300)))
                except AllocationError:
                    if live:
                        arena.free(live.pop(0))
            stats = arena.stats()
            assert stats.allocated_bytes + stats.free_bytes == 4096
        # No overlaps among live allocations.
        spans = sorted((off, arena._allocated[off]) for off in live)
        for (o1, s1), (o2, _) in zip(spans, spans[1:]):
            assert o1 + s1 <= o2
