"""Parallel legacy replay: digest identity, fallback paths, budget balance.

``replay_leafmap`` must be a drop-in sibling of ``recover_leafmap``:
identical recovered rows, blocks, and watermarks on every input, on both
the thread and the process backend — only wall-clock may differ.  These
tests pin that equivalence on the partitioned fast path, the exact
(cutoff / byte-cap) path, and through the engine's legacy rung, plus the
footprint-budget accounting on success and on injected failure.
"""

from __future__ import annotations

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.core.parallel import FootprintBudget
from repro.disk.backup import DiskBackup
from repro.disk.format import read_chunk_payloads
from repro.disk.recovery import recover_leafmap
from repro.disk.replay import (
    _replay_partition,
    iter_seal_groups,
    replay_leafmap,
)
from repro.errors import CorruptionError, RecoveryError
from repro.util.checksum import rows_digest


def build_backup(tmp_path, clock, *, syncs=5, rows_per_sync=700, rows_per_block=64):
    """A legacy chunk file with unaligned chunk/seal boundaries.

    700 % 64 != 0, so every sync chunk straddles seal groups and every
    partition boundary lands mid-chunk — the shapes the partitioner's
    skip/take logic must get right.
    """
    backup = DiskBackup(tmp_path / "backup", snapshots=False)
    leafmap = LeafMap(clock=clock, rows_per_block=rows_per_block)
    table = leafmap.get_or_create("events")
    t = 1000
    for _ in range(syncs):
        table.add_rows(
            {"time": t + i, "host": f"web{i % 9:02d}", "latency_ms": float(i % 97)}
            for i in range(rows_per_sync)
        )
        t += rows_per_sync
        backup.sync_leafmap(leafmap)
    return backup, leafmap


def serial_recovery(backup, clock, rows_per_block=64):
    restored = LeafMap(clock=clock, rows_per_block=rows_per_block)
    recover_leafmap(backup, restored)
    return restored


def assert_equivalent(a: LeafMap, b: LeafMap) -> None:
    """Row-identical, block-identical, watermark-identical."""
    assert rows_digest(a.snapshot_rows()) == rows_digest(b.snapshot_rows())
    for ta, tb in zip(a, b):
        assert ta.name == tb.name
        assert [blk.row_count for blk in ta.blocks] == [
            blk.row_count for blk in tb.blocks
        ]
        assert ta.total_rows_ingested == tb.total_rows_ingested
        assert ta.total_rows_expired == tb.total_rows_expired


class TestDigestIdentity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_partitioned_matches_serial(self, tmp_path, clock, backend, workers):
        backup, _ = build_backup(tmp_path, clock)
        serial = serial_recovery(backup, clock)
        parallel = LeafMap(clock=clock, rows_per_block=64)
        count = replay_leafmap(backup, parallel, workers=workers, backend=backend)
        assert count == 5 * 700
        assert_equivalent(serial, parallel)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_cutoff_table_takes_exact_path_and_matches(
        self, tmp_path, clock, backend
    ):
        """An expiry cutoff thins the stream mid-chunk: header row counts
        overstate survivors, so the table must replay exactly."""
        backup, leafmap = build_backup(tmp_path, clock)
        leafmap.get_table("events").expire_before(2400)
        backup.record_expiry("events", 2400)
        serial = serial_recovery(backup, clock)
        assert serial.get_table("events").row_count == 5 * 700 - 1400
        parallel = LeafMap(clock=clock, rows_per_block=64)
        replay_leafmap(backup, parallel, workers=3, backend=backend)
        assert_equivalent(serial, parallel)

    def test_multi_table_replay(self, tmp_path, clock):
        backup = DiskBackup(tmp_path / "backup", snapshots=False)
        leafmap = LeafMap(clock=clock, rows_per_block=50)
        for name, n in (("events", 730), ("metrics", 115), ("empty", 0)):
            table = leafmap.get_or_create(name)
            table.add_rows({"time": 1000 + i, "host": "a"} for i in range(n))
        backup.sync_leafmap(leafmap)
        serial = serial_recovery(backup, clock, rows_per_block=50)
        parallel = LeafMap(clock=clock, rows_per_block=50)
        count = replay_leafmap(backup, parallel, workers=4)
        assert count == 730 + 115
        assert_equivalent(serial, parallel)

    def test_torn_tail_chunk_is_skipped_like_serial(self, tmp_path, clock):
        backup, _ = build_backup(tmp_path, clock, syncs=3)
        path = backup.table_file("events")
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) - 100])  # tear the final chunk
        serial = serial_recovery(backup, clock)
        assert serial.get_table("events").row_count == 2 * 700
        parallel = LeafMap(clock=clock, rows_per_block=64)
        replay_leafmap(backup, parallel, workers=4)
        assert_equivalent(serial, parallel)


class TestSealGroups:
    def test_groups_mirror_table_seal_boundaries(self, clock):
        rows = [{"time": 1000 + i, "host": f"h{i}"} for i in range(137)]
        groups = list(iter_seal_groups(rows, 50, 1 << 30))
        assert [len(g) for g, _ in groups] == [50, 50, 37]

    def test_byte_cap_seals_early(self):
        rows = [{"time": 1000 + i, "host": "x" * 200} for i in range(40)]
        groups = list(iter_seal_groups(rows, 50, 1000))
        assert len(groups) > 1
        assert all(len(g) < 50 for g, _ in groups)

    def test_invalid_row_raises_like_live_ingest(self):
        with pytest.raises(Exception, match="time"):
            list(iter_seal_groups([{"host": "a"}], 50, 1 << 30))


class TestPartitionWorker:
    def payloads(self, backup):
        with open(backup.table_file("events"), "rb") as fh:
            return list(read_chunk_payloads(fh))

    def test_skip_take_selects_exact_rows(self, tmp_path, clock):
        backup, _ = build_backup(tmp_path, clock, syncs=2, rows_per_sync=100)
        chunks = self.payloads(backup)
        blocks = _replay_partition(chunks, 30, 120, 64, 1 << 30, 1.0, False)
        assert [b.row_count for b in blocks] == [64, 56]
        times = [r["time"] for b in blocks for r in b.to_rows()]
        assert times == list(range(1030, 1150))

    def test_byte_cap_binding_returns_none(self, tmp_path, clock):
        backup, _ = build_backup(tmp_path, clock, syncs=1, rows_per_sync=100)
        chunks = self.payloads(backup)
        assert _replay_partition(chunks, 0, 100, 64, 64, 1.0, False) is None

    def test_packed_round_trip(self, tmp_path, clock):
        from repro.columnstore.rowblock import RowBlock

        backup, _ = build_backup(tmp_path, clock, syncs=1, rows_per_sync=100)
        chunks = self.payloads(backup)
        packed = _replay_partition(chunks, 0, 100, 64, 1 << 30, 1.0, True)
        plain = _replay_partition(chunks, 0, 100, 64, 1 << 30, 1.0, False)
        assert [RowBlock.unpack(p).to_rows() for p in packed] == [
            b.to_rows() for b in plain
        ]


class SmallBlockLeafMap(LeafMap):
    """Leaf map whose tables seal at a tiny pre-compression byte cap.

    ``LeafMap`` has no byte-cap knob (production tables use the 1 GB
    default), so pin it on every created table — including the ones the
    recovery paths create internally."""

    def create_table(self, name):
        table = super().create_table(name)
        table._max_block_bytes = 4096
        return table


class TestByteCapFallback:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_wide_rows_fall_back_to_exact_and_match(self, tmp_path, clock, backend):
        """Rows fat enough that the byte cap seals before the row count:
        the partitioned premise is wrong, the exact path must win out."""
        backup = DiskBackup(tmp_path / "backup", snapshots=False)
        source = SmallBlockLeafMap(clock=clock, rows_per_block=500)
        table = source.get_or_create("events")
        table.add_rows(
            {"time": 1000 + i, "host": "x" * 300} for i in range(200)
        )
        backup.sync_leafmap(source)
        assert table.block_count > 1, "byte cap must actually bind"

        serial = SmallBlockLeafMap(clock=clock, rows_per_block=500)
        recover_leafmap(backup, serial)
        parallel = SmallBlockLeafMap(clock=clock, rows_per_block=500)
        replay_leafmap(backup, parallel, workers=3, backend=backend)
        assert_equivalent(serial, parallel)


class TestBudgetBalance:
    def test_budget_returns_to_zero_on_success(self, tmp_path, clock):
        backup, _ = build_backup(tmp_path, clock)
        budget = FootprintBudget(1 << 20)
        restored = LeafMap(clock=clock, rows_per_block=64)
        replay_leafmap(backup, restored, workers=4, budget=budget)
        assert budget.in_flight == 0
        assert budget.peak_in_flight > 0

    def test_small_budget_serializes_but_completes(self, tmp_path, clock):
        """A budget smaller than one partition admits requests one at a
        time (oversized requests run alone) — slow, never stuck."""
        backup, _ = build_backup(tmp_path, clock, syncs=2)
        serial = serial_recovery(backup, clock)
        budget = FootprintBudget(64)
        restored = LeafMap(clock=clock, rows_per_block=64)
        replay_leafmap(backup, restored, workers=4, budget=budget)
        assert budget.in_flight == 0
        assert_equivalent(serial, restored)

    def test_budget_balanced_after_mid_file_corruption(self, tmp_path, clock):
        """A mid-file corruption raises out of replay with every
        outstanding partition's bytes returned to the budget."""
        backup, _ = build_backup(tmp_path, clock, syncs=3)
        path = backup.table_file("events")
        raw = bytearray(path.read_bytes())
        # Flip a payload byte in the *first* chunk: CRC mismatch with
        # more data following it is a hard corruption.
        raw[30] ^= 0xFF
        path.write_bytes(bytes(raw))
        budget = FootprintBudget(1 << 20)
        restored = LeafMap(clock=clock, rows_per_block=64)
        with pytest.raises(CorruptionError):
            replay_leafmap(backup, restored, workers=4, budget=budget)
        assert budget.in_flight == 0

    def test_budget_balanced_after_worker_failure(self, tmp_path, clock):
        """A decode failure *inside a worker* (bad rows, intact CRC) must
        abandon cleanly: error propagated, budget back to zero."""
        backup, _ = build_backup(tmp_path, clock, syncs=1, rows_per_sync=100)
        # Rewrite the chunk with rows lacking the time column; CRCs are
        # regenerated, so the parent's scan succeeds and only the
        # worker's row validation trips.
        from repro.disk.format import write_chunk, write_file_header

        path = backup.table_file("events")
        with open(path, "wb") as fh:
            write_file_header(fh)
            write_chunk(fh, [{"host": "a"} for _ in range(100)])
        budget = FootprintBudget(1 << 20)
        restored = LeafMap(clock=clock, rows_per_block=64)
        with pytest.raises(Exception, match="time"):
            replay_leafmap(backup, restored, workers=4, budget=budget)
        assert budget.in_flight == 0


class TestArguments:
    def test_rejects_bad_workers_and_backend(self, tmp_path, clock):
        backup, _ = build_backup(tmp_path, clock, syncs=1)
        restored = LeafMap(clock=clock, rows_per_block=64)
        with pytest.raises(ValueError, match="worker"):
            replay_leafmap(backup, restored, workers=0)
        with pytest.raises(ValueError, match="backend"):
            replay_leafmap(backup, restored, backend="greenlet")

    def test_requires_empty_leafmap(self, tmp_path, clock):
        backup, _ = build_backup(tmp_path, clock, syncs=1)
        occupied = LeafMap(clock=clock, rows_per_block=64)
        occupied.get_or_create("events")
        with pytest.raises(RecoveryError, match="empty"):
            replay_leafmap(backup, occupied)

    def test_engine_rejects_bad_replay_config(self, shm_namespace):
        with pytest.raises(ValueError, match="replay_workers"):
            RestartEngine("0", namespace=shm_namespace, replay_workers=0)


class TestEngineIntegration:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_legacy_rung_fans_out_and_matches_serial(
        self, shm_namespace, tmp_path, clock, backend
    ):
        backup, leafmap = build_backup(tmp_path, clock)
        snapshot = leafmap.snapshot_rows()
        restored = LeafMap(clock=clock, rows_per_block=64)
        report = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            replay_workers=3,
            replay_backend=backend,
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert report.rows == 5 * 700
        assert restored.snapshot_rows() == snapshot

    def test_single_worker_engine_uses_serial_path(
        self, shm_namespace, tmp_path, clock
    ):
        backup, leafmap = build_backup(tmp_path, clock, syncs=2)
        restored = LeafMap(clock=clock, rows_per_block=64)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert restored.snapshot_rows() == leafmap.snapshot_rows()
