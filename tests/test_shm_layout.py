"""Tests for the contiguous table segment layout (paper, Figure 4)."""

import pytest

from repro.columnstore.rowblock import RowBlock
from repro.errors import CorruptionError, LayoutVersionError, ShmError
from repro.shm.layout import (
    TableSegmentWriter,
    packed_block_size,
    read_segment_header,
    read_table_from_segment,
    table_segment_size,
    write_table_to_segment,
)
from repro.shm.segment import ShmSegment


def make_blocks(n_blocks=3, rows=20):
    blocks = []
    for b in range(n_blocks):
        rows_data = [
            {"time": b * 1000 + i, "host": f"h{i % 3}", "v": float(i)}
            for i in range(rows)
        ]
        blocks.append(RowBlock.from_rows(rows_data, created_at=float(b)))
    return blocks


class TestSizes:
    def test_packed_block_size_is_exact(self):
        block = make_blocks(1)[0]
        assert packed_block_size(block) == len(block.pack())

    def test_table_segment_size_is_exact(self, shm_namespace):
        blocks = make_blocks()
        size = table_segment_size("events", blocks)
        segment = ShmSegment.create(f"{shm_namespace}-s", size)
        try:
            used = write_table_to_segment(segment, "events", blocks)
            assert used == size
        finally:
            segment.unlink()


class TestWriteRead:
    def test_roundtrip(self, shm_namespace):
        blocks = make_blocks()
        size = table_segment_size("events", blocks)
        segment = ShmSegment.create(f"{shm_namespace}-a", size + 100)  # slack ok
        try:
            used = write_table_to_segment(segment, "events", blocks)
            name, recovered = read_table_from_segment(segment, used)
            assert name == "events"
            assert [b.to_rows() for b in recovered] == [b.to_rows() for b in blocks]
        finally:
            segment.unlink()

    def test_empty_table(self, shm_namespace):
        size = table_segment_size("empty", [])
        segment = ShmSegment.create(f"{shm_namespace}-b", max(size, 1))
        try:
            used = write_table_to_segment(segment, "empty", [])
            name, recovered = read_table_from_segment(segment, used)
            assert name == "empty" and recovered == []
        finally:
            segment.unlink()

    def test_streamed_copy_yields_one_event_per_rbc(self, shm_namespace):
        blocks = make_blocks(2, rows=10)
        n_columns = len(blocks[0].schema)
        segment = ShmSegment.create(
            f"{shm_namespace}-c", table_segment_size("t", blocks)
        )
        try:
            writer = TableSegmentWriter(segment, "t", blocks)
            events = list(writer.copy_events())
            assert len(events) == 2 * n_columns
            assert sum(1 for e in events if e.last_in_block) == 2
            assert {e.block_index for e in events} == {0, 1}
        finally:
            segment.unlink()

    def test_too_small_segment_fails_before_any_copy(self, shm_namespace):
        blocks = make_blocks(1)
        segment = ShmSegment.create(f"{shm_namespace}-d", 32)
        try:
            writer = TableSegmentWriter(segment, "t", blocks)
            with pytest.raises(ShmError):
                next(writer.copy_events())
            # Nothing was copied; the blocks remain intact in heap.
            blocks[0].verify()
        finally:
            segment.unlink()


class TestHeaderValidation:
    def _segment_with_table(self, shm_namespace, suffix="v"):
        blocks = make_blocks(1)
        size = table_segment_size("t", blocks)
        segment = ShmSegment.create(f"{shm_namespace}-{suffix}", size)
        write_table_to_segment(segment, "t", blocks)
        return segment

    def test_bad_magic(self, shm_namespace):
        segment = self._segment_with_table(shm_namespace)
        try:
            corrupted = bytearray(bytes(segment.buf))
            corrupted[0] ^= 0xFF
            with pytest.raises(CorruptionError):
                read_segment_header(memoryview(corrupted))
        finally:
            segment.unlink()

    def test_version_mismatch(self, shm_namespace):
        segment = self._segment_with_table(shm_namespace, "w")
        try:
            corrupted = bytearray(bytes(segment.buf))
            corrupted[4] = 200
            with pytest.raises(LayoutVersionError):
                read_segment_header(memoryview(corrupted))
        finally:
            segment.unlink()

    def test_used_bytes_bound(self, shm_namespace):
        segment = self._segment_with_table(shm_namespace, "x")
        try:
            corrupted = bytearray(bytes(segment.buf))
            corrupted[8:16] = (2**40).to_bytes(8, "little")
            with pytest.raises(CorruptionError):
                read_segment_header(memoryview(corrupted))
        finally:
            segment.unlink()

    def test_block_extent_bound(self, shm_namespace):
        segment = self._segment_with_table(shm_namespace, "y")
        try:
            view = memoryview(bytes(segment.buf))
            name, pairs = read_segment_header(view)
            assert name == "t" and len(pairs) == 1
            # Corrupt the first block offset to point past the end.
            corrupted = bytearray(view)
            header_len = len(bytes(view)) - pairs[0][1]
            offset_pos = header_len - 16  # offset entry precedes size entry
            corrupted[offset_pos : offset_pos + 8] = (2**30).to_bytes(8, "little")
            with pytest.raises(CorruptionError):
                read_segment_header(memoryview(corrupted))
        finally:
            segment.unlink()
