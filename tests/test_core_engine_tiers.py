"""The disk side of the recovery ladder (paper, Section 6).

Disk recovery is two rungs: a trusted shm-format snapshot is bulk-unpacked
(DISK_SNAPSHOT_RECOVERY); any validity failure — torn file, stale
generation, layout mismatch, mid-tier fault — routes the *whole* leaf down
to legacy row-format replay with identical recovered data.  The second
half of the file sweeps fault injection across every restore hook and
checks the memory tracker returns to baseline: fallback may cost time,
never accounting drift.
"""

from __future__ import annotations

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.disk.shmformat import write_table_shm_format
from repro.errors import CorruptionError
from repro.shm.layout import SHM_LAYOUT_VERSION
from repro.util.memtrack import MemoryTracker
from tests.conftest import make_leafmap


def synced_backup(tmp_path, clock, tables=("events",)):
    """A sealed, fully-synced leaf: every snapshot fresh."""
    backup = DiskBackup(tmp_path / "backup")
    leafmap = make_leafmap(clock, tables=tables)
    leafmap.seal_all()
    backup.sync_leafmap(leafmap)
    assert backup.snapshots_ready()
    return backup, leafmap.snapshot_rows()


class TestSnapshotTier:
    def test_snapshot_tier_is_the_default_disk_rung(
        self, shm_namespace, tmp_path, clock
    ):
        backup, snapshot = synced_backup(tmp_path, clock)
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert not report.fell_back_to_legacy
        assert report.leaf_states == ["init", "disk_snapshot_recovery", "alive"]
        assert report.tables == 1
        assert report.rows == 120
        assert restored.snapshot_rows() == snapshot

    def test_torn_snapshot_file_falls_back_to_legacy(
        self, shm_namespace, tmp_path, clock
    ):
        backup, snapshot = synced_backup(tmp_path, clock)
        path = backup.snapshot_path("events")
        path.write_bytes(path.read_bytes()[:32])  # torn mid-header
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_legacy
        assert report.leaf_states == [
            "init", "disk_snapshot_recovery", "disk_recovery", "alive",
        ]
        assert restored.snapshot_rows() == snapshot

    def test_generation_mismatch_falls_back_to_legacy(
        self, shm_namespace, tmp_path, clock
    ):
        """A snapshot file whose embedded generation the manifest does not
        vouch for (e.g. a crash landed the file but not the manifest) is
        routed around, not trusted."""
        backup, snapshot = synced_backup(tmp_path, clock)
        fresh = make_leafmap(clock)
        fresh.seal_all()
        write_table_shm_format(
            backup.snapshot_dir,
            "events",
            fresh.get_table("events").blocks,
            generation=999,
        )
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_legacy
        assert restored.snapshot_rows() == snapshot

    def test_buffered_rows_at_sync_keep_snapshot_stale(
        self, shm_namespace, tmp_path, clock
    ):
        """A sync with buffered rows must not refresh the snapshot (it
        holds sealed blocks only), so the restart pre-check sends the leaf
        straight to legacy replay — no tier entered, no fallback flagged."""
        backup = DiskBackup(tmp_path / "backup")
        leafmap = make_leafmap(clock)  # 100 sealed + 20 still buffered
        backup.sync_leafmap(leafmap)
        assert not backup.snapshots_ready()
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert not report.fell_back_to_legacy
        assert report.leaf_states == ["init", "disk_recovery", "alive"]
        assert restored.snapshot_rows() == leafmap.snapshot_rows()

    def test_layout_version_mismatch_skips_snapshot_tier(
        self, shm_namespace, tmp_path, clock
    ):
        """A build whose shm layout diverged must not consume shm-format
        bytes from disk any more than from /dev/shm."""
        backup, snapshot = synced_backup(tmp_path, clock)
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            layout_version=SHM_LAYOUT_VERSION + 1,
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert not report.fell_back_to_legacy
        assert report.leaf_states == ["init", "disk_recovery", "alive"]
        assert restored.snapshot_rows() == snapshot

    def test_expiry_after_snapshot_is_reapplied(
        self, shm_namespace, tmp_path, clock
    ):
        """record_expiry does not invalidate the snapshot; the cutoff is
        re-applied after recovery, matching legacy replay at the block
        boundary (block 0 holds times 1000-1049)."""
        backup, _ = synced_backup(tmp_path, clock)
        backup.record_expiry("events", 1050)
        assert backup.snapshots_ready()
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert report.rows == 70
        legacy = LeafMap(clock=clock, rows_per_block=50)
        RestartEngine(
            "0",
            namespace=shm_namespace,
            backup=backup,
            clock=clock,
            disk_snapshot_tier=False,
        ).restore(legacy)
        assert restored.snapshot_rows() == legacy.snapshot_rows()

    def test_multi_table_tier_is_all_or_nothing(
        self, shm_namespace, tmp_path, clock
    ):
        """One bad snapshot routes *both* tables to legacy replay — the
        tiers never mix within a leaf."""
        backup, snapshot = synced_backup(
            tmp_path, clock, tables=("events", "metrics")
        )
        path = backup.snapshot_path("metrics")
        path.write_bytes(path.read_bytes()[:60])
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "0", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_legacy
        assert report.tables == 2
        assert restored.snapshot_rows() == snapshot


class TestFallbackAccounting:
    """Satellite: every fallback leaves the tracker at baseline.

    Heap bytes of whatever a failed tier installed must be freed, shared
    memory must be fully consumed, and the final heap charge must equal
    exactly the bytes of the recovered tables — for every restore-side
    fault point.  (``restore:start`` fires before any state change and
    propagates; it is covered in test_core_engine.)
    """

    SHM_POINTS = (
        "restore:after_invalidate",
        "restore:table",
        "restore:before_finish",
    )

    @pytest.mark.parametrize("point", SHM_POINTS)
    def test_shm_fault_lands_on_snapshot_tier_at_baseline(
        self, point, shm_namespace, tmp_path, clock
    ):
        backup = DiskBackup(tmp_path / "backup")
        leafmap = make_leafmap(clock, tables=("events", "metrics"))
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        tracker = MemoryTracker()
        engine = RestartEngine(
            "7",
            namespace=shm_namespace,
            backup=backup,
            tracker=tracker,
            clock=clock,
        )
        engine.backup_to_shm(leafmap)  # PREPARE syncs -> snapshots fresh
        assert tracker.in_region("heap") == 0

        fired = []

        def explode(p: str) -> None:
            if p == point and not fired:
                fired.append(p)
                raise CorruptionError("injected restore fault")

        engine._fault = explode
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = engine.restore(restored)
        assert fired, "the injected fault never fired"
        assert report.fell_back_to_disk
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert restored.snapshot_rows() == snapshot
        # Accounting invariants: shm fully drained, heap charged exactly
        # for what the winning tier installed.
        assert not engine.shm_state_exists()
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    def test_snapshot_fault_lands_on_legacy_at_baseline(
        self, shm_namespace, tmp_path, clock
    ):
        """A fault *inside* the snapshot tier (after its first table) must
        free that table's heap bytes before legacy replay recharges them."""
        backup, snapshot = synced_backup(
            tmp_path, clock, tables=("events", "metrics")
        )
        tracker = MemoryTracker()
        fired = []

        def explode(p: str) -> None:
            if p == "restore:snapshot_table" and not fired:
                fired.append(p)
                raise CorruptionError("injected snapshot-tier fault")

        restored = LeafMap(clock=clock, rows_per_block=50)
        report = RestartEngine(
            "7",
            namespace=shm_namespace,
            backup=backup,
            tracker=tracker,
            clock=clock,
            fault_hook=explode,
        ).restore(restored)
        assert fired
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_legacy
        assert restored.snapshot_rows() == snapshot
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)

    def test_partial_attempt_counters_survive_fallback(
        self, shm_namespace, tmp_path, clock
    ):
        """A failed memory attempt's partial progress and its failure
        reason must stay on the final report — the disk rungs restart
        the per-method counters, not the attempt's history."""
        backup = DiskBackup(tmp_path / "backup")
        leafmap = make_leafmap(clock, tables=("events", "metrics"))
        leafmap.seal_all()
        engine = RestartEngine(
            "7", namespace=shm_namespace, backup=backup, clock=clock
        )
        engine.backup_to_shm(leafmap)

        fired = []

        def explode(p: str) -> None:
            if p == "restore:table" and not fired:
                fired.append(p)
                raise CorruptionError("wedged segment")

        engine._fault = explode
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = engine.restore(restored)
        assert report.fell_back_to_disk
        assert report.failure_reason == "CorruptionError: wedged segment"
        # restore:table fires after the first table completed, so the
        # attempt got exactly one table in before dying.
        assert report.memory_attempt_tables == 1
        assert report.memory_attempt_row_blocks == 3
        assert report.memory_attempt_rows == 120
        assert report.memory_attempt_bytes > 0
        # The winning tier's own counters cover the whole leaf and are
        # not polluted by the attempt's partial work.
        assert report.tables == 2
        assert report.rows == 240

    def test_double_fallback_shm_then_torn_snapshot_to_legacy(
        self, shm_namespace, tmp_path, clock
    ):
        """The full ladder in one restart: memory recovery dies mid-copy,
        the snapshot tier finds a torn file, legacy replay wins — and the
        tracker still balances."""
        backup = DiskBackup(tmp_path / "backup")
        leafmap = make_leafmap(clock, tables=("events", "metrics"))
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        tracker = MemoryTracker()
        engine = RestartEngine(
            "7",
            namespace=shm_namespace,
            backup=backup,
            tracker=tracker,
            clock=clock,
        )
        engine.backup_to_shm(leafmap)
        path = backup.snapshot_path("events")
        path.write_bytes(path.read_bytes()[:50])

        fired = []

        def explode(p: str) -> None:
            if p == "restore:table" and not fired:
                fired.append(p)
                raise CorruptionError("injected mid-copy fault")

        engine._fault = explode
        restored = LeafMap(clock=clock, rows_per_block=50)
        report = engine.restore(restored)
        assert report.method is RecoveryMethod.DISK
        assert report.fell_back_to_disk and report.fell_back_to_legacy
        assert report.leaf_states == [
            "init",
            "memory_recovery",
            "disk_snapshot_recovery",
            "disk_recovery",
            "alive",
        ]
        assert restored.snapshot_rows() == snapshot
        assert not engine.shm_state_exists()
        assert tracker.in_region("shm") == 0
        assert tracker.in_region("heap") == sum(t.nbytes for t in restored)
