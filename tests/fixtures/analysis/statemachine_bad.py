"""Known-bad state-machine fixture — RL201/RL202/RL203/RL204 all fire."""

import enum


class Phase(enum.Enum):
    START = "start"
    COPY = "copy"
    DONE = "done"
    ABORT = "abort"


class PhaseMachine:
    def __init__(self) -> None:
        super().__init__(
            Phase.START,
            {
                Phase.START: {Phase.COPY},
                Phase.COPY: {Phase.DONE, Phase.ABORT},
            },
            terminal={Phase.DONE, Phase.ABORT},
        )


class StallMachine:
    def __init__(self) -> None:
        # COPY is a dead end and START cannot reach DONE: RL203 twice
        super().__init__(
            Phase.START,
            {Phase.START: {Phase.COPY}},
            terminal={Phase.DONE},
        )


def drive() -> None:
    machine = PhaseMachine()
    machine.transition(Phase.COPY)
    machine.transition(Phase.DONE)
    machine.transition(Phase.START)  # undeclared target: RL202
