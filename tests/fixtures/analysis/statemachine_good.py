"""Known-good state-machine fixture — full edge coverage, no findings."""

import enum


class Stage(enum.Enum):
    START = "start"
    COPY = "copy"
    DONE = "done"


class StageMachine:
    def __init__(self) -> None:
        super().__init__(
            Stage.START,
            {
                Stage.START: {Stage.COPY},
                Stage.COPY: {Stage.DONE},
            },
            terminal={Stage.DONE},
        )


def drive() -> None:
    machine = StageMachine()
    machine.transition(Stage.COPY)
    machine.transition(Stage.DONE)
