"""Known-bad layout fixture — every RL1xx code fires in this file.

Parsed by the layout-drift checker, never imported.
"""

import struct

HEADER = struct.Struct("<IHHQ")  # 4 fields, 16 bytes
TRAILER = struct.Struct("<II")  # packed below, never unpacked: RL105
SEGMENT_MAGIC = 0x4C425453
VERSION_OFFSET = 7  # not a field boundary of any format here: RL106


def write_header(buf: bytearray) -> None:
    HEADER.pack_into(buf, 0, 1, 2, 3)  # 3 values for 4 fields: RL101


def write_trailer() -> bytes:
    return TRAILER.pack(1, 2)


def read_header(data: bytes) -> bytes:
    magic, version = HEADER.unpack(data)  # 2 targets for 4 fields: RL102
    if magic != 0x4C425453:  # raw literal shadowing SEGMENT_MAGIC: RL103
        raise ValueError(version)
    return data[16:]  # hardcoded HEADER.size: RL104
