"""Known-good fallback fixture — every handler routes, no findings."""

from repro.errors import RecoveryError


def recover_with_reraise(source):
    try:
        return source.load()
    except Exception as exc:
        raise RecoveryError("tier failed") from exc


def recover_with_fallback(source, report):
    try:
        return source.load()
    except Exception:
        report.fell_back_to_legacy = True
        return source.replay()


def recover_logged(source, log):
    try:
        return source.load()
    except Exception as exc:
        log.warning("tier failed: %s", exc)
        return None
