"""Fixture: lock-order and atomicity violations reprolint must catch.

- ``Directory``/``Budget`` take each other's locks in opposite orders:
  ``Directory.publish`` holds its lock and calls into the budget (which
  takes the budget lock), while ``Budget.rebalance`` holds the budget
  lock and calls back into the directory — the RL701 cycle.
- ``Directory.publish`` also maps a segment and blocks on the budget
  while holding its lock (RL702, the pre-fix ``_publish_directory`` /
  ``_fault_block`` shapes).
- ``Router.dispatch`` branches on ``leaf.accepts_queries`` and then
  calls ``leaf.query`` with no lock and no ``StateError`` handling
  (RL703, the pre-fix aggregator shape).
"""

import threading


class Directory:
    def __init__(self, budget, segments):
        self._lock = threading.RLock()
        self._budget = budget
        self._segments = segments
        self._published = []

    def publish(self):
        with self._lock:
            for segment in self._segments:
                handle = segment.attach()
                self._budget.admit(handle.size)
                self._published.append(handle)

    def fault_one(self, desc):
        with self._lock:
            self._budget.acquire(desc.size)
            try:
                return desc.decode()
            finally:
                self._budget.release(desc.size)

    def refresh(self):
        with self._lock:
            return list(self._published)


class Budget:
    def __init__(self, directory, limit):
        self._lock = threading.Lock()
        self._directory = directory
        self._limit = limit
        self._in_flight = 0

    def admit(self, nbytes):
        with self._lock:
            self._in_flight += nbytes

    def rebalance(self):
        with self._lock:
            # Opposite nesting: budget lock held, directory lock taken.
            published = self._directory.refresh()
            self._in_flight = sum(h.size for h in published)


class Router:
    def __init__(self, leaves):
        self._leaves = leaves

    def dispatch(self, query):
        answers = []
        for leaf in self._leaves:
            if not leaf.accepts_queries:
                continue
            answers.append(leaf.query(query))
        return answers
