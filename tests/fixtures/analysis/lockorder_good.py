"""Fixture: disciplined lock usage reprolint must accept.

Consistent one-way lock nesting, the condition-wait idiom (waiting on
the held lock releases it), slow work hoisted out of the critical
section, and both accepted check-then-act forms: holding the owning
lock across check and act, and catching the ``StateError`` the
under-lock re-check raises.
"""

import threading


class Budget:
    def __init__(self, limit):
        self._cond = threading.Condition()
        self._limit = limit
        self._in_flight = 0

    def acquire(self, nbytes):
        with self._cond:
            while self._in_flight + nbytes > self._limit:
                self._cond.wait()  # releases the condition while waiting
            self._in_flight += nbytes

    def release(self, nbytes):
        with self._cond:
            self._in_flight -= nbytes
            self._cond.notify_all()


class Directory:
    """Nests into Budget (one way only) and attaches outside the lock."""

    def __init__(self, budget, segments):
        self._lock = threading.RLock()
        self._budget = budget
        self._segments = segments
        self._published = []

    def publish(self):
        # Slow segment mapping happens before the critical section;
        # only the directory install holds the lock.
        handles = [segment.attach() for segment in self._segments]
        with self._lock:
            self._published.extend(handles)

    def fault_one(self, desc):
        block = desc.decode()
        with self._lock:
            self._published.append(block)


class Leaf:
    def __init__(self):
        self._lock = threading.RLock()
        self.status = "alive"

    @property
    def accepts_queries(self):
        return self.status == "alive"

    def query(self, query):
        with self._lock:
            if self.status != "alive":
                raise StateError("not serving")
            return query

    def expire(self, cutoff):
        with self._lock:
            # Check and act share the critical section: the accepted
            # in-class form.
            if self.status != "alive":
                raise StateError("not serving")
            self.status = "expiring"
            self.status = "alive"


class StateError(Exception):
    pass


class Router:
    def __init__(self, leaves):
        self._leaves = leaves

    def dispatch(self, query):
        answers = []
        for leaf in self._leaves:
            if not leaf.accepts_queries:
                continue
            try:
                answers.append(leaf.query(query))
            except StateError:
                continue  # flipped between check and act: skip it
        return answers
