"""Known-good guarded-by fixture — lock discipline holds, no findings."""

import threading


class SafeCounter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0
        self.peak = 0

    def bump(self) -> None:
        with self._lock:
            self.value += 1
            self._note()

    def read(self) -> int:
        with self._lock:
            return self.value

    def _note(self) -> None:
        # Only ever called under the lock: lock-held by closure.
        if self.value > self.peak:
            self.peak = self.value
