"""Known-bad lifecycle fixture — RL401 and RL402 fire."""

from repro.shm.segment import ShmSegment


def leak_forever(name: str) -> int:
    segment = ShmSegment.attach(name)  # RL401: never released
    return segment.size


def leak_on_raise(name: str, sink) -> None:
    segment = ShmSegment.attach(name)  # RL402: consume() may raise
    sink.consume(segment.read_at(0, 8))
    segment.close()
