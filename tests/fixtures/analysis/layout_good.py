"""Known-good layout fixture — the layout-drift checker stays silent."""

import struct

HEADER = struct.Struct("<IHHQ")  # 4 fields, 16 bytes
SEGMENT_MAGIC = 0x4C425453
BODY_OFFSET = 8  # boundary after "<IHH": fine


def write_header(buf: bytearray) -> None:
    HEADER.pack_into(buf, 0, SEGMENT_MAGIC, 1, 2, 3)


def read_header(data: bytes) -> bytes:
    magic, version, flags, length = HEADER.unpack(data[: HEADER.size])
    if magic != SEGMENT_MAGIC:
        raise ValueError((version, flags, length))
    return data[HEADER.size :]
