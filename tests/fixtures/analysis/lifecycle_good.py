"""Known-good lifecycle fixture — every acquire is covered, no findings."""

from repro.shm.segment import ShmSegment


def with_block(name: str) -> int:
    with ShmSegment.attach(name) as segment:
        return segment.size


def chained(name: str) -> None:
    ShmSegment.attach(name).unlink()


def try_finally(name: str, sink) -> None:
    segment = ShmSegment.attach(name)
    try:
        sink.consume(segment)
    finally:
        segment.close()


def guarded_handler(name: str, sink) -> None:
    segment = None
    try:
        segment = ShmSegment.attach(name)
        sink.consume(segment)
        segment.close()
    except Exception:
        if segment is not None:
            segment.close()
        raise


def factory(name: str):
    raw = ShmSegment.attach(name)
    return Wrapper(raw)  # noqa: F821 — ownership moves into the wrapper


def returned(name: str):
    segment = ShmSegment.attach(name)
    return segment
