"""Fixture: resource-balance violations reprolint must catch.

Each class reproduces the shape of a historical accounting leak:

- ``Pr2FallbackAttach`` is the PR 2 bug: the restore path charges the
  tracker for every attached segment, and the fallback path rebuilds
  from disk without ever freeing the shm charges — nothing in the
  module releases the pair at all.
- ``Pr6FaultIn`` is the PR 6 bug: the fault-in path acquires budget,
  runs the risky decode, and only releases afterwards — an exception
  in the decode leaks the charge even though the normal path balances.
- ``ReserveMisuse`` calls the budget's ``reserve`` context manager as
  a plain function, so its pairing never engages.
"""


class Pr2FallbackAttach:
    def __init__(self, tracker, segments):
        self.tracker = tracker
        self.segments = segments

    def attach_all(self):
        handles = []
        for segment in self.segments:
            handle = segment.attach()
            self.tracker.allocate("shm", handle.size)
            handles.append(handle)
        return handles

    def fallback(self):
        # Pre-fix PR 2: replays from disk but the shm charges made by
        # attach_all are simply forgotten — no tracker.free anywhere.
        self.segments = []
        return self.replay_from_disk()

    def replay_from_disk(self):
        return []


class Pr6FaultIn:
    def __init__(self, budget, tracker):
        self._budget = budget
        self.tracker = tracker

    def fault_block(self, desc):
        self._budget.acquire(desc.size)
        block = desc.decode()  # raises on a corrupt block
        block.verify()
        self._budget.release(desc.size)
        return block

    def charge_cache(self, nbytes):
        self._charge(nbytes)
        self.evict_to_fit()  # can raise mid-eviction
        self._discharge(nbytes)

    def _charge(self, nbytes):
        self.used = getattr(self, "used", 0) + nbytes

    def _discharge(self, nbytes):
        self.used -= nbytes

    def evict_to_fit(self):
        pass


class ReserveMisuse:
    def __init__(self, budget):
        self._budget = budget

    def start(self, nbytes):
        guard = self._budget.reserve(nbytes)
        return guard
