"""Known-bad guarded-by fixture — RL301 and RL302 fire."""

import threading


class Counter:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0
        self.history = []

    def bump(self) -> None:
        self.value += 1  # RL301: unguarded write
        self.history.append(self.value)  # RL301 (append) + RL302 (value read)

    def peek(self) -> int:
        return self.value  # RL302: unguarded read
