"""Known-bad fallback fixture — RL501, RL502 and RL503 fire."""


def recover_tier(source) -> None:
    try:
        source.load()
    except Exception:  # RL501: swallowed without routing
        source.reset()


def recover_quietly(source) -> None:
    try:
        source.load()
    except ValueError:  # RL502: pass-only handler
        pass


def recover_rows(source) -> int:
    rows = source.count()
    if rows < 0:
        raise RuntimeError("negative row count")  # RL503: untyped raise
    return rows
