"""Fixture: balanced resource handling reprolint must accept.

Every idiom the real tree uses: try/finally in the same function,
charge-then-immediate-try/finally, cross-method handoff (publish
charges, finish frees), the ``with reserve(...)`` context manager,
and an explicitly documented handoff pragma.
"""


class BalancedFaultIn:
    def __init__(self, budget, tracker):
        self._budget = budget
        self.tracker = tracker

    def fault_block(self, desc):
        self._budget.acquire(desc.size)
        held = desc.size
        try:
            block = desc.decode()
            block.verify()
            return block
        finally:
            self._budget.release(held)

    def copy_out(self, table):
        estimate = table.nbytes
        self._budget.acquire(estimate)
        held = estimate
        try:
            segment = table.pack()
            self.tracker.allocate("shm", segment.size)
            if segment.size > estimate:
                self._budget.release(held)
                held = 0
                self._budget.acquire(segment.size)
                held = segment.size
            return segment
        except Exception:
            self.tracker.free("shm", 0)
            raise
        finally:
            self._budget.release(held)

    def reserved_restore(self, record):
        with self._budget.reserve(record.used_bytes):
            return record.decode()


class HandoffLifecycle:
    """Charges in one method, frees in another — the publish/finish idiom."""

    def __init__(self, tracker):
        self.tracker = tracker

    def publish(self, segments):
        for segment in segments:
            self.tracker.allocate("shm", segment.size)

    def finish(self, segments):
        for segment in segments:
            self.tracker.free("shm", segment.size)


class DocumentedHandoff:
    def __init__(self, engine):
        self.engine = engine

    def adopt(self, block):
        # Ownership moves to the engine's heap accounting; the matching
        # free happens in the engine's discard path, another module.
        self.engine.tracker.allocate("heap", block.nbytes)  # reprolint: handoff
        self.engine.adopt(block)
