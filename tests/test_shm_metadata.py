"""Tests for the per-leaf metadata block and the valid-bit protocol."""

import pytest

from repro.shm.layout import SHM_LAYOUT_VERSION
from repro.shm.metadata import LeafMetadata, TableSegmentRecord, metadata_segment_name
from repro.shm.segment import ShmSegment, segment_exists


class TestMetadata:
    def test_fixed_location_is_derivable(self):
        assert metadata_segment_name("ns", "3") == "ns-leaf-3-meta"

    def test_create_starts_invalid(self, shm_namespace):
        meta = LeafMetadata.create(shm_namespace, "0", SHM_LAYOUT_VERSION)
        try:
            assert meta.valid is False
            assert meta.layout_version == SHM_LAYOUT_VERSION
            assert meta.records == []
        finally:
            meta.unlink()

    def test_valid_bit_flips_in_place(self, shm_namespace):
        meta = LeafMetadata.create(shm_namespace, "0", 1)
        try:
            meta.set_valid(True)
            assert meta.valid is True
            meta.set_valid(False)
            assert meta.valid is False
        finally:
            meta.unlink()

    def test_records_roundtrip(self, shm_namespace):
        meta = LeafMetadata.create(shm_namespace, "0", 1)
        try:
            records = [
                TableSegmentRecord("events", "seg-0", 1024, 500, 20),
                TableSegmentRecord("errors", "seg-1", 64, 7, 0),
            ]
            meta.set_records(records)
            assert meta.records == records
        finally:
            meta.unlink()

    def test_set_records_preserves_valid_bit(self, shm_namespace):
        meta = LeafMetadata.create(shm_namespace, "0", 1)
        try:
            meta.set_valid(True)
            meta.set_records([TableSegmentRecord("t", "s", 1)])
            assert meta.valid is True
            assert meta.layout_version == 1
        finally:
            meta.unlink()

    def test_attach_sees_other_handle_state(self, shm_namespace):
        meta = LeafMetadata.create(shm_namespace, "0", 7)
        other = LeafMetadata.attach(shm_namespace, "0")
        try:
            meta.set_valid(True)
            assert other.valid is True
            assert other.layout_version == 7
        finally:
            other.close()
            meta.unlink()

    def test_exists(self, shm_namespace):
        assert not LeafMetadata.exists(shm_namespace, "0")
        meta = LeafMetadata.create(shm_namespace, "0", 1)
        assert LeafMetadata.exists(shm_namespace, "0")
        meta.unlink()
        assert not LeafMetadata.exists(shm_namespace, "0")

    def test_attach_missing_raises(self, shm_namespace):
        from repro.errors import ShmError

        with pytest.raises(ShmError):
            LeafMetadata.attach(shm_namespace, "nothing")

    def test_unlink_all_removes_table_segments(self, shm_namespace):
        seg_a = ShmSegment.create(f"{shm_namespace}-t0", 32)
        seg_b = ShmSegment.create(f"{shm_namespace}-t1", 32)
        seg_a.close()
        seg_b.close()
        meta = LeafMetadata.create(shm_namespace, "0", 1)
        meta.set_records(
            [
                TableSegmentRecord("a", f"{shm_namespace}-t0", 32),
                TableSegmentRecord("b", f"{shm_namespace}-t1", 32),
            ]
        )
        meta.unlink_all()
        assert not segment_exists(f"{shm_namespace}-t0")
        assert not segment_exists(f"{shm_namespace}-t1")
        assert not LeafMetadata.exists(shm_namespace, "0")

    def test_unlink_all_tolerates_missing_segments(self, shm_namespace):
        meta = LeafMetadata.create(shm_namespace, "0", 1)
        meta.set_records([TableSegmentRecord("a", f"{shm_namespace}-gone", 32)])
        meta.unlink_all()  # must not raise
        assert not LeafMetadata.exists(shm_namespace, "0")
