"""The paper's scenario, for real: two processes whose lifetimes do not
overlap hand a database over through shared memory.

The old process builds tables, runs the Figure-6 shutdown, and *exits*.
A brand-new Python process then runs the Figure-7 restore and answers a
query.  No bytes travel through disk on the happy path.
"""

import json
import subprocess
import sys
import textwrap



def run_child(source: str) -> str:
    result = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(source)],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestCrossProcessRestart:
    def test_full_restart_across_real_processes(self, shm_namespace, tmp_path):
        namespace = shm_namespace
        backup_dir = tmp_path / "backup"
        old_process = f"""
            from repro import DiskBackup, LeafServer, ManualClock

            leaf = LeafServer(
                "0",
                backup=DiskBackup({str(backup_dir)!r}),
                namespace={namespace!r},
                clock=ManualClock(1000.0),
                rows_per_block=64,
            )
            leaf.start()
            leaf.add_rows(
                "events",
                [{{"time": 1000 + i, "host": f"h{{i % 5}}", "v": float(i)}}
                 for i in range(500)],
            )
            report = leaf.shutdown(use_shm=True)
            assert report is not None
            print(report.rows)
        """
        out = run_child(old_process)
        assert out.strip() == "500"

        new_process = f"""
            import json
            from repro import (
                Aggregation, DiskBackup, LeafServer, ManualClock, Query,
                RecoveryMethod,
            )
            from repro.query.aggregate import merge_leaf_results

            leaf = LeafServer(
                "0",
                backup=DiskBackup({str(backup_dir)!r}),
                namespace={namespace!r},
                clock=ManualClock(2000.0),
                rows_per_block=64,
            )
            report = leaf.start()
            query = Query(
                "events",
                aggregations=(Aggregation("count"), Aggregation("max", "v")),
            )
            execution = leaf.query(query)
            result = merge_leaf_results(query, [execution.partial], 1)
            print(json.dumps({{
                "method": report.method.value,
                "rows": report.rows,
                "count": result.rows[0].values["count(*)"],
                "max_v": result.rows[0].values["max(v)"],
            }}))
        """
        payload = json.loads(run_child(new_process))
        assert payload["method"] == "shared_memory"
        assert payload["rows"] == 500
        assert payload["count"] == 500
        assert payload["max_v"] == 499.0

    def test_killed_process_leaves_invalid_state_next_boot_uses_disk(
        self, shm_namespace, tmp_path
    ):
        """The old process dies mid-copy (before the valid bit): its
        replacement must recover from disk and still see the synced data."""
        namespace = shm_namespace
        backup_dir = tmp_path / "backup"
        dying_process = f"""
            import sys
            from repro import DiskBackup, LeafServer, ManualClock

            leaf = LeafServer(
                "0",
                backup=DiskBackup({str(backup_dir)!r}),
                namespace={namespace!r},
                clock=ManualClock(1000.0),
                rows_per_block=64,
            )
            leaf.start()
            leaf.add_rows("events", [{{"time": i}} for i in range(300)])
            leaf.sync_to_disk()
            # Simulate the kill: run the copy but die before the commit.
            def die(point):
                if point == "backup:before_valid":
                    import os
                    os._exit(9)
            leaf.engine._fault = die
            leaf.shutdown(use_shm=True)
        """
        result = subprocess.run(
            [sys.executable, "-c", textwrap.dedent(dying_process)],
            capture_output=True,
            timeout=120,
        )
        assert result.returncode == 9

        surviving_process = f"""
            from repro import DiskBackup, LeafServer, ManualClock
            leaf = LeafServer(
                "0",
                backup=DiskBackup({str(backup_dir)!r}),
                namespace={namespace!r},
                clock=ManualClock(2000.0),
                rows_per_block=64,
            )
            report = leaf.start()
            print(report.method.value, leaf.leafmap.row_count)
        """
        out = run_child(surviving_process).split()
        # The dying process sealed and synced before the kill, so its
        # replacement gets the snapshot tier — still disk, never shm.
        assert out == ["disk_snapshot", "300"]
