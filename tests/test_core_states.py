"""Exhaustive tests of the Figure-5 state machines (invariant 6)."""

import itertools

import pytest

from repro.core.states import (
    LeafBackupMachine,
    LeafBackupState,
    LeafRestoreMachine,
    LeafRestoreState,
    TableBackupMachine,
    TableBackupState,
    TableRestoreMachine,
    TableRestoreState,
)
from repro.errors import StateError

LEGAL = {
    LeafBackupMachine: {
        (LeafBackupState.ALIVE, LeafBackupState.COPY_TO_SHM),
        (LeafBackupState.COPY_TO_SHM, LeafBackupState.EXIT),
    },
    LeafRestoreMachine: {
        (LeafRestoreState.INIT, LeafRestoreState.MEMORY_RECOVERY),
        (LeafRestoreState.INIT, LeafRestoreState.REPLICA_RECOVERY),
        (LeafRestoreState.INIT, LeafRestoreState.DISK_SNAPSHOT_RECOVERY),
        (LeafRestoreState.INIT, LeafRestoreState.DISK_RECOVERY),
        (LeafRestoreState.MEMORY_RECOVERY, LeafRestoreState.ALIVE),
        (LeafRestoreState.MEMORY_RECOVERY, LeafRestoreState.MEMORY_SERVING),
        (LeafRestoreState.MEMORY_RECOVERY, LeafRestoreState.REPLICA_RECOVERY),
        (LeafRestoreState.MEMORY_RECOVERY, LeafRestoreState.DISK_SNAPSHOT_RECOVERY),
        (LeafRestoreState.MEMORY_RECOVERY, LeafRestoreState.DISK_RECOVERY),
        (LeafRestoreState.MEMORY_SERVING, LeafRestoreState.ALIVE),
        (LeafRestoreState.MEMORY_SERVING, LeafRestoreState.REPLICA_RECOVERY),
        (LeafRestoreState.MEMORY_SERVING, LeafRestoreState.DISK_SNAPSHOT_RECOVERY),
        (LeafRestoreState.MEMORY_SERVING, LeafRestoreState.DISK_RECOVERY),
        (LeafRestoreState.REPLICA_RECOVERY, LeafRestoreState.ALIVE),
        (LeafRestoreState.REPLICA_RECOVERY, LeafRestoreState.DISK_SNAPSHOT_RECOVERY),
        (LeafRestoreState.REPLICA_RECOVERY, LeafRestoreState.DISK_RECOVERY),
        (LeafRestoreState.DISK_SNAPSHOT_RECOVERY, LeafRestoreState.ALIVE),
        (LeafRestoreState.DISK_SNAPSHOT_RECOVERY, LeafRestoreState.DISK_RECOVERY),
        (LeafRestoreState.DISK_RECOVERY, LeafRestoreState.ALIVE),
    },
    TableBackupMachine: {
        (TableBackupState.ALIVE, TableBackupState.PREPARE),
        (TableBackupState.PREPARE, TableBackupState.COPY_TO_SHM),
        (TableBackupState.COPY_TO_SHM, TableBackupState.DONE),
    },
    TableRestoreMachine: {
        (TableRestoreState.INIT, TableRestoreState.MEMORY_RECOVERY),
        (TableRestoreState.INIT, TableRestoreState.REPLICA_RECOVERY),
        (TableRestoreState.INIT, TableRestoreState.DISK_SNAPSHOT_RECOVERY),
        (TableRestoreState.INIT, TableRestoreState.DISK_RECOVERY),
        (TableRestoreState.REPLICA_RECOVERY, TableRestoreState.ALIVE),
        (TableRestoreState.MEMORY_RECOVERY, TableRestoreState.ALIVE),
        (TableRestoreState.MEMORY_RECOVERY, TableRestoreState.DISK_SNAPSHOT_RECOVERY),
        (TableRestoreState.MEMORY_RECOVERY, TableRestoreState.DISK_RECOVERY),
        (TableRestoreState.DISK_SNAPSHOT_RECOVERY, TableRestoreState.ALIVE),
        (TableRestoreState.DISK_SNAPSHOT_RECOVERY, TableRestoreState.DISK_RECOVERY),
        (TableRestoreState.DISK_RECOVERY, TableRestoreState.ALIVE),
    },
}

STATE_ENUMS = {
    LeafBackupMachine: LeafBackupState,
    LeafRestoreMachine: LeafRestoreState,
    TableBackupMachine: TableBackupState,
    TableRestoreMachine: TableRestoreState,
}


def drive_to(machine_cls, target):
    """Walk a fresh machine along legal edges to reach ``target``."""
    machine = machine_cls()
    if machine.state == target:
        return machine
    # BFS over the legal edge set.
    frontier = [(machine.state, [])]
    seen = {machine.state}
    while frontier:
        state, path = frontier.pop(0)
        for src, dst in LEGAL[machine_cls]:
            if src == state and dst not in seen:
                if dst == target:
                    for hop in path + [dst]:
                        machine.transition(hop)
                    return machine
                seen.add(dst)
                frontier.append((dst, path + [dst]))
    raise AssertionError(f"{target} unreachable")


@pytest.mark.parametrize("machine_cls", list(LEGAL))
class TestExhaustiveTransitions:
    def test_only_figure5_edges_are_possible(self, machine_cls):
        """Every (state, state) pair either matches Figure 5 or raises."""
        states = list(STATE_ENUMS[machine_cls])
        reachable = {machine_cls().state}
        for src, dst in LEGAL[machine_cls]:
            reachable.add(src)
            reachable.add(dst)
        for src, dst in itertools.product(states, states):
            if src not in reachable:
                continue
            machine = drive_to(machine_cls, src)
            if (src, dst) in LEGAL[machine_cls]:
                machine.transition(dst)
                assert machine.state == dst
            else:
                with pytest.raises(StateError):
                    machine.transition(dst)

    def test_history_records_every_hop(self, machine_cls):
        machine = machine_cls()
        start = machine.state
        for src, dst in LEGAL[machine_cls]:
            if src == start:
                machine.transition(dst)
                break
        assert machine.history[0] == start
        assert machine.history[-1] == machine.state
        assert len(machine.history) == 2


class TestTerminalStates:
    def test_backup_machines_end_in_terminal(self):
        leaf = LeafBackupMachine()
        leaf.transition(LeafBackupState.COPY_TO_SHM)
        leaf.transition(LeafBackupState.EXIT)
        assert leaf.is_terminal

    def test_restore_ends_alive(self):
        leaf = LeafRestoreMachine()
        leaf.transition(LeafRestoreState.MEMORY_RECOVERY)
        leaf.transition(LeafRestoreState.ALIVE)
        assert leaf.is_terminal

    def test_exception_path_reaches_alive_via_disk(self):
        leaf = LeafRestoreMachine()
        leaf.transition(LeafRestoreState.MEMORY_RECOVERY)
        leaf.transition(LeafRestoreState.DISK_RECOVERY)
        leaf.transition(LeafRestoreState.ALIVE)
        assert leaf.history == [
            LeafRestoreState.INIT,
            LeafRestoreState.MEMORY_RECOVERY,
            LeafRestoreState.DISK_RECOVERY,
            LeafRestoreState.ALIVE,
        ]


class TestRequire:
    def test_require_passes_in_listed_state(self):
        machine = TableBackupMachine()
        machine.require(TableBackupState.ALIVE)

    def test_require_raises_otherwise(self):
        machine = TableBackupMachine()
        with pytest.raises(StateError):
            machine.require(TableBackupState.DONE, TableBackupState.PREPARE)
