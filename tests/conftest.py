"""Shared fixtures.

Every test that touches shared memory gets a unique namespace, and the
fixture asserts at teardown that no segment with that namespace survived
— leaked segments are real bugs in lifetime management, not test noise.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.disk.backup import DiskBackup
from repro.util.clock import ManualClock

SHM_DIR = Path("/dev/shm")


# ----------------------------------------------------------------------
# reprosan — runtime lock-order / resource-balance sanitizer
# ----------------------------------------------------------------------


def pytest_addoption(parser):
    group = parser.getgroup("reprosan")
    group.addoption(
        "--reprosan",
        action="store_true",
        default=False,
        help="instrument repro locks, budgets, and trackers; fail tests "
        "on observed lock-order cycles or unreleased budget bytes",
    )
    group.addoption(
        "--reprosan-report",
        default="reprosan.json",
        metavar="FILE",
        help="where to write the sanitizer JSON report "
        "(feeds `repro lint --san-report`)",
    )


def pytest_configure(config):
    if config.getoption("--reprosan"):
        from repro.analysis import reprosan

        config._reprosan = reprosan.install(
            root=Path(__file__).resolve().parent.parent
        )


def pytest_unconfigure(config):
    san = getattr(config, "_reprosan", None)
    if san is not None:
        san.write_report(config.getoption("--reprosan-report"))
        san.uninstall()
        config._reprosan = None


@pytest.fixture(autouse=True)
def _reprosan_guard(request):
    san = getattr(request.config, "_reprosan", None)
    if san is None:
        yield
        return
    san.begin_test(request.node.nodeid)
    yield
    record = san.end_test()
    assert not record["problems"], "reprosan: " + "; ".join(record["problems"])


@pytest.fixture
def shm_namespace():
    """A unique shared-memory namespace, leak-checked at teardown."""
    namespace = f"reprotest-{uuid.uuid4().hex[:10]}"
    yield namespace
    if SHM_DIR.is_dir():
        leaked = [p.name for p in SHM_DIR.iterdir() if p.name.startswith(namespace)]
        for name in leaked:
            try:
                os.unlink(SHM_DIR / name)
            except OSError:
                pass
        assert not leaked, f"leaked shared memory segments: {leaked}"


@pytest.fixture
def dirty_shm_namespace():
    """Like ``shm_namespace`` but only cleans up, without asserting —
    for tests that deliberately leave segments behind mid-scenario."""
    namespace = f"reprotest-{uuid.uuid4().hex[:10]}"
    yield namespace
    if SHM_DIR.is_dir():
        for path in SHM_DIR.iterdir():
            if path.name.startswith(namespace):
                try:
                    os.unlink(path)
                except OSError:
                    pass


@pytest.fixture
def clock():
    return ManualClock(1_390_000_000.0)


@pytest.fixture(scope="session")
def repo_root():
    """The repository checkout the analysis tests lint."""
    return Path(__file__).resolve().parent.parent


@pytest.fixture
def backup(tmp_path):
    return DiskBackup(tmp_path / "backup")


def make_leafmap(clock, rows_per_block=50, tables=("events",), rows=120):
    """A small populated leaf map for restart tests."""
    leafmap = LeafMap(clock=clock, rows_per_block=rows_per_block)
    for t_index, name in enumerate(tables):
        table = leafmap.get_or_create(name)
        table.add_rows(
            {
                "time": 1000 + t_index * 10_000 + i,
                "host": f"web{i % 7:02d}",
                "latency_ms": float(i % 250) / 2,
                "tags": ["prod", "canary"][: (i % 3)],
            }
            for i in range(rows)
        )
    return leafmap


@pytest.fixture
def small_leafmap(clock):
    return make_leafmap(clock)
