"""Tests for varints, zigzag, and the buffer reader/writer."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CorruptionError
from repro.util.binary import (
    BufferReader,
    BufferWriter,
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)


class TestVarint:
    def test_zero_is_one_byte(self):
        assert encode_varint(0) == b"\x00"

    def test_small_values_are_one_byte(self):
        assert encode_varint(127) == b"\x7f"

    def test_128_needs_two_bytes(self):
        assert encode_varint(128) == b"\x80\x01"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_varint(-1)

    def test_roundtrip_known_values(self):
        for value in (0, 1, 127, 128, 300, 2**32, 2**63 - 1):
            decoded, offset = decode_varint(encode_varint(value))
            assert decoded == value
            assert offset == len(encode_varint(value))

    def test_truncated_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\x80")

    def test_overlong_raises(self):
        with pytest.raises(CorruptionError):
            decode_varint(b"\xff" * 11)

    def test_decode_at_offset(self):
        buf = b"\xaa" + encode_varint(300)
        value, offset = decode_varint(buf, 1)
        assert value == 300
        assert offset == len(buf)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        assert decode_varint(encode_varint(value))[0] == value


class TestZigzag:
    def test_known_mapping(self):
        assert [zigzag_encode(v) for v in (0, -1, 1, -2, 2)] == [0, 1, 2, 3, 4]

    @given(st.integers(min_value=-(2**62), max_value=2**62))
    def test_roundtrip_property(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    def test_small_magnitudes_stay_small(self):
        assert zigzag_encode(-5) < 16
        assert zigzag_encode(5) < 16


class TestBufferWriter:
    def test_offset_tracks_bytes(self):
        writer = BufferWriter()
        writer.write_u32(7)
        assert writer.offset == 4
        writer.write_str("ab")
        assert writer.offset == 7  # varint(2) + 2 bytes

    def test_patching(self):
        writer = BufferWriter()
        slot = writer.reserve_u64()
        writer.write_bytes(b"xyz")
        writer.patch_u64(slot, 42)
        reader = BufferReader(writer.getvalue())
        assert reader.read_u64() == 42
        assert reader.read_bytes(3) == b"xyz"

    def test_all_scalar_types_roundtrip(self):
        writer = BufferWriter()
        writer.write_u8(255)
        writer.write_u16(65535)
        writer.write_u32(2**32 - 1)
        writer.write_u64(2**64 - 1)
        writer.write_i64(-(2**63))
        writer.write_f64(3.5)
        reader = BufferReader(writer.getvalue())
        assert reader.read_u8() == 255
        assert reader.read_u16() == 65535
        assert reader.read_u32() == 2**32 - 1
        assert reader.read_u64() == 2**64 - 1
        assert reader.read_i64() == -(2**63)
        assert reader.read_f64() == 3.5
        assert reader.remaining == 0


class TestBufferReader:
    def test_read_past_end_raises(self):
        reader = BufferReader(b"ab")
        with pytest.raises(CorruptionError):
            reader.read_u32()

    def test_seek_bounds(self):
        reader = BufferReader(b"abcd")
        reader.seek(4)
        assert reader.remaining == 0
        with pytest.raises(CorruptionError):
            reader.seek(5)
        with pytest.raises(CorruptionError):
            reader.seek(-1)

    def test_len_prefixed_roundtrip(self):
        writer = BufferWriter()
        writer.write_len_prefixed(b"hello")
        assert BufferReader(writer.getvalue()).read_len_prefixed() == b"hello"

    def test_invalid_utf8_raises_corruption(self):
        writer = BufferWriter()
        writer.write_len_prefixed(b"\xff\xfe")
        with pytest.raises(CorruptionError):
            BufferReader(writer.getvalue()).read_str()

    def test_read_view_is_zero_copy(self):
        buf = bytearray(b"abcdef")
        reader = BufferReader(buf)
        view = reader.read_view(3)
        buf[0] = ord("z")
        assert bytes(view) == b"zbc"

    @given(st.text(max_size=200))
    def test_string_roundtrip_property(self, text):
        writer = BufferWriter()
        writer.write_str(text)
        assert BufferReader(writer.getvalue()).read_str() == text
