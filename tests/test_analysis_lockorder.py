"""Fixture tests for the lock-order/atomicity checker (RL7xx)."""

from pathlib import Path

from repro.analysis.checkers import lockorder
from repro.analysis.loader import load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(*names):
    return lockorder.check(load_files([FIXTURES / name for name in names]))


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.symbol) for f in run("lockorder_bad.py")}
        assert found == {
            # publish holds Directory._lock and calls into the budget;
            # rebalance holds Budget._lock and calls back — a cycle
            ("RL701", "Budget._lock -> Directory._lock -> Budget._lock"),
            # blocking work under a held lock
            ("RL702", "Directory.publish:segment.attach"),
            ("RL702", "Directory.fault_one:self._budget.acquire"),
            # gate check with an unguarded dependent call
            ("RL703", "Router.dispatch:leaf.accepts_queries"),
        }

    def test_cycle_message_names_both_orders(self):
        cycles = [f for f in run("lockorder_bad.py") if f.code == "RL701"]
        assert len(cycles) == 1
        assert "opposite orders" in cycles[0].message


class TestGoodFixture:
    def test_silent(self):
        """One-way nesting, condition-wait on the held lock, slow work
        hoisted out of the section, and both accepted check-then-act
        forms (lock-held, StateError-caught) raise nothing."""
        assert run("lockorder_good.py") == []


class TestRealTree:
    CONCURRENCY_FILES = (
        "src/repro/core/lazyrestore.py",
        "src/repro/core/parallel.py",
        "src/repro/core/sharedbudget.py",
        "src/repro/core/engine.py",
        "src/repro/server/leaf.py",
        "src/repro/server/aggregator.py",
        "src/repro/util/memtrack.py",
    )

    def _check(self, repo_root, *relpaths):
        return lockorder.check(
            load_files([repo_root / rel for rel in relpaths], root=repo_root)
        )

    def test_lock_graph_is_acyclic(self, repo_root):
        """LeafServer._lock -> LazyRestore._lock -> budget is the only
        nesting direction; no RL701 anywhere in the concurrency layers."""
        findings = self._check(repo_root, *self.CONCURRENCY_FILES)
        assert [f for f in findings if f.code == "RL701"] == []

    def test_only_the_two_designed_blocking_calls_remain(self, repo_root):
        """The directory attach and the fault-in budget wait are the
        paper's designed backpressure points (baselined); nothing else
        blocks under a lock."""
        findings = self._check(repo_root, *self.CONCURRENCY_FILES)
        assert {f.symbol for f in findings if f.code == "RL702"} == {
            "LazyRestore._publish_directory:ShmSegment.attach",
            "LazyRestore._fault_block:self._budget.acquire",
        }

    def test_aggregator_handles_the_gate_race(self, repo_root):
        """Regression: leaf.query() is wrapped in the StateError skip,
        so the accepts_queries gate no longer check-then-acts."""
        findings = self._check(repo_root, *self.CONCURRENCY_FILES)
        assert [f for f in findings if f.code == "RL703"] == []

    def test_colcache_is_clean(self, repo_root):
        """colcache is outside the default scan dirs; decode happens
        outside its lock by design — keep it that way."""
        assert self._check(repo_root, "src/repro/columnstore/colcache.py") == []
