"""The paper's second benefit: heap format evolves, shm layout stays.

"Copying also [...] allows us to modify the in-memory format (in heap
memory) and rollover to the new format using shared memory" (§1, §6:
"separating the heap data structures from the shared memory data
structures means that we can modify the heap data format and restart
using shared memory").

In this implementation the heap "format" includes policy choices like
rows-per-block; the shared memory layout is versioned independently.
These tests pin both directions: heap policy changes ride through an
shm restart, and an shm layout change refuses the old segments.
"""

from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.shm.layout import SHM_LAYOUT_VERSION


class TestHeapFormatEvolution:
    def test_new_binary_with_different_block_policy_restores_via_shm(
        self, shm_namespace, tmp_path, clock
    ):
        """Old binary: 32-row blocks.  New binary: 128-row blocks.  The
        restore succeeds from shared memory; recovered blocks keep their
        old shape (they were sealed under the old policy) while newly
        ingested data seals under the new one."""
        backup = DiskBackup(tmp_path / "b")
        old_map = LeafMap(clock=clock, rows_per_block=32)
        old_map.get_or_create("t").add_rows({"time": i} for i in range(96))
        old_map.seal_all()
        snapshot = old_map.snapshot_rows()
        RestartEngine("e", namespace=shm_namespace, backup=backup, clock=clock).backup_to_shm(
            old_map
        )

        new_map = LeafMap(clock=clock, rows_per_block=128)  # the "new heap format"
        report = RestartEngine(
            "e", namespace=shm_namespace, backup=backup, clock=clock
        ).restore(new_map)
        assert report.method is RecoveryMethod.SHARED_MEMORY
        assert new_map.snapshot_rows() == snapshot
        table = new_map.get_table("t")
        assert table.block_count == 3  # old 32-row blocks survived intact
        table.add_rows({"time": 1000 + i} for i in range(128))
        assert table.block_count == 4  # new data sealed under the new policy
        assert table.blocks[-1].row_count == 128

    def test_changed_shm_layout_version_refuses_old_segments(
        self, shm_namespace, tmp_path, clock
    ):
        """The guard for the *other* format: when the shared memory
        layout itself changes, the version number routes to disk."""
        backup = DiskBackup(tmp_path / "b")
        old_map = LeafMap(clock=clock, rows_per_block=32)
        old_map.get_or_create("t").add_rows({"time": i} for i in range(50)) 
        backup.sync_leafmap(old_map)
        RestartEngine(
            "v", namespace=shm_namespace, backup=backup, clock=clock,
            layout_version=SHM_LAYOUT_VERSION,
        ).backup_to_shm(old_map)
        new_map = LeafMap(clock=clock, rows_per_block=32)
        report = RestartEngine(
            "v", namespace=shm_namespace, backup=backup, clock=clock,
            layout_version=SHM_LAYOUT_VERSION + 5,
        ).restore(new_map)
        assert report.method is RecoveryMethod.DISK
        assert new_map.get_table("t").row_count == 50

    def test_schema_growth_across_restart(self, shm_namespace, tmp_path, clock):
        """New columns appear after the upgrade: old blocks keep their
        old schemas, new blocks carry the new column — 'different row
        blocks may have different schemas' (§2.1)."""
        backup = DiskBackup(tmp_path / "b")
        old_map = LeafMap(clock=clock, rows_per_block=16)
        old_map.get_or_create("t").add_rows({"time": i, "old": "x"} for i in range(16))
        RestartEngine("s", namespace=shm_namespace, backup=backup, clock=clock).backup_to_shm(
            old_map
        )
        new_map = LeafMap(clock=clock, rows_per_block=16)
        RestartEngine("s", namespace=shm_namespace, backup=backup, clock=clock).restore(
            new_map
        )
        table = new_map.get_table("t")
        table.add_rows({"time": 100 + i, "old": "y", "brand_new": 1.5} for i in range(16))
        rows = table.to_rows()
        assert "brand_new" not in rows[0]  # old block, old schema
        assert rows[-1]["brand_new"] == 1.5  # new block, new schema
