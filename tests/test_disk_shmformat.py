"""Tests for the shm-layout-on-disk format (paper §6 / experiment E12)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnstore.leafmap import LeafMap
from repro.disk.shmformat import (
    read_table_shm_format,
    read_table_snapshot,
    recover_leafmap_shm_format,
    snapshot_filename,
    write_leafmap_shm_format,
    write_table_shm_format,
)
from repro.errors import ChecksumMismatchError, CorruptionError
from repro.util.clock import ManualClock


def make_map():
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
    table = leafmap.get_or_create("events")
    table.add_rows({"time": i, "host": f"h{i % 2}"} for i in range(25))
    leafmap.seal_all()
    return leafmap


class TestShmDiskFormat:
    def test_table_roundtrip(self, tmp_path):
        leafmap = make_map()
        blocks = leafmap.get_table("events").blocks
        path = write_table_shm_format(tmp_path, "events", blocks)
        name, recovered = read_table_shm_format(path)
        assert name == "events"
        assert [b.to_rows() for b in recovered] == [b.to_rows() for b in blocks]

    def test_leafmap_roundtrip(self, tmp_path):
        leafmap = make_map()
        leafmap.get_or_create("other").add_rows([{"time": 9}])
        leafmap.seal_all()
        write_leafmap_shm_format(tmp_path, leafmap)
        recovered = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        total = recover_leafmap_shm_format(tmp_path, recovered)
        assert total == 26
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()

    def test_checksum_detects_corruption(self, tmp_path):
        leafmap = make_map()
        path = write_table_shm_format(
            tmp_path, "events", leafmap.get_table("events").blocks
        )
        raw = bytearray(path.read_bytes())
        raw[-1] ^= 0x01  # anywhere in the body; the envelope CRC covers it all
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumMismatchError):
            read_table_shm_format(path)

    def test_truncation_detected(self, tmp_path):
        leafmap = make_map()
        path = write_table_shm_format(
            tmp_path, "events", leafmap.get_table("events").blocks
        )
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptionError):
            read_table_shm_format(path)

    def test_bad_magic_detected(self, tmp_path):
        leafmap = make_map()
        path = write_table_shm_format(
            tmp_path, "events", leafmap.get_table("events").blocks
        )
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptionError):
            read_table_shm_format(path)

    def test_empty_table(self, tmp_path):
        path = write_table_shm_format(tmp_path, "bare", [])
        name, blocks = read_table_shm_format(path)
        assert name == "bare" and blocks == []


class TestSnapshotEnvelope:
    """Generation and watermark fields of the v2 envelope."""

    def test_generation_and_watermarks_roundtrip(self, tmp_path):
        leafmap = make_map()
        blocks = leafmap.get_table("events").blocks
        path = write_table_shm_format(
            tmp_path,
            "events",
            blocks,
            generation=7,
            rows_ingested=400,
            rows_expired=375,
        )
        snap = read_table_snapshot(path)
        assert snap.table_name == "events"
        assert snap.generation == 7
        assert snap.rows_ingested == 400
        assert snap.rows_expired == 375
        assert snap.row_count == 25

    def test_default_ingest_watermark_counts_block_rows(self, tmp_path):
        leafmap = make_map()
        blocks = leafmap.get_table("events").blocks
        path = write_table_shm_format(tmp_path, "events", blocks, rows_expired=5)
        snap = read_table_snapshot(path)
        assert snap.rows_ingested == 5 + snap.row_count

    def test_empty_table_keeps_watermarks(self, tmp_path):
        """A fully-expired table snapshots to zero blocks but must not
        lose its monotone counters."""
        path = write_table_shm_format(
            tmp_path, "drained", [], generation=3, rows_ingested=90, rows_expired=90
        )
        snap = read_table_snapshot(path)
        assert snap.blocks == []
        assert (snap.generation, snap.rows_ingested, snap.rows_expired) == (3, 90, 90)

    def test_no_tmp_file_left_behind(self, tmp_path):
        leafmap = make_map()
        write_table_shm_format(tmp_path, "events", leafmap.get_table("events").blocks)
        assert not list(tmp_path.glob("*.tmp"))


ODD_NAMES = [
    "dotted.table.name",
    "trailing.",
    "per%cent",
    "spa ce",
    "slash/inside",
    "back\\slash",
    "unicode-π漢字",
    "colon:semi;",
    "..",
]


class TestOddTableNames:
    """The escape scheme must keep any table name filesystem-safe and
    reversible — the name inside the file is authoritative."""

    @pytest.mark.parametrize("name", ODD_NAMES)
    def test_roundtrip_preserves_exact_name(self, tmp_path, name):
        leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        leafmap.get_or_create(name).add_rows({"time": i} for i in range(12))
        leafmap.seal_all()
        path = write_table_shm_format(
            tmp_path, name, leafmap.get_table(name).blocks, generation=2
        )
        assert path.parent == tmp_path  # no surprise subdirectories
        snap = read_table_snapshot(path)
        assert snap.table_name == name
        assert snap.row_count == 12

    def test_escaping_is_injective(self):
        """Names that could collide post-escape must not: '%' itself is
        escaped, so the literal and escaped spellings stay distinct."""
        assert snapshot_filename("a b") != snapshot_filename("a%20b")
        assert snapshot_filename("x/y") != snapshot_filename("x%2fy")

    @settings(max_examples=50, deadline=None)
    @given(
        name=st.text(
            alphabet="abz09-_. %/\\:πµ漢", min_size=1, max_size=24
        ),
        generation=st.integers(min_value=0, max_value=2**60),
    )
    def test_any_name_roundtrips(self, tmp_path_factory, name, generation):
        directory = tmp_path_factory.mktemp("oddnames")
        leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=8)
        leafmap.get_or_create(name).add_rows({"time": i} for i in range(9))
        leafmap.seal_all()
        path = write_table_shm_format(
            directory, name, leafmap.get_table(name).blocks, generation=generation
        )
        snap = read_table_snapshot(path)
        assert snap.table_name == name
        assert snap.generation == generation
        assert [b.to_rows() for b in snap.blocks] == [
            b.to_rows() for b in leafmap.get_table(name).blocks
        ]
