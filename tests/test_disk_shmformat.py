"""Tests for the shm-layout-on-disk format (paper §6 / experiment E12)."""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.disk.shmformat import (
    read_table_shm_format,
    recover_leafmap_shm_format,
    write_leafmap_shm_format,
    write_table_shm_format,
)
from repro.errors import ChecksumMismatchError, CorruptionError
from repro.util.clock import ManualClock


def make_map():
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
    table = leafmap.get_or_create("events")
    table.add_rows({"time": i, "host": f"h{i % 2}"} for i in range(25))
    leafmap.seal_all()
    return leafmap


class TestShmDiskFormat:
    def test_table_roundtrip(self, tmp_path):
        leafmap = make_map()
        blocks = leafmap.get_table("events").blocks
        path = write_table_shm_format(tmp_path, "events", blocks)
        name, recovered = read_table_shm_format(path)
        assert name == "events"
        assert [b.to_rows() for b in recovered] == [b.to_rows() for b in blocks]

    def test_leafmap_roundtrip(self, tmp_path):
        leafmap = make_map()
        leafmap.get_or_create("other").add_rows([{"time": 9}])
        leafmap.seal_all()
        write_leafmap_shm_format(tmp_path, leafmap)
        recovered = LeafMap(clock=ManualClock(0.0), rows_per_block=10)
        total = recover_leafmap_shm_format(tmp_path, recovered)
        assert total == 26
        assert recovered.snapshot_rows() == leafmap.snapshot_rows()

    def test_checksum_detects_corruption(self, tmp_path):
        leafmap = make_map()
        path = write_table_shm_format(
            tmp_path, "events", leafmap.get_table("events").blocks
        )
        raw = bytearray(path.read_bytes())
        raw[40] ^= 0x01
        path.write_bytes(bytes(raw))
        with pytest.raises(ChecksumMismatchError):
            read_table_shm_format(path)

    def test_truncation_detected(self, tmp_path):
        leafmap = make_map()
        path = write_table_shm_format(
            tmp_path, "events", leafmap.get_table("events").blocks
        )
        raw = path.read_bytes()
        path.write_bytes(raw[: len(raw) // 2])
        with pytest.raises(CorruptionError):
            read_table_shm_format(path)

    def test_bad_magic_detected(self, tmp_path):
        leafmap = make_map()
        path = write_table_shm_format(
            tmp_path, "events", leafmap.get_table("events").blocks
        )
        raw = bytearray(path.read_bytes())
        raw[0] ^= 0xFF
        path.write_bytes(bytes(raw))
        with pytest.raises(CorruptionError):
            read_table_shm_format(path)

    def test_empty_table(self, tmp_path):
        path = write_table_shm_format(tmp_path, "bare", [])
        name, blocks = read_table_shm_format(path)
        assert name == "bare" and blocks == []
