"""Tests for the Scribe stand-in and the tailer's routing."""

import random

import pytest

from repro.disk.backup import DiskBackup
from repro.errors import RoutingError
from repro.ingest.scribe import ScribeLog
from repro.ingest.tailer import Tailer
from repro.server.leaf import LeafServer


class TestScribe:
    def test_append_read(self):
        scribe = ScribeLog()
        scribe.append("cat", [{"time": 1}, {"time": 2}])
        rows, cursor = scribe.read("cat", 0)
        assert [r["time"] for r in rows] == [1, 2]
        assert cursor == 2

    def test_cursor_resumes(self):
        scribe = ScribeLog()
        scribe.append("cat", [{"time": i} for i in range(5)])
        rows, cursor = scribe.read("cat", 0, max_rows=2)
        assert len(rows) == 2
        rows, cursor = scribe.read("cat", cursor)
        assert [r["time"] for r in rows] == [2, 3, 4]

    def test_backlog(self):
        scribe = ScribeLog()
        scribe.append("cat", [{"time": i} for i in range(5)])
        assert scribe.backlog("cat", 0) == 5
        assert scribe.backlog("cat", 5) == 0
        assert scribe.backlog("other", 0) == 0

    def test_retention_trims_front(self):
        scribe = ScribeLog(retention_per_category=3)
        scribe.append("cat", [{"time": i} for i in range(5)])
        rows, cursor = scribe.read("cat", 0)
        assert [r["time"] for r in rows] == [2, 3, 4]
        assert cursor == 5

    def test_rows_are_isolated_copies(self):
        scribe = ScribeLog()
        row = {"time": 1}
        scribe.append("cat", [row])
        row["time"] = 99
        got, _ = scribe.read("cat", 0)
        got[0]["time"] = 77
        assert scribe.read("cat", 0)[0][0]["time"] == 1

    def test_bad_retention_rejected(self):
        with pytest.raises(ValueError):
            ScribeLog(retention_per_category=0)


def make_leaves(shm_namespace, tmp_path, clock, n=4, capacity=1 << 20):
    leaves = []
    for index in range(n):
        leaf = LeafServer(
            str(index),
            backup=DiskBackup(tmp_path / f"leaf-{index}"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=100,
            capacity_bytes=capacity,
        )
        leaf.start()
        leaves.append(leaf)
    return leaves


class TestTailerRouting:
    def test_prefers_leaf_with_more_free_memory(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=2)
        # Fill leaf 0 so leaf 1 always has more free memory.
        leaves[0].add_rows("ballast", [{"time": i, "pad": "x" * 50} for i in range(500)])
        scribe = ScribeLog()
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=10, rng=random.Random(1), clock=clock
        )
        for _ in range(20):
            assert tailer.choose_leaf() is leaves[1]

    def test_single_alive_leaf_gets_data(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=2)
        leaves[0].crash()
        scribe = ScribeLog()
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=10, rng=random.Random(2), clock=clock
        )
        assert tailer.choose_leaf() is leaves[1]

    def test_no_leaf_at_all_raises(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=2)
        for leaf in leaves:
            leaf.crash()
        tailer = Tailer(
            ScribeLog(), "t", "t", leaves, batch_rows=10, rng=random.Random(3), clock=clock
        )
        with pytest.raises(RoutingError):
            tailer.choose_leaf()

    def test_recovering_leaf_is_last_resort(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=2)
        for leaf in leaves:
            leaf.crash()
        # Pretend leaf 1 is in disk recovery: it accepts adds.
        from repro.server.leaf import LeafStatus

        leaves[1].status = LeafStatus.RECOVERING_DISK
        tailer = Tailer(
            ScribeLog(), "t", "t", leaves, batch_rows=10, rng=random.Random(4), clock=clock
        )
        assert tailer.choose_leaf() is leaves[1]
        assert tailer.stats.sent_to_recovering == 1

    def test_two_random_choices_balance_load(self, shm_namespace, tmp_path, clock):
        """E10's unit-level shape: power-of-two-choices keeps the max/mean
        rows-per-leaf ratio small."""
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=8)
        scribe = ScribeLog()
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=50, rng=random.Random(5), clock=clock
        )
        scribe.append("t", [{"time": i, "pad": "y" * 30} for i in range(5000)])
        delivered = tailer.drain()
        assert delivered == 5000
        per_leaf = [leaf.leafmap.row_count for leaf in leaves]
        assert sum(per_leaf) == 5000
        assert max(per_leaf) <= 2.0 * (sum(per_leaf) / len(per_leaf))


class TestTailerPumping:
    def test_batch_threshold_triggers_flush(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=2)
        scribe = ScribeLog()
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=100, batch_seconds=1e9,
            rng=random.Random(6), clock=clock,
        )
        scribe.append("t", [{"time": i} for i in range(99)])
        assert tailer.pump_once() == 0  # below both thresholds
        scribe.append("t", [{"time": 99}])
        assert tailer.pump_once() == 100

    def test_time_threshold_triggers_flush(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=2)
        scribe = ScribeLog()
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=1000, batch_seconds=10.0,
            rng=random.Random(7), clock=clock,
        )
        scribe.append("t", [{"time": 1}])
        assert tailer.pump_once() == 0
        clock.advance(11.0)
        assert tailer.pump_once() == 1

    def test_drain_moves_everything(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=3)
        scribe = ScribeLog()
        tailer = Tailer(
            scribe, "t", "t", leaves, batch_rows=64, rng=random.Random(8), clock=clock
        )
        scribe.append("t", [{"time": i} for i in range(777)])
        assert tailer.drain() == 777
        assert tailer.backlog == 0
        assert tailer.stats.rows_sent == 777

    def test_validation(self, shm_namespace, tmp_path, clock):
        leaves = make_leaves(shm_namespace, tmp_path, clock, n=1)
        with pytest.raises(ValueError):
            Tailer(ScribeLog(), "t", "t", leaves, batch_rows=0)
        with pytest.raises(ValueError):
            Tailer(ScribeLog(), "t", "t", [])
