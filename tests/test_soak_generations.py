"""Soak scenarios: many restart generations, interleaved ingest/expiry.

The paper's deployment cadence is weekly forever; the mechanism must be
idempotent across arbitrarily many generations — data identical, no
shared memory accumulation, watermarks consistent with the disk backup.
"""


from repro.columnstore.leafmap import LeafMap
from repro.core.engine import RecoveryMethod, RestartEngine
from repro.disk.backup import DiskBackup
from repro.server.leaf import LeafServer

from tests.conftest import SHM_DIR


class TestManyGenerations:
    def test_ten_shm_generations_preserve_everything(
        self, shm_namespace, tmp_path, clock
    ):
        backup = DiskBackup(tmp_path / "backup")
        leafmap = LeafMap(clock=clock, rows_per_block=32)
        leafmap.get_or_create("t").add_rows({"time": i} for i in range(100))
        leafmap.seal_all()
        snapshot = leafmap.snapshot_rows()
        for generation in range(10):
            engine = RestartEngine(
                "g", namespace=shm_namespace, backup=backup, clock=clock
            )
            engine.backup_to_shm(leafmap)
            leafmap = LeafMap(clock=clock, rows_per_block=32)
            report = RestartEngine(
                "g", namespace=shm_namespace, backup=backup, clock=clock
            ).restore(leafmap)
            assert report.method is RecoveryMethod.SHARED_MEMORY, generation
            assert leafmap.snapshot_rows() == snapshot, generation
        # Nothing accumulated in /dev/shm.
        leaked = [p.name for p in SHM_DIR.iterdir() if p.name.startswith(shm_namespace)]
        assert leaked == []

    def test_generations_with_ingest_and_expiry(self, shm_namespace, tmp_path, clock):
        """Each generation adds fresh rows and expires old ones; the
        surviving window is exactly what every generation's scan says."""
        leaf = LeafServer(
            "s",
            backup=DiskBackup(tmp_path / "backup"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=32,
        )
        leaf.start()
        base = int(clock.now())
        for generation in range(6):
            leaf.add_rows(
                "t",
                [{"time": base + generation * 100 + i} for i in range(50)],
            )
            leaf.leafmap.seal_all()
            if generation >= 2:
                cutoff = base + (generation - 2) * 100
                for table in leaf.leafmap:
                    table.expire_before(cutoff)
                    leaf.backup.record_expiry(
                        table.name, cutoff, rows_expired=table.total_rows_expired
                    )
            leaf.sync_to_disk()
            leaf.shutdown(use_shm=True)
            leaf = LeafServer(
                "s",
                backup=DiskBackup(tmp_path / "backup"),
                namespace=shm_namespace,
                clock=clock,
                rows_per_block=32,
            )
            report = leaf.start()
            assert report.method is RecoveryMethod.SHARED_MEMORY
        # Generations 0..5 ingested 300 rows; cutoff ended at base+300.
        times = [row["time"] for row in leaf.leafmap.get_table("t").to_rows()]
        assert len(times) == 150
        assert min(times) >= base + 300
        leaf.shutdown(use_shm=False)

    def test_alternating_shm_and_disk_generations(self, shm_namespace, tmp_path, clock):
        leaf = LeafServer(
            "a",
            backup=DiskBackup(tmp_path / "backup"),
            namespace=shm_namespace,
            clock=clock,
            rows_per_block=32,
        )
        leaf.start()
        leaf.add_rows("t", [{"time": i, "v": float(i)} for i in range(80)])
        leaf.leafmap.seal_all()
        expected = leaf.leafmap.snapshot_rows()
        for generation in range(6):
            use_shm = generation % 2 == 0
            leaf.sync_to_disk()
            leaf.shutdown(use_shm=use_shm)
            leaf = LeafServer(
                "a",
                backup=DiskBackup(tmp_path / "backup"),
                namespace=shm_namespace,
                clock=clock,
                rows_per_block=32,
            )
            report = leaf.start()
            expected_method = (
                RecoveryMethod.SHARED_MEMORY
                if use_shm
                # Fully-sealed synced data has a fresh snapshot, so the
                # disk generations take the fast tier.
                else RecoveryMethod.DISK_SNAPSHOT
            )
            assert report.method is expected_method
            assert leaf.leafmap.snapshot_rows() == expected
        leaf.shutdown(use_shm=False)

    def test_disk_sync_watermarks_stay_consistent(self, shm_namespace, tmp_path, clock):
        """After any number of shm generations, an incremental sync only
        writes genuinely new rows (the counters travelled correctly)."""
        backup = DiskBackup(tmp_path / "backup")
        leaf = LeafServer(
            "w", backup=backup, namespace=shm_namespace, clock=clock, rows_per_block=32
        )
        leaf.start()
        leaf.add_rows("t", [{"time": i} for i in range(64)])
        leaf.sync_to_disk()
        for generation in range(4):
            leaf.shutdown(use_shm=True)
            leaf = LeafServer(
                "w", backup=DiskBackup(tmp_path / "backup"),
                namespace=shm_namespace, clock=clock, rows_per_block=32,
            )
            leaf.start()
            assert leaf.sync_to_disk() == 0  # nothing new
            leaf.add_rows("t", [{"time": 1000 + generation}])
            assert leaf.sync_to_disk() == 1
        leaf.shutdown(use_shm=False)
