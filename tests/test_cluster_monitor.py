"""Tests for the rollover monitor (ETA, stall and availability alerts)."""

import pytest

from repro.cluster.dashboard import Dashboard
from repro.cluster.monitor import RolloverMonitor, format_progress


def dashboard_with(*rows):
    """rows: (t, old, rolling, new, availability)"""
    dashboard = Dashboard()
    for row in rows:
        dashboard.record(*row)
    return dashboard


class TestProgress:
    def test_fraction_and_rate(self):
        dashboard = dashboard_with(
            (0.0, 100, 0, 0, 1.0),
            (60.0, 88, 2, 10, 0.98),
            (120.0, 78, 2, 20, 0.98),
        )
        progress = RolloverMonitor(dashboard).progress()
        assert progress.fraction_done == pytest.approx(0.2)
        assert progress.upgrade_rate_per_second == pytest.approx(10 / 60)
        assert progress.eta_seconds == pytest.approx(80 / (10 / 60))
        assert not progress.stalled
        assert progress.alerts == ()

    def test_eta_unknown_without_progress(self):
        dashboard = dashboard_with((0.0, 100, 0, 0, 1.0))
        progress = RolloverMonitor(dashboard).progress()
        assert progress.eta_seconds is None
        assert progress.fraction_done == 0.0

    def test_no_samples_raises(self):
        with pytest.raises(ValueError):
            RolloverMonitor(Dashboard()).progress()

    def test_complete_rollover_never_stalls(self):
        dashboard = dashboard_with(
            (0.0, 100, 0, 0, 1.0),
            (100.0, 0, 0, 100, 1.0),
            (10_000.0, 0, 0, 100, 1.0),
        )
        progress = RolloverMonitor(dashboard, stall_seconds=60).progress()
        assert not progress.stalled
        assert progress.fraction_done == 1.0


class TestAlerts:
    def test_stall_detected(self):
        dashboard = dashboard_with(
            (0.0, 100, 2, 0, 0.98),
            (60.0, 98, 2, 2, 0.98),
            (5000.0, 98, 2, 2, 0.98),  # nothing finished for ages
        )
        progress = RolloverMonitor(dashboard, stall_seconds=1800).progress()
        assert progress.stalled
        assert any("stuck" in alert for alert in progress.alerts)

    def test_availability_alert(self):
        dashboard = dashboard_with(
            (0.0, 100, 0, 0, 1.0),
            (60.0, 60, 30, 10, 0.70),
        )
        progress = RolloverMonitor(dashboard, min_availability=0.97).progress()
        assert any("availability" in alert for alert in progress.alerts)

    def test_validation(self):
        dashboard = dashboard_with((0.0, 1, 0, 0, 1.0))
        with pytest.raises(ValueError):
            RolloverMonitor(dashboard, stall_seconds=0)
        with pytest.raises(ValueError):
            RolloverMonitor(dashboard, min_availability=1.5)


class TestFormatting:
    def test_format_contains_key_facts(self):
        dashboard = dashboard_with(
            (0.0, 100, 0, 0, 1.0),
            (60.0, 88, 2, 10, 0.98),
        )
        line = format_progress(RolloverMonitor(dashboard).progress())
        assert "10.0%" in line
        assert "ETA" in line
        assert "98.0%" in line

    def test_format_shows_alerts(self):
        dashboard = dashboard_with(
            (0.0, 100, 0, 0, 1.0),
            (60.0, 50, 40, 10, 0.60),
        )
        line = format_progress(RolloverMonitor(dashboard).progress())
        assert "ALERTS" in line

    def test_live_rollover_feeds_the_monitor(self, shm_namespace, tmp_path, clock):
        """End to end: a real in-process rollover's dashboard parses."""
        import random

        from repro.cluster.cluster import Cluster
        from repro.cluster.rollover import RolloverCoordinator

        cluster = Cluster(
            2, tmp_path, leaves_per_machine=2, namespace=shm_namespace,
            clock=clock, rows_per_block=64, rng=random.Random(1),
        )
        cluster.start_all()
        cluster.ingest("t", [{"time": i} for i in range(200)], batch_rows=50)
        result = RolloverCoordinator(cluster, "v2", batch_fraction=0.5).run()
        progress = RolloverMonitor(result.dashboard).progress()
        assert progress.fraction_done == 1.0
        assert not progress.stalled
