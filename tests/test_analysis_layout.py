"""Fixture tests for the layout-drift checker (RL1xx)."""

from pathlib import Path

from repro.analysis.checkers import layout
from repro.analysis.loader import load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(name):
    return layout.check(load_files([FIXTURES / name]))


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.line) for f in run("layout_bad.py")}
        assert found == {
            ("RL101", 15),  # pack_into with 3 values for 4 fields
            ("RL102", 23),  # unpack into 2 targets for 4 fields
            ("RL103", 24),  # raw 0x4C425453 literal shadowing SEGMENT_MAGIC
            ("RL104", 26),  # hardcoded 16 == HEADER.size
            ("RL105", 9),  # TRAILER packed but never unpacked
            ("RL106", 11),  # VERSION_OFFSET = 7 is not a field boundary
        }

    def test_symbols_are_stable_identities(self):
        symbols = {f.code: f.symbol for f in run("layout_bad.py")}
        assert symbols["RL101"] == "HEADER.pack_into"
        assert symbols["RL105"] == "TRAILER"
        assert symbols["RL106"] == "VERSION_OFFSET"


class TestGoodFixture:
    def test_silent(self):
        assert run("layout_good.py") == []


class TestRealTree:
    def test_shm_and_disk_formats_are_clean(self, repo_root):
        modules = load_files(
            [
                repo_root / "src/repro/shm/layout.py",
                repo_root / "src/repro/shm/metadata.py",
                repo_root / "src/repro/disk/shmformat.py",
                repo_root / "src/repro/disk/format.py",
            ],
            root=repo_root,
        )
        assert layout.check(modules) == []
