"""Tests for the event queue, hardware model, and rollover simulation.

The calibration tests pin the model to the paper's quoted ranges — if a
profile change drifts outside them, these fail and EXPERIMENTS.md's
numbers are stale.
"""

from dataclasses import replace

import pytest

from repro.sim.availability import weekly_availability
from repro.sim.events import EventQueue
from repro.sim.hardware import HOUR, MINUTE, paper_profile
from repro.sim.restart import simulate_leaf_restart, simulate_machine_recovery
from repro.sim.rollover import simulate_rollover


class TestEventQueue:
    def test_events_run_in_time_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(5.0, lambda: log.append("b"))
        queue.schedule(1.0, lambda: log.append("a"))
        queue.schedule(9.0, lambda: log.append("c"))
        queue.run()
        assert log == ["a", "b", "c"]
        assert queue.now == 9.0

    def test_ties_break_in_schedule_order(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(1.0, lambda: log.append(2))
        queue.run()
        assert log == [1, 2]

    def test_events_can_schedule_events(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: queue.schedule(1.0, lambda: log.append("later")))
        queue.run()
        assert log == ["later"] and queue.now == 2.0

    def test_run_until(self):
        queue = EventQueue()
        log = []
        queue.schedule(1.0, lambda: log.append(1))
        queue.schedule(10.0, lambda: log.append(2))
        queue.run(until=5.0)
        assert log == [1] and queue.now == 5.0 and queue.pending == 1

    def test_past_scheduling_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1.0, lambda: None)

    def test_runaway_guard(self):
        queue = EventQueue()

        def loop():
            queue.schedule(0.0, loop)

        queue.schedule(0.0, loop)
        with pytest.raises(RuntimeError):
            queue.run(max_events=100)


class TestHardwareCalibration:
    """Each paper quote, as an executable assertion."""

    def test_reading_120gb_takes_20_to_25_minutes(self):
        profile = paper_profile()
        seconds = profile.data_gb_per_machine * 1e9 / (profile.disk_read_mbps * 1e6)
        assert 20 * MINUTE <= seconds <= 25 * MINUTE

    def test_machine_disk_recovery_takes_about_2_5_to_3_hours(self):
        recovery = simulate_machine_recovery(paper_profile(), "disk", "all_at_once")
        assert 2.2 * HOUR <= recovery.total_seconds <= 3.0 * HOUR

    def test_shm_shutdown_copy_takes_3_to_4_seconds(self):
        profile = paper_profile()
        assert 3.0 <= profile.shm_shutdown_seconds(1) <= 4.5

    def test_shm_rollover_slot_is_2_to_3_minutes(self):
        profile = paper_profile()
        slot = profile.shm_restart_seconds(1) + profile.detection_overhead_s
        assert 2 * MINUTE <= slot <= 3 * MINUTE

    def test_disk_vs_shm_machine_factor_is_order_60x(self):
        profile = paper_profile()
        disk = simulate_machine_recovery(profile, "disk", "all_at_once").total_seconds
        shm = simulate_machine_recovery(profile, "shm", "sequential").total_seconds
        assert disk / shm > 20  # "2-3 minutes versus 2.5-3 hours"

    def test_contention_is_monotone(self):
        profile = paper_profile()
        nbytes = profile.data_bytes_per_leaf
        for k in range(1, 8):
            assert profile.disk_read_seconds(nbytes, k + 1) >= profile.disk_read_seconds(
                nbytes, k
            )
            assert profile.translate_seconds(nbytes, k + 1) >= profile.translate_seconds(
                nbytes, k
            )

    def test_ssd_variant_removes_thrash(self):
        ssd = paper_profile().with_ssd()
        hdd = paper_profile()
        assert ssd.disk_aggregate_bps(8) == ssd.disk_aggregate_bps(1)
        assert ssd.disk_restart_seconds(8) < hdd.disk_restart_seconds(8) / 4

    def test_shm_disk_format_variant_kills_translate(self):
        fast = paper_profile().with_shm_disk_format()
        slow = paper_profile()
        assert fast.disk_restart_seconds(1) < slow.disk_restart_seconds(1) / 2

    def test_snapshot_tier_sits_between_disk_and_shm(self):
        """E12's modelled rung: much faster than legacy replay (no row
        translation) but still slower than shared memory (the bytes come
        off the spindle)."""
        profile = paper_profile()
        for k in (1, 8):
            snap = simulate_leaf_restart(profile, "disk_snapshot", k).total_seconds
            disk = simulate_leaf_restart(profile, "disk", k).total_seconds
            shm = simulate_leaf_restart(profile, "shm", k).total_seconds
            assert shm < snap < disk
        # Uncontended (the E12 configuration) the translate stage is the
        # bottleneck, so removing it buys the acceptance floor; at 8-wide
        # the thrashing spindle dominates both rungs and only the
        # ordering above survives.
        solo_disk = simulate_leaf_restart(profile, "disk", 1).total_seconds
        solo_snap = simulate_leaf_restart(profile, "disk_snapshot", 1).total_seconds
        assert solo_disk / solo_snap >= 3

    def test_snapshot_unpack_dominated_by_disk_read(self):
        """With shm-format bytes on disk the translate stage collapses:
        the remaining cost is essentially the read itself."""
        profile = paper_profile()
        breakdown = simulate_leaf_restart(profile, "disk_snapshot", 1)
        assert breakdown.translate_seconds < breakdown.read_seconds / 10
        legacy = simulate_leaf_restart(profile, "disk", 1)
        assert legacy.translate_seconds > legacy.read_seconds

    def test_invalid_arguments(self):
        profile = paper_profile()
        with pytest.raises(ValueError):
            profile.disk_read_seconds(1.0, 0)
        with pytest.raises(ValueError):
            profile.translate_seconds(1.0, 0)
        with pytest.raises(ValueError):
            profile.mem_copy_seconds(1.0, 0)
        with pytest.raises(ValueError):
            profile.snapshot_translate_seconds(1.0, 0)
        with pytest.raises(ValueError):
            simulate_leaf_restart(profile, "tape")
        with pytest.raises(ValueError):
            simulate_machine_recovery(profile, "disk", "sideways")
        with pytest.raises(ValueError):
            profile.effective_copy_streams(0)
        with pytest.raises(ValueError):
            profile.effective_copy_streams(4, "fiber")
        with pytest.raises(ValueError):
            profile.parallel_restore_speedup(0)

    def test_gil_caps_thread_backend_copy_streams(self):
        """The CPython reality the process backend exists to escape: a
        thread pool's bulk copies see ``gil_copy_streams`` (~1) streams
        no matter how wide the pool; forked processes see one per
        worker, up to the memory-bandwidth ceiling."""
        profile = paper_profile()
        for workers in (1, 2, 4, 8):
            assert profile.effective_copy_streams(workers, "thread") == 1.0
            assert profile.effective_copy_streams(workers, "process") == workers
            assert profile.parallel_restore_speedup(workers, "thread") == (
                pytest.approx(1.0)
            )
            assert profile.parallel_restore_speedup(workers, "process") == (
                pytest.approx(min(workers, 4))
            )

    def test_paper_cpp_has_no_gil_ceiling(self):
        """The paper's C++ implementation maps to gil_copy_streams=inf:
        both backends then hit only the bandwidth ceiling."""
        cpp = replace(paper_profile(), gil_copy_streams=float("inf"))
        for workers in (1, 2, 4, 8):
            assert cpp.parallel_restore_speedup(workers, "thread") == (
                pytest.approx(min(workers, 4))
            )

    def test_incremental_sync_byte_model(self):
        """Delta bytes = churn + one-chain_links'th of the base rewrite,
        amortized: defaults (5% churn, 8 links) cut sync writes ~5.7x,
        and the two degenerate corners recover the full-rewrite cost."""
        profile = paper_profile()
        assert profile.incremental_sync_reduction() == pytest.approx(
            1.0 / (0.05 + 1.0 / 8.0)
        )
        assert profile.incremental_sync_reduction() >= 5.0
        # Total churn, or a chain that compacts every sync, degenerates
        # to a full rewrite: no reduction.
        assert profile.incremental_sync_reduction(churn=1.0) < 1.0
        assert profile.incremental_sync_reduction(chain_links=1) <= 1.0
        assert profile.incremental_sync_bytes(1e9) == pytest.approx(
            1e9 * (0.05 + 0.125)
        )
        with pytest.raises(ValueError):
            profile.incremental_sync_bytes(1e9, churn=1.5)
        with pytest.raises(ValueError):
            profile.incremental_sync_bytes(1e9, chain_links=0)

    def test_parallel_replay_amdahl_model(self):
        """Replay decode threads share the GIL (1 stream); forked
        workers scale to the translate cores, less the serial fraction
        (chunk scan + merge)."""
        profile = paper_profile()
        for workers in (1, 2, 4, 8):
            assert profile.effective_replay_streams(workers, "thread") == 1.0
            assert profile.effective_replay_streams(workers, "process") == (
                min(workers, profile.translate_cores)
            )
            assert profile.parallel_replay_speedup(workers, "thread") == (
                pytest.approx(1.0)
            )
        assert profile.parallel_replay_speedup(1, "process") == pytest.approx(1.0)
        four = profile.parallel_replay_speedup(4, "process")
        assert four == pytest.approx(1.0 / (0.08 + 0.92 / 4))
        assert four >= 2.0
        # Past the core count the serial fraction is the whole story.
        assert profile.parallel_replay_speedup(8, "process") == pytest.approx(four)
        with pytest.raises(ValueError):
            profile.effective_replay_streams(0)
        with pytest.raises(ValueError):
            profile.effective_replay_streams(4, "fiber")

    def test_replay_workers_shrink_disk_translate_only(self):
        """simulate_leaf_restart's replay_workers fan out the translate
        stage of the legacy disk rung; the read and overhead do not
        change, and the snapshot/shm rungs ignore the knob."""
        profile = paper_profile()
        serial = simulate_leaf_restart(profile, "disk", 1)
        fanned = simulate_leaf_restart(profile, "disk", 1, replay_workers=4)
        speedup = profile.parallel_replay_speedup(4, "process")
        assert fanned.translate_seconds == pytest.approx(
            serial.translate_seconds / speedup
        )
        assert fanned.read_seconds == serial.read_seconds
        assert fanned.overhead_seconds == serial.overhead_seconds
        assert fanned.total_seconds < serial.total_seconds
        threaded = simulate_leaf_restart(
            profile, "disk", 1, replay_workers=4, replay_backend="thread"
        )
        assert threaded.translate_seconds == pytest.approx(
            serial.translate_seconds
        )
        snap = simulate_leaf_restart(profile, "disk_snapshot", 1)
        snap_fanned = simulate_leaf_restart(
            profile, "disk_snapshot", 1, replay_workers=4
        )
        assert snap_fanned.total_seconds == snap.total_seconds


class TestRolloverSimulation:
    def test_disk_rollover_lands_in_paper_range(self):
        result = simulate_rollover(paper_profile(), 100, "disk", 0.02)
        assert 10 * HOUR <= result.total_seconds <= 14 * HOUR

    def test_shm_rollover_is_under_an_hour(self):
        result = simulate_rollover(paper_profile(), 100, "shm", 0.02)
        assert result.total_seconds <= 1.05 * HOUR
        assert result.restart_seconds <= 25 * MINUTE

    def test_everyone_ends_upgraded(self):
        result = simulate_rollover(paper_profile(), 20, "shm", 0.05)
        final = result.dashboard.samples[-1]
        assert final.new_version == result.leaves_total
        assert final.rolling_over == 0

    def test_offline_fraction_never_exceeds_batch(self):
        result = simulate_rollover(paper_profile(), 50, "disk", 0.02)
        floor = 1 - result.batch_size / result.leaves_total - 1e-9
        assert result.min_availability >= floor
        for sample in result.dashboard.samples:
            assert sample.rolling_over <= result.batch_size

    def test_dashboard_monotone_progress(self):
        result = simulate_rollover(paper_profile(), 10, "shm", 0.1)
        upgraded = [s.new_version for s in result.dashboard.samples]
        assert upgraded == sorted(upgraded)

    def test_larger_batches_finish_faster(self):
        slow = simulate_rollover(paper_profile(), 50, "disk", 0.02)
        fast = simulate_rollover(paper_profile(), 50, "disk", 0.10)
        assert fast.restart_seconds < slow.restart_seconds

    def test_non_pipelined_detection_is_slower(self):
        pipelined = simulate_rollover(paper_profile(), 30, "shm", 0.02)
        serial = simulate_rollover(
            paper_profile(), 30, "shm", 0.02, pipelined_detection=False
        )
        assert serial.restart_seconds > pipelined.restart_seconds

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_rollover(paper_profile(), 10, "carrier-pigeon")
        with pytest.raises(ValueError):
            simulate_rollover(paper_profile(), 10, "shm", 0.0)


class TestAvailability:
    def test_paper_headline_numbers(self):
        disk = weekly_availability(12 * HOUR)
        shm = weekly_availability(1 * HOUR)
        assert disk.fully_available_fraction == pytest.approx(0.9286, abs=1e-3)
        assert shm.fully_available_fraction == pytest.approx(0.994, abs=1e-3)

    def test_mean_data_availability_accounts_for_98_percent(self):
        report = weekly_availability(12 * HOUR, availability_during_rollover=0.98)
        assert report.mean_data_availability == pytest.approx(
            1 - (12 / 168) * 0.02, abs=1e-6
        )

    def test_multiple_rollovers_per_week(self):
        report = weekly_availability(1 * HOUR, rollovers_per_week=3)
        assert report.fully_available_fraction == pytest.approx(165 / 168)

    def test_validation(self):
        with pytest.raises(ValueError):
            weekly_availability(-1.0)
        with pytest.raises(ValueError):
            weekly_availability(1.0, rollovers_per_week=-1)
        with pytest.raises(ValueError):
            weekly_availability(1.0, availability_during_rollover=2.0)


class TestStragglers:
    def test_failure_rate_zero_is_identical(self):
        clean = simulate_rollover(paper_profile(), 30, "shm", 0.02)
        zero = simulate_rollover(paper_profile(), 30, "shm", 0.02, shm_failure_rate=0.0)
        assert clean.restart_seconds == zero.restart_seconds
        assert zero.stragglers == 0

    def test_stragglers_stretch_the_tail(self):
        clean = simulate_rollover(paper_profile(), 50, "shm", 0.02, seed=1)
        slow = simulate_rollover(
            paper_profile(), 50, "shm", 0.02, shm_failure_rate=0.05, seed=1
        )
        assert slow.stragglers > 0
        assert slow.restart_seconds > clean.restart_seconds
        # The offline cap still holds; stragglers stretch time, not depth.
        assert slow.min_availability >= 1 - slow.batch_size / slow.leaves_total - 1e-9

    def test_all_failures_degrades_to_disk_cost(self):
        forced = simulate_rollover(
            paper_profile(), 20, "shm", 0.02, shm_failure_rate=1.0, seed=2
        )
        disk = simulate_rollover(paper_profile(), 20, "disk", 0.02)
        assert forced.stragglers == forced.leaves_total
        assert forced.restart_seconds == pytest.approx(disk.restart_seconds, rel=0.02)

    def test_deterministic_for_seed(self):
        a = simulate_rollover(paper_profile(), 25, "shm", 0.02, shm_failure_rate=0.1, seed=7)
        b = simulate_rollover(paper_profile(), 25, "shm", 0.02, shm_failure_rate=0.1, seed=7)
        assert a.stragglers == b.stragglers
        assert a.restart_seconds == b.restart_seconds

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            simulate_rollover(paper_profile(), 10, "shm", 0.02, shm_failure_rate=1.5)

    def test_disk_strategy_ignores_failure_rate(self):
        result = simulate_rollover(
            paper_profile(), 10, "disk", 0.05, shm_failure_rate=0.5, seed=4
        )
        assert result.stragglers == 0
