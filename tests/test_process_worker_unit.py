"""In-process tests of the worker's serve loop (no subprocess needed)."""

import io
import json

from repro.disk.backup import DiskBackup
from repro.server.leaf import LeafServer
from repro.server.process_worker import _INCARNATION, serve
from repro.server.restart_manager import (
    RESTART_EXIT_CODE,
    check_restart,
    read_restart_version,
)
from repro.util.checksum import rows_digest


def run_ops(leaf, ops):
    """Feed a list of request dicts; return (exit_code, responses)."""
    stdin = io.StringIO("\n".join(json.dumps(op) for op in ops) + "\n")
    stdout = io.StringIO()
    code = serve(leaf, stdin=stdin, stdout=stdout)
    responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
    return code, responses


def make_leaf(shm_namespace, tmp_path, clock):
    return LeafServer(
        "w",
        backup=DiskBackup(tmp_path / "w"),
        namespace=shm_namespace,
        clock=clock,
        rows_per_block=16,
    )


class TestServeLoop:
    def test_start_status_add_query_sync(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "add_rows", "table": "t", "rows": [{"time": 1}, {"time": 2}]},
                {"op": "status"},
                {
                    "op": "query",
                    "query": {"table": "t", "aggregations": [{"func": "count", "column": "*"}]},
                },
                {"op": "sync"},
            ],
        )
        assert code == 0  # EOF after the ops
        start, add, status, query, sync = responses
        assert start["ok"] and start["method"] == "disk"
        assert add["added"] == 2
        assert status["status"] == "alive" and status["rows"] == 2
        assert query["partial"][0]["states"][0]["count"] == 2
        assert sync["rows_synced"] == 2

    def test_expire(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        old = int(clock.now()) - 9999
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "add_rows", "table": "t",
                 "rows": [{"time": old + i} for i in range(16)]},
                {"op": "expire", "retention_seconds": 60},
            ],
        )
        assert responses[-1]["rows_dropped"] == 16

    def test_shutdown_replies_then_exits_zero(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "add_rows", "table": "t", "rows": [{"time": 1}]},
                {"op": "shutdown", "use_shm": True},
                {"op": "status"},  # never processed: serve returned
            ],
        )
        assert code == 0
        assert responses[-1]["used_shm"] is True
        assert len(responses) == 3
        leaf.engine.discard_shm()

    def test_crash_exits_70_without_reply(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(leaf, [{"op": "start"}, {"op": "crash"}])
        assert code == 70
        assert len(responses) == 1  # only the start reply

    def test_bad_json_is_survivable(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        stdin = io.StringIO('{"op": "start"}\nnot json at all\n{"op": "status"}\n')
        stdout = io.StringIO()
        code = serve(leaf, stdin=stdin, stdout=stdout)
        responses = [json.loads(line) for line in stdout.getvalue().splitlines()]
        assert code == 0
        assert responses[0]["ok"]
        assert not responses[1]["ok"] and "bad json" in responses[1]["error"]
        assert responses[2]["ok"]

    def test_unknown_op_reports_error_and_continues(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf, [{"op": "start"}, {"op": "frobnicate"}, {"op": "status"}]
        )
        assert not responses[1]["ok"]
        assert responses[2]["ok"]

    def test_domain_error_reported_not_fatal(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "add_rows", "table": "t", "rows": [{"no_time": 1}]},
                {"op": "status"},
            ],
        )
        assert not responses[1]["ok"] and "SchemaError" in responses[1]["error"]
        assert responses[2]["ok"]

    def test_status_reports_pid_and_incarnation(
        self, shm_namespace, tmp_path, clock
    ):
        import os

        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(leaf, [{"op": "start"}, {"op": "status"}])
        assert responses[1]["pid"] == os.getpid()
        assert responses[1]["incarnation"] == _INCARNATION

    def test_digest_matches_snapshot_hash(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "add_rows", "table": "t",
                 "rows": [{"time": 1, "v": 2.0}, {"time": 3, "v": 4.0}]},
                {"op": "digest"},
            ],
        )
        digest = responses[-1]
        assert digest["rows"] == 2
        assert digest["digest"] == rows_digest(leaf.leafmap.snapshot_rows())

    def test_restart_replies_then_exits_with_restart_code(
        self, shm_namespace, tmp_path, clock
    ):
        """``restart`` without a reexec hook degrades to the exit-code
        path: shm handoff done, reply sent, RESTART_EXIT_CODE returned
        for the supervisor."""
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "add_rows", "table": "t", "rows": [{"time": 1}]},
                {"op": "restart", "mode": "exit"},
                {"op": "status"},  # never processed: serve returned
            ],
        )
        assert code == RESTART_EXIT_CODE
        assert len(responses) == 3
        handoff = responses[-1]
        assert handoff["ok"] and handoff["used_shm"] is True
        assert handoff["incarnation"] == _INCARNATION
        leaf.engine.discard_shm()

    def test_restart_exit_mode_records_the_version_request(
        self, shm_namespace, tmp_path, clock
    ):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        code, responses = run_ops(
            leaf,
            [
                {"op": "start"},
                {"op": "restart", "mode": "exit", "version": "v4",
                 "use_shm": False},
            ],
        )
        assert code == RESTART_EXIT_CODE
        assert check_restart(leaf.backup.directory)
        assert read_restart_version(leaf.backup.directory) == "v4"

    def test_restart_execv_mode_calls_the_reexec_hook(
        self, shm_namespace, tmp_path, clock
    ):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        calls = []
        stdin = io.StringIO(
            json.dumps({"op": "start"}) + "\n"
            + json.dumps({"op": "restart", "mode": "execv", "version": "v2",
                          "use_shm": False}) + "\n"
        )
        stdout = io.StringIO()
        code = serve(leaf, stdin=stdin, stdout=stdout, reexec=calls.append)
        assert calls == ["v2"]
        # The real hook never returns (os.execv); the stub does, and the
        # worker then falls through to the supervisor exit path.
        assert code == RESTART_EXIT_CODE
        # execv mode does not need the request file: the pipes survive.
        assert not check_restart(leaf.backup.directory)

    def test_blank_lines_skipped(self, shm_namespace, tmp_path, clock):
        leaf = make_leaf(shm_namespace, tmp_path, clock)
        stdin = io.StringIO('\n\n{"op": "start"}\n\n')
        stdout = io.StringIO()
        assert serve(leaf, stdin=stdin, stdout=stdout) == 0
        assert len(stdout.getvalue().splitlines()) == 1
