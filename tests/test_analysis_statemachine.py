"""Fixture tests for the state-machine coverage checker (RL2xx)."""

from pathlib import Path

from repro.analysis.checkers import statemachine
from repro.analysis.loader import load_files

FIXTURES = Path(__file__).parent / "fixtures" / "analysis"


def run(name):
    return statemachine.check(load_files([FIXTURES / name]))


class TestDiscovery:
    def test_tables_are_parsed(self):
        modules = load_files([FIXTURES / "statemachine_bad.py"])
        machines = {m.name: m for m in statemachine.discover_machines(modules)}
        assert set(machines) == {"PhaseMachine", "StallMachine"}
        phase = machines["PhaseMachine"]
        assert phase.initial == "START"
        assert phase.transitions == {
            "START": {"COPY"},
            "COPY": {"DONE", "ABORT"},
        }
        assert phase.terminal == {"DONE", "ABORT"}


class TestBadFixture:
    def test_exact_findings(self):
        found = {(f.code, f.line, f.symbol) for f in run("statemachine_bad.py")}
        assert found == {
            # ABORT is declared but no call site ever enters it
            ("RL201", 13, "PhaseMachine:ABORT"),
            # transition(Phase.START) targets a state no table grants;
            # transition(Phase.DONE) is outside StallMachine's table too
            ("RL202", 38, "StallMachine:DONE"),
            ("RL202", 39, "PhaseMachine:START"),
            ("RL202", 39, "StallMachine:START"),
            # StallMachine's structure cannot resolve to rest
            ("RL203", 25, "StallMachine:COPY:dead-end"),
            ("RL203", 25, "StallMachine:START:no-terminal-path"),
            # edges nothing drives
            ("RL204", 13, "PhaseMachine:COPY->ABORT"),
            ("RL204", 25, "StallMachine:START->COPY"),
        }


class TestGoodFixture:
    def test_silent(self):
        assert run("statemachine_good.py") == []


class TestRealTree:
    def test_leaf_machines_fully_covered(self, repo_root):
        """The leaf-level ladder is fully exercised by engine + server.

        The lazy restore (serve-while-restoring) owns the
        MEMORY_SERVING rung, so it is part of the covered set.

        (The table-level ladder's unrouted rungs are baselined, which is
        asserted by the end-to-end lint test, not here.)
        """
        modules = load_files(
            [
                repo_root / "src/repro/core/states.py",
                repo_root / "src/repro/core/engine.py",
                repo_root / "src/repro/core/lazyrestore.py",
                repo_root / "src/repro/server/leaf.py",
            ],
            root=repo_root,
        )
        findings = statemachine.check(modules)
        leaf_findings = [f for f in findings if f.symbol.startswith("Leaf")]
        assert leaf_findings == []
