"""Tests for canary deployments (§6's experimental-build workflow)."""

import random

import pytest

from repro.cluster.canary import CanaryDeployment
from repro.cluster.cluster import Cluster
from repro.errors import StateError
from repro.query.query import Aggregation, Query

COUNT = Query("t", aggregations=(Aggregation("count"),))


def make_cluster(shm_namespace, tmp_path, clock, machines=3):
    cluster = Cluster(
        machines, tmp_path, leaves_per_machine=2, namespace=shm_namespace,
        clock=clock, rows_per_block=64, rng=random.Random(5),
    )
    cluster.start_all()
    cluster.ingest("t", [{"time": i, "v": float(i)} for i in range(600)], batch_rows=100)
    cluster.sync_all()
    return cluster


class TestCanaryLifecycle:
    def test_deploy_puts_experiment_on_subset(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2-exp", n_canary_machines=1)
        canary.deploy()
        versions = cluster.version_counts()
        assert versions == {"v1": 4, "v2-exp": 2}
        # Data intact under the mixed fleet.
        assert cluster.query(COUNT).rows[0].values["count(*)"] == 600

    def test_revert_restores_baseline_and_data(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2-exp")
        canary.deploy()
        result = canary.evaluate([lambda c: False])  # validation fails
        assert result.outcome == "reverted"
        assert result.validations_failed == 1
        assert cluster.version_counts() == {"v1": 6}
        assert cluster.query(COUNT).rows[0].values["count(*)"] == 600

    def test_promote_on_success(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2-exp")
        canary.deploy()

        def data_still_complete(c):
            return c.query(COUNT).rows[0].values["count(*)"] == 600

        result = canary.evaluate([data_still_complete], promote_on_success=True)
        assert result.outcome == "promoted"
        assert cluster.version_counts() == {"v2-exp": 6}
        assert cluster.query(COUNT).rows[0].values["count(*)"] == 600

    def test_default_is_revert_even_on_success(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2-exp")
        canary.deploy()
        result = canary.evaluate([lambda c: True])
        assert result.outcome == "reverted"
        assert cluster.version_counts() == {"v1": 6}

    def test_raising_validation_counts_as_failure(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2-exp")
        canary.deploy()

        def explodes(c):
            raise RuntimeError("experimental build crashed the validator")

        result = canary.evaluate([explodes], promote_on_success=True)
        assert result.outcome == "reverted"
        assert result.validations_failed == 1


class TestCanaryValidation:
    def test_needs_subset(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        with pytest.raises(ValueError):
            CanaryDeployment(cluster, "v2", n_canary_machines=3)
        with pytest.raises(ValueError):
            CanaryDeployment(cluster, "v2", n_canary_machines=0)

    def test_needs_uniform_baseline(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        cluster.leaves[0].version = "vX"
        with pytest.raises(StateError):
            CanaryDeployment(cluster, "v2")

    def test_evaluate_requires_deploy(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2")
        with pytest.raises(StateError):
            canary.evaluate([])

    def test_double_deploy_rejected(self, shm_namespace, tmp_path, clock):
        cluster = make_cluster(shm_namespace, tmp_path, clock)
        canary = CanaryDeployment(cluster, "v2")
        canary.deploy()
        with pytest.raises(StateError):
            canary.deploy()
        canary.evaluate([])  # revert, clean up versions
