"""Tests for time-series bucketing and top-k ordering."""

import pytest

from repro.columnstore.leafmap import LeafMap
from repro.errors import QueryError
from repro.query.aggregate import merge_leaf_results
from repro.query.execute import execute_on_leaf
from repro.query.query import Aggregation, Query
from repro.util.clock import ManualClock


def make_map():
    leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=64)
    table = leafmap.get_or_create("metrics")
    table.add_rows(
        {"time": 1000 + i, "svc": f"s{i % 3}", "v": float(i)} for i in range(300)
    )
    return leafmap


def run(leafmap, query):
    execution = execute_on_leaf(leafmap, query)
    return merge_leaf_results(query, [execution.partial], 1)


class TestTimeBuckets:
    def test_bucket_boundaries(self):
        query = Query("metrics", bucket_seconds=60)
        result = run(make_map(), query)
        buckets = [row.group[0] for row in result.rows]
        assert buckets == sorted(buckets)
        assert all(bucket % 60 == 0 for bucket in buckets)
        # 300 seconds of data starting at t=1000 spans 6 minute-buckets.
        assert len(buckets) == 6
        assert sum(row.values["count(*)"] for row in result.rows) == 300

    def test_bucket_plus_group_by(self):
        query = Query(
            "metrics",
            aggregations=(Aggregation("count"), Aggregation("avg", "v")),
            group_by=("svc",),
            bucket_seconds=100,
        )
        result = run(make_map(), query)
        # Bucket first, then the group columns.
        assert all(len(row.group) == 2 for row in result.rows)
        assert len({row.group for row in result.rows}) == len(result.rows)
        total = sum(row.values["count(*)"] for row in result.rows)
        assert total == 300

    def test_bucket_respects_time_range(self):
        query = Query("metrics", bucket_seconds=60, start_time=1060, end_time=1120)
        result = run(make_map(), query)
        assert [row.group[0] for row in result.rows] == [1020, 1080]

    def test_series_identical_across_shm_restart(self, shm_namespace, clock):
        """The GUI's time series must not change across an upgrade."""
        from repro.core.engine import RestartEngine

        leafmap = make_map()
        query = Query(
            "metrics", aggregations=(Aggregation("avg", "v"),), bucket_seconds=30
        )
        before = [(r.group, r.values) for r in run(leafmap, query).rows]
        leafmap.seal_all()
        RestartEngine("ts", namespace=shm_namespace, clock=clock).backup_to_shm(leafmap)
        restored = LeafMap(clock=clock, rows_per_block=64)
        RestartEngine("ts", namespace=shm_namespace, clock=clock).restore(restored)
        after = [(r.group, r.values) for r in run(restored, query).rows]
        assert before == after

    def test_invalid_bucket_rejected(self):
        with pytest.raises(QueryError):
            Query("metrics", bucket_seconds=0)


class TestOrderBy:
    def test_top_k_by_count(self):
        leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=64)
        table = leafmap.get_or_create("t")
        weights = {"a": 50, "b": 10, "c": 30}
        rows = []
        t = 0
        for name, count in weights.items():
            for _ in range(count):
                rows.append({"time": t, "g": name})
                t += 1
        table.add_rows(rows)
        query = Query(
            "t", group_by=("g",), order_by="count(*)", descending=True, limit=2
        )
        result = run(leafmap, query)
        assert [row.group[0] for row in result.rows] == ["a", "c"]

    def test_ascending_order(self):
        leafmap = make_map()
        query = Query(
            "metrics",
            aggregations=(Aggregation("count"), Aggregation("max", "v")),
            group_by=("svc",),
            order_by="max(v)",
            descending=False,
        )
        result = run(leafmap, query)
        values = [row.values["max(v)"] for row in result.rows]
        assert values == sorted(values)

    def test_order_by_unknown_label_rejected(self):
        with pytest.raises(QueryError):
            Query("t", order_by="sum(nope)")

    def test_none_values_sort_last_in_descending(self):
        leafmap = LeafMap(clock=ManualClock(0.0), rows_per_block=64)
        table = leafmap.get_or_create("t")
        table.add_rows([{"time": 0, "g": "with", "v": 5.0}, {"time": 1, "g": "without"}])
        query = Query(
            "t",
            aggregations=(Aggregation("sum", "v"),),
            group_by=("g",),
            order_by="sum(v)",
            descending=True,
        )
        result = run(leafmap, query)
        assert result.rows[0].group == ("with",)
        assert result.rows[-1].values["sum(v)"] is None

    def test_wire_roundtrip_preserves_new_fields(self):
        query = Query(
            "t",
            aggregations=(Aggregation("count"),),
            bucket_seconds=60,
            order_by="count(*)",
            descending=False,
        )
        assert Query.from_dict(query.to_dict()) == query
