"""Tests for shared memory segments, including true cross-process
persistence — the property the whole paper rests on."""

import subprocess
import sys
import textwrap

import pytest

from repro.errors import ShmError
from repro.shm.segment import ShmSegment, segment_exists


class TestSegmentBasics:
    def test_create_write_read(self, shm_namespace):
        segment = ShmSegment.create(f"{shm_namespace}-a", 64)
        try:
            end = segment.write_at(3, b"hello")
            assert end == 8
            assert bytes(segment.read_at(3, 5)) == b"hello"
        finally:
            segment.unlink()

    def test_attach_sees_writes(self, shm_namespace):
        name = f"{shm_namespace}-b"
        creator = ShmSegment.create(name, 32)
        creator.write_at(0, b"shared")
        reader = ShmSegment.attach(name)
        try:
            assert bytes(reader.read_at(0, 6)) == b"shared"
        finally:
            reader.close()
            creator.unlink()

    def test_create_duplicate_rejected(self, shm_namespace):
        name = f"{shm_namespace}-c"
        segment = ShmSegment.create(name, 16)
        try:
            with pytest.raises(ShmError):
                ShmSegment.create(name, 16)
        finally:
            segment.unlink()

    def test_attach_missing_rejected(self, shm_namespace):
        with pytest.raises(ShmError):
            ShmSegment.attach(f"{shm_namespace}-missing")

    def test_zero_size_rejected(self, shm_namespace):
        with pytest.raises(ShmError):
            ShmSegment.create(f"{shm_namespace}-z", 0)

    def test_write_bounds_checked(self, shm_namespace):
        segment = ShmSegment.create(f"{shm_namespace}-d", 8)
        try:
            with pytest.raises(ShmError):
                segment.write_at(5, b"toolong")
            with pytest.raises(ShmError):
                segment.write_at(-1, b"x")
        finally:
            segment.unlink()

    def test_read_bounds_checked(self, shm_namespace):
        segment = ShmSegment.create(f"{shm_namespace}-e", 8)
        try:
            with pytest.raises(ShmError):
                segment.read_at(4, 8)
            with pytest.raises(ShmError):
                segment.read_at(-1, 2)
        finally:
            segment.unlink()

    def test_closed_segment_rejects_access(self, shm_namespace):
        segment = ShmSegment.create(f"{shm_namespace}-f", 8)
        other = ShmSegment.attach(segment.name)
        other.close()
        with pytest.raises(ShmError):
            other.read_at(0, 1)
        segment.unlink()

    def test_unlink_is_idempotent(self, shm_namespace):
        segment = ShmSegment.create(f"{shm_namespace}-g", 8)
        other = ShmSegment.attach(segment.name)
        segment.unlink()
        other.unlink()  # already gone; must not raise

    def test_segment_exists(self, shm_namespace):
        name = f"{shm_namespace}-h"
        assert not segment_exists(name)
        segment = ShmSegment.create(name, 8)
        assert segment_exists(name)
        segment.unlink()
        assert not segment_exists(name)

    def test_context_manager_closes_not_unlinks(self, shm_namespace):
        name = f"{shm_namespace}-i"
        with ShmSegment.create(name, 8) as segment:
            segment.write_at(0, b"x")
        assert segment_exists(name)
        ShmSegment.attach(name).unlink()


class TestCrossProcessPersistence:
    def test_segment_survives_creating_process(self, shm_namespace):
        """A child process creates and fills a segment, then *exits*;
        this process attaches and reads the bytes — memory lifetime
        decoupled from process lifetime."""
        name = f"{shm_namespace}-x"
        child = textwrap.dedent(
            f"""
            from repro.shm.segment import ShmSegment
            segment = ShmSegment.create({name!r}, 64)
            segment.write_at(0, b"survived the process")
            segment.close()
            """
        )
        subprocess.run([sys.executable, "-c", child], check=True, timeout=60)
        segment = ShmSegment.attach(name)
        try:
            assert bytes(segment.read_at(0, 20)) == b"survived the process"
        finally:
            segment.unlink()

    def test_two_nonoverlapping_processes_communicate(self, shm_namespace):
        """Writer exits before the reader starts: exactly the paper's
        'communicate with its replacement' scenario."""
        name = f"{shm_namespace}-y"
        writer = textwrap.dedent(
            f"""
            from repro.shm.segment import ShmSegment
            s = ShmSegment.create({name!r}, 16)
            s.write_at(0, (123456).to_bytes(8, "little"))
            s.close()
            """
        )
        reader = textwrap.dedent(
            f"""
            from repro.shm.segment import ShmSegment
            s = ShmSegment.attach({name!r})
            value = int.from_bytes(bytes(s.read_at(0, 8)), "little")
            s.unlink()
            print(value)
            """
        )
        subprocess.run([sys.executable, "-c", writer], check=True, timeout=60)
        result = subprocess.run(
            [sys.executable, "-c", reader],
            check=True,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.stdout.strip() == "123456"
