"""reprosan — the runtime sanitizer itself.

These tests drive the Sanitizer directly (install/uninstall per test)
rather than through the pytest plugin; the plugin path is exercised by
the CI `reprosan` job running the concurrency suite under --reprosan.
"""

from __future__ import annotations

import threading

import pytest

from repro.analysis import reprosan
from repro.analysis.loader import load_files
from repro.analysis.reprosan import Sanitizer, cross_check, find_cycles


@pytest.fixture
def san(repo_root):
    sanitizer = Sanitizer(root=repo_root).install()
    yield sanitizer
    sanitizer.uninstall()


def _make_locks():
    """Two instrumented locks — this module is not a repro module, so
    impersonate one the way repro code creates locks."""
    namespace = {"threading": threading, "__name__": "repro._santest"}
    exec(
        "a = threading.Lock()\nb = threading.Lock()\ncond = threading.Condition()",
        namespace,
    )
    return namespace["a"], namespace["b"], namespace["cond"]


class TestLockInstrumentation:
    def test_non_repro_callers_get_real_locks(self, san):
        lock = threading.Lock()
        assert type(lock).__module__ != "repro.analysis.reprosan"
        with lock:
            pass
        assert san.edges == {}

    def test_repro_creation_sites_are_wrapped_and_named(self, san):
        a, b, cond = _make_locks()
        for obj in (a, b, cond):
            assert obj.site.startswith("<string>:")
        assert a.site != b.site

    def test_nested_acquisition_records_an_edge(self, san):
        a, b, _ = _make_locks()
        with a:
            with b:
                pass
        assert list(san.edges) == [(a.site, b.site)]

    def test_opposite_orders_make_a_cycle(self, san):
        a, b, _ = _make_locks()
        san.begin_test("t::order")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        record = san.end_test()
        assert record["cycles"], "opposite-order acquisition must cycle"
        assert any("lock-order cycle" in p for p in record["problems"])

    def test_consistent_order_is_clean(self, san):
        a, b, _ = _make_locks()
        san.begin_test("t::consistent")
        for _ in range(3):
            with a:
                with b:
                    pass
        record = san.end_test()
        assert record["problems"] == []

    def test_reentrant_rlock_is_not_a_self_edge(self, san):
        namespace = {"threading": threading, "__name__": "repro._santest"}
        exec("r = threading.RLock()", namespace)
        r = namespace["r"]
        with r:
            with r:
                pass
        assert san.edges == {}

    def test_condition_wait_keeps_working(self, san):
        _, _, cond = _make_locks()
        done = []

        def waiter():
            with cond:
                cond.wait_for(lambda: bool(done), timeout=5.0)

        thread = threading.Thread(target=waiter)
        thread.start()
        with cond:
            done.append(1)
            cond.notify_all()
        thread.join(timeout=5.0)
        assert not thread.is_alive()


class TestResourceAudit:
    def test_budget_residue_fails_the_test(self, san):
        from repro.core.parallel import FootprintBudget

        san.begin_test("t::residue")
        budget = FootprintBudget(limit_bytes=1 << 20)
        budget.acquire(4096)
        budget.acquire(4096)
        budget.release(4096)
        record = san.end_test()
        assert record["budget_residue"]
        assert any("4096 unreleased" in p for p in record["problems"])

    def test_balanced_budget_is_clean(self, san):
        from repro.core.parallel import FootprintBudget

        san.begin_test("t::balanced")
        budget = FootprintBudget(limit_bytes=1 << 20)
        with budget.reserve(4096):
            pass
        record = san.end_test()
        assert record["budget_residue"] == {}
        assert record["problems"] == []

    def test_tracker_balances_are_recorded_not_enforced(self, san):
        from repro.util.memtrack import MemoryTracker

        san.begin_test("t::tracker")
        tracker = MemoryTracker()
        tracker.allocate("heap", 1000)
        tracker.free("heap", 400)
        record = san.end_test()
        assert record["tracker"]["heap"] == {"allocated": 1000, "freed": 400}
        # live data at test end is legitimate — not a problem
        assert record["problems"] == []


class TestFindCycles:
    def test_two_node_cycle_normalized(self):
        assert find_cycles({("b", "a"), ("a", "b")}) == ["a -> b -> a"]

    def test_dag_has_none(self):
        assert find_cycles({("a", "b"), ("b", "c"), ("a", "c")}) == []


class TestCrossCheck:
    def _modules(self, repo_root):
        return load_files(
            [
                repo_root / "src/repro/server/leaf.py",
                repo_root / "src/repro/core/lazyrestore.py",
                repo_root / "src/repro/core/parallel.py",
                repo_root / "src/repro/util/memtrack.py",
            ],
            root=repo_root,
        )

    def test_runtime_edges_translate_to_static_nodes(self, repo_root):
        modules = self._modules(repo_root)
        # Find the real creation sites from the source so the test does
        # not hard-code line numbers.
        leaf = next(m for m in modules if m.relpath.endswith("leaf.py"))
        restore = next(m for m in modules if m.relpath.endswith("lazyrestore.py"))
        leaf_line = next(
            i + 1 for i, text in enumerate(leaf.text.splitlines())
            if "self._lock = threading.RLock()" in text
        )
        restore_line = next(
            i + 1 for i, text in enumerate(restore.text.splitlines())
            if "self._lock = threading.RLock()" in text
        )
        report = {
            "edges": [
                {
                    "src": f"src/repro/server/leaf.py:{leaf_line}",
                    "dst": f"src/repro/core/lazyrestore.py:{restore_line}",
                    "count": 3,
                }
            ]
        }
        checked = cross_check(report, modules)
        assert checked["runtime_edges"] == [
            "LeafServer._lock -> LazyRestore._lock"
        ]
        assert checked["ok"]
        assert checked["cycles"] == []

    def test_inverted_runtime_edge_flagged(self, repo_root):
        modules = self._modules(repo_root)
        leaf = next(m for m in modules if m.relpath.endswith("leaf.py"))
        restore = next(m for m in modules if m.relpath.endswith("lazyrestore.py"))
        leaf_line = next(
            i + 1 for i, text in enumerate(leaf.text.splitlines())
            if "self._lock = threading.RLock()" in text
        )
        restore_line = next(
            i + 1 for i, text in enumerate(restore.text.splitlines())
            if "self._lock = threading.RLock()" in text
        )
        report = {
            "edges": [
                {
                    "src": f"src/repro/core/lazyrestore.py:{restore_line}",
                    "dst": f"src/repro/server/leaf.py:{leaf_line}",
                    "count": 1,
                }
            ]
        }
        checked = cross_check(report, modules)
        assert checked["inversions"] == [
            "LazyRestore._lock -> LeafServer._lock"
        ]
        assert not checked["ok"]

    def test_unknown_sites_pass_through(self, repo_root):
        modules = self._modules(repo_root)
        report = {"edges": [{"src": "x.py:1", "dst": "y.py:2", "count": 1}]}
        checked = cross_check(report, modules)
        assert checked["runtime_edges"] == ["x.py:1 -> y.py:2"]
        assert "x.py:1 -> y.py:2" in checked["unpredicted"]


class TestInstallLifecycle:
    def test_install_is_idempotent_and_uninstall_restores(self, repo_root):
        real_lock = threading.Lock
        first = reprosan.install(root=repo_root)
        second = reprosan.install(root=repo_root)
        assert first is second
        assert threading.Lock is not real_lock
        first.uninstall()
        assert threading.Lock is real_lock
        # a fresh install after uninstall gets a new sanitizer
        third = reprosan.install(root=repo_root)
        assert third is not first
        third.uninstall()
