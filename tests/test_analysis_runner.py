"""End-to-end tests for the reprolint runner, baseline, and CLI."""

import json

import pytest

from repro.analysis import Baseline, BaselineEntry, Finding, run_lint
from repro.analysis.runner import render_json, render_text
from repro.cli import main as cli_main


def finding(code="RL302", path="src/x.py", symbol="C.m:attr", line=10):
    return Finding(
        path=path, line=line, code=code, checker="t", symbol=symbol, message="m"
    )


class TestBaseline:
    def test_matching_ignores_line_numbers(self):
        entry = BaselineEntry("RL302", "src/x.py", "C.m:attr", "why")
        match = Baseline([entry]).apply([finding(line=99)])
        assert match.new == []
        assert [e for _, e in match.accepted] == [entry]
        assert match.stale == []

    def test_new_and_stale_are_separated(self):
        entry = BaselineEntry("RL302", "src/x.py", "C.m:gone", "why")
        match = Baseline([entry]).apply([finding()])
        assert match.new == [finding()]
        assert match.stale == [entry]

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        Baseline([BaselineEntry("RL101", "a.py", "S", "j")]).save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == [BaselineEntry("RL101", "a.py", "S", "j")]

    def test_version_mismatch_is_rejected(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_one_entry_matches_multiple_findings(self):
        """Two findings sharing (code, path, symbol) — e.g. a checker
        anchoring several lines to one construct — are both accepted by
        a single entry, which is then not stale."""
        entry = BaselineEntry("RL302", "src/x.py", "C.m:attr", "why")
        match = Baseline([entry]).apply([finding(line=10), finding(line=20)])
        assert match.new == []
        assert [e for _, e in match.accepted] == [entry, entry]
        assert match.stale == []

    def test_stale_entry_fails_the_run(self, repo_root, tmp_path):
        """A baseline entry matching nothing must fail, not rot."""
        from repro.analysis.runner import DEFAULT_BASELINE

        real = Baseline.load(repo_root / DEFAULT_BASELINE)
        real.entries.append(
            BaselineEntry("RL302", "src/gone.py", "G.m:attr", "obsolete")
        )
        target = tmp_path / "with_stale.json"
        real.save(target)
        result = run_lint(repo_root, baseline_path=target)
        assert [e.symbol for e in result.match.stale] == ["G.m:attr"]
        assert result.failed

    def test_sort_findings_is_deterministic(self):
        from repro.analysis.findings import sort_findings

        findings = [
            finding(path="src/b.py", line=5),
            finding(path="src/a.py", line=9, code="RL702"),
            finding(path="src/a.py", line=9, code="RL601"),
            finding(path="src/a.py", line=2),
        ]
        ordered = sort_findings(findings)
        assert [(f.path, f.line, f.code) for f in ordered] == [
            ("src/a.py", 2, "RL302"),
            ("src/a.py", 9, "RL601"),
            ("src/a.py", 9, "RL702"),
            ("src/b.py", 5, "RL302"),
        ]
        assert sort_findings(list(reversed(findings))) == ordered


class TestRunLint:
    def test_repo_is_clean_against_checked_in_baseline(self, repo_root):
        """The PR's acceptance gate: zero non-baselined findings."""
        result = run_lint(repo_root)
        assert result.match.new == []
        assert result.match.stale == []
        assert not result.failed
        assert result.files_scanned > 20

    def test_without_baseline_the_intentional_findings_surface(self, repo_root):
        result = run_lint(repo_root, baseline_path="/nonexistent")
        codes = {f.code for f in result.match.new}
        assert result.failed
        # the baselined families are exactly these
        assert codes == {
            "RL201",
            "RL204",
            "RL302",
            "RL502",
            "RL503",
            "RL602",
            "RL701",
            "RL702",
        }

    def test_checker_filter_scopes_baseline_staleness(self, repo_root):
        """Running one checker must not report the others' baseline
        entries as stale."""
        result = run_lint(repo_root, checkers=["layout-drift"])
        assert result.match.stale == []
        assert not result.failed

    def test_unknown_checker_is_an_error(self, repo_root):
        with pytest.raises(ValueError, match="unknown checker"):
            run_lint(repo_root, checkers=["spellcheck"])


class TestRendering:
    def test_json_shape(self, repo_root):
        result = run_lint(repo_root)
        payload = json.loads(render_json(result))
        assert payload["summary"]["failed"] is False
        assert payload["summary"]["new"] == 0
        assert {e["code"] for e in payload["accepted"]} >= {"RL302"}
        assert all(e["justification"] for e in payload["accepted"])

    def test_text_summary_line(self, repo_root):
        result = run_lint(repo_root)
        text = render_text(result)
        assert "0 new" in text
        assert "7 checkers" in text


class TestCli:
    def test_lint_clean_exit_zero(self, repo_root, capsys):
        rc = cli_main(["lint", "--root", str(repo_root)])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out

    def test_lint_json(self, repo_root, capsys):
        rc = cli_main(["lint", "--root", str(repo_root), "--format", "json"])
        assert rc == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["checkers"] == [
            "layout-drift",
            "state-machine",
            "guarded-by",
            "segment-lifecycle",
            "fallback-routing",
            "resource-balance",
            "lock-order",
        ]

    def test_lint_fails_without_baseline(self, repo_root, capsys):
        rc = cli_main(
            ["lint", "--root", str(repo_root), "--baseline", "/nonexistent"]
        )
        assert rc == 1
        assert "new" in capsys.readouterr().out

    def test_update_baseline_writes_todo_entries(self, repo_root, tmp_path, capsys):
        target = tmp_path / "fresh.json"
        rc = cli_main(
            [
                "lint",
                "--root",
                str(repo_root),
                "--baseline",
                str(target),
                "--update-baseline",
            ]
        )
        assert rc == 0
        written = Baseline.load(target)
        assert len(written.entries) == 22
        assert all(e.justification == "TODO: justify or fix" for e in written.entries)

    def test_unknown_checker_exits_two(self, repo_root, capsys):
        rc = cli_main(
            ["lint", "--root", str(repo_root), "--checker", "spellcheck"]
        )
        assert rc == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_todo_baseline_fails_until_justified(self, repo_root, tmp_path, capsys):
        """A freshly generated baseline (all-TODO) must not pass CI
        silently; --allow-todo downgrades it to warnings."""
        target = tmp_path / "fresh.json"
        cli_main(
            ["lint", "--root", str(repo_root), "--baseline", str(target),
             "--update-baseline"]
        )
        capsys.readouterr()
        rc = cli_main(["lint", "--root", str(repo_root), "--baseline", str(target)])
        out = capsys.readouterr().out
        assert rc == 1
        assert "error: TODO-justified baseline entry" in out
        rc = cli_main(
            ["lint", "--root", str(repo_root), "--baseline", str(target),
             "--allow-todo"]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "warning: TODO-justified baseline entry" in out
        assert "error:" not in out
