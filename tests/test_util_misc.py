"""Tests for checksums, clocks, and the memory tracker."""

import pytest

from repro.errors import ChecksumMismatchError
from repro.util.checksum import crc32_of, verify_crc32
from repro.util.clock import ManualClock, SystemClock
from repro.util.memtrack import MemoryTracker


class TestChecksum:
    def test_chunked_equals_whole(self):
        assert crc32_of(b"hello", b"world") == crc32_of(b"helloworld")

    def test_verify_passes(self):
        verify_crc32(crc32_of(b"data"), b"data")

    def test_verify_fails_on_flip(self):
        with pytest.raises(ChecksumMismatchError):
            verify_crc32(crc32_of(b"data"), b"dara")

    def test_empty_input(self):
        assert crc32_of() == 0
        assert crc32_of(b"") == 0


class TestClocks:
    def test_system_clock_moves_forward(self):
        clock = SystemClock()
        assert clock.now() <= clock.now()

    def test_manual_clock_advance(self):
        clock = ManualClock(10.0)
        assert clock.now() == 10.0
        clock.advance(5.0)
        assert clock.now() == 15.0

    def test_manual_clock_rejects_rewind(self):
        clock = ManualClock(10.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(5.0)

    def test_manual_clock_set_forward(self):
        clock = ManualClock(10.0)
        clock.set(30.0)
        assert clock.now() == 30.0


class TestMemoryTracker:
    def test_allocate_free_balance(self):
        tracker = MemoryTracker()
        tracker.allocate("heap", 100)
        tracker.allocate("shm", 40)
        assert tracker.total == 140
        tracker.free("heap", 60)
        assert tracker.in_region("heap") == 40
        assert tracker.total == 80

    def test_peak_tracks_maximum(self):
        tracker = MemoryTracker()
        tracker.allocate("heap", 100)
        tracker.free("heap", 100)
        tracker.allocate("heap", 30)
        assert tracker.peak_total == 100

    def test_overfree_rejected(self):
        tracker = MemoryTracker()
        tracker.allocate("heap", 10)
        with pytest.raises(ValueError):
            tracker.free("heap", 11)

    def test_negative_sizes_rejected(self):
        tracker = MemoryTracker()
        with pytest.raises(ValueError):
            tracker.allocate("heap", -1)
        with pytest.raises(ValueError):
            tracker.free("heap", -1)

    def test_history_records_timestamps(self):
        tracker = MemoryTracker()
        tracker.allocate("heap", 10, at=1.0)
        tracker.allocate("heap", 10, at=2.0)
        assert tracker.history == [(1.0, 10), (2.0, 20)]

    def test_reset_peak(self):
        tracker = MemoryTracker()
        tracker.allocate("heap", 100)
        tracker.free("heap", 90)
        tracker.reset_peak()
        assert tracker.peak_total == 10
