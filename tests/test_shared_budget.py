"""SharedFootprintBudget: the Section 4.4 bound across process boundaries.

The thread backend's :class:`FootprintBudget` contract — blocking
``acquire``, the oversized-admission rule, peak/blocked accounting —
must hold when the acquirers are forked worker processes, plus two
cross-process extras: strict FIFO admission (no starvation of an
oversized request by small latecomers) and crash reclamation
(``reclaim_process`` returns a SIGKILLed worker's bytes to the budget
and cancels its queued tickets).
"""

from __future__ import annotations

import os
import signal
import threading
import time

import pytest

from repro.core.procpool import require_fork_context
from repro.core.sharedbudget import MAX_SLOTS, SharedFootprintBudget
from repro.errors import ReproError


def wait_until(predicate, timeout=5.0, interval=0.005):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestSameProcessContract:
    """The FootprintBudget surface, verified on the shared implementation."""

    def test_tracks_in_flight_and_peak(self):
        budget = SharedFootprintBudget(100)
        budget.acquire(60)
        budget.acquire(30)
        assert budget.in_flight == 90
        budget.release(60)
        assert budget.in_flight == 30
        assert budget.peak_in_flight == 90
        budget.release(30)
        assert budget.in_flight == 0

    def test_blocks_until_release(self):
        budget = SharedFootprintBudget(100)
        budget.acquire(80)
        acquired = threading.Event()

        def worker():
            budget.acquire(40)
            acquired.set()
            budget.release(40)

        thread = threading.Thread(target=worker)
        thread.start()
        assert not acquired.wait(0.05), "acquire should block while over budget"
        budget.release(80)
        assert acquired.wait(2.0), "release should wake the blocked acquirer"
        thread.join()
        assert budget.blocked_acquires == 1
        assert budget.in_flight == 0

    def test_oversized_request_admitted_only_alone(self):
        budget = SharedFootprintBudget(10)
        budget.acquire(4)
        admitted = threading.Event()

        def worker():
            budget.acquire(50)  # larger than the whole budget
            admitted.set()
            budget.release(50)

        thread = threading.Thread(target=worker)
        thread.start()
        assert not admitted.wait(0.05), "oversized must wait for an empty budget"
        budget.release(4)
        assert admitted.wait(2.0)
        thread.join()
        assert budget.peak_in_flight == 50

    def test_reserve_context_manager_releases_on_error(self):
        budget = SharedFootprintBudget(10)
        with pytest.raises(RuntimeError):
            with budget.reserve(7):
                assert budget.in_flight == 7
                raise RuntimeError("boom")
        assert budget.in_flight == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            SharedFootprintBudget(0)
        budget = SharedFootprintBudget(10)
        with pytest.raises(ValueError):
            budget.acquire(-1)
        with pytest.raises(ValueError):
            budget.release(1)  # nothing in flight

    def test_slot_table_exhaustion_is_a_clear_error(self):
        budget = SharedFootprintBudget(MAX_SLOTS + 1)
        for _ in range(MAX_SLOTS):
            budget.acquire(1)
        with pytest.raises(ReproError, match="concurrent budget reservations"):
            budget.acquire(1)
        for _ in range(MAX_SLOTS):
            budget.release(1)
        assert budget.in_flight == 0


class TestFifoAdmission:
    def test_small_request_queues_behind_oversized(self):
        """The starvation scenario: while an oversized request waits for
        the budget to drain, a small request that *would* fit must queue
        behind it, not slip in and keep the budget non-empty forever."""
        budget = SharedFootprintBudget(10)
        budget.acquire(6)

        oversized_in = threading.Event()
        small_in = threading.Event()

        def oversized():
            budget.acquire(50)
            oversized_in.set()
            assert wait_until(lambda: budget.blocked_acquires >= 2)
            budget.release(50)

        def small():
            budget.acquire(4)
            small_in.set()
            budget.release(4)

        big = threading.Thread(target=oversized)
        big.start()
        assert wait_until(lambda: budget.blocked_acquires == 1)
        little = threading.Thread(target=small)
        little.start()
        assert wait_until(lambda: budget.blocked_acquires == 2)
        # 6 + 4 <= 10, but FIFO: the small request must not jump the line.
        assert not small_in.wait(0.05), "small request overtook the oversized one"
        budget.release(6)
        assert oversized_in.wait(2.0), "oversized request starved"
        assert small_in.wait(2.0), "queue stalled behind the oversized admission"
        big.join()
        little.join()
        assert budget.in_flight == 0


class TestCrossProcess:
    """Forked children and the parent share one byte limit."""

    def test_child_reservation_visible_to_parent(self):
        ctx = require_fork_context()
        budget = SharedFootprintBudget(100, ctx=ctx)
        holding = ctx.Event()
        proceed = ctx.Event()

        def child():
            budget.acquire(60)
            holding.set()
            proceed.wait(10)
            budget.release(60)

        proc = ctx.Process(target=child)
        proc.start()
        assert holding.wait(5), "child never acquired"
        assert budget.in_flight == 60
        proceed.set()
        proc.join(5)
        assert proc.exitcode == 0
        assert budget.in_flight == 0
        assert budget.peak_in_flight == 60

    def test_many_children_never_exceed_the_limit(self):
        """Eight children churn acquire/copy/release; the shared peak
        must stay under the limit (no request here is oversized)."""
        ctx = require_fork_context()
        limit = 100
        budget = SharedFootprintBudget(limit, ctx=ctx)

        def child(nbytes):
            for _ in range(5):
                with budget.reserve(nbytes):
                    time.sleep(0.001)

        procs = [ctx.Process(target=child, args=(30,)) for _ in range(8)]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(30)
            assert proc.exitcode == 0
        assert budget.in_flight == 0
        assert 30 <= budget.peak_in_flight <= limit

    def test_reclaim_after_sigkill_returns_held_bytes(self):
        ctx = require_fork_context()
        budget = SharedFootprintBudget(100, ctx=ctx)
        holding = ctx.Event()

        def child():
            budget.acquire(30)
            holding.set()
            time.sleep(600)  # hold forever; the parent will SIGKILL us

        proc = ctx.Process(target=child)
        proc.start()
        assert holding.wait(5)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(5)
        assert budget.in_flight == 30  # the corpse still holds its bytes
        assert budget.reclaim_process(proc.pid) == 30
        assert budget.in_flight == 0
        # Idempotent: a second reclaim of the same pid is a no-op.
        assert budget.reclaim_process(proc.pid) == 0

    def test_reclaim_cancels_a_dead_waiters_ticket(self):
        """A worker SIGKILLed while *queued* must not stall the FIFO line:
        reclaim cancels its ticket and later acquires get served."""
        ctx = require_fork_context()
        budget = SharedFootprintBudget(10, ctx=ctx)
        budget.acquire(10)  # parent fills the budget

        def child():
            budget.acquire(5)  # blocks forever behind the parent

        proc = ctx.Process(target=child)
        proc.start()
        assert wait_until(lambda: budget.blocked_acquires == 1)
        os.kill(proc.pid, signal.SIGKILL)
        proc.join(5)
        budget.reclaim_process(proc.pid)
        budget.release(10)

        served = threading.Event()

        def late_acquirer():
            budget.acquire(10)
            served.set()
            budget.release(10)

        thread = threading.Thread(target=late_acquirer)
        thread.start()
        assert served.wait(2.0), "dead waiter's ticket wedged the queue"
        thread.join()
        assert budget.in_flight == 0
