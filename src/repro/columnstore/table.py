"""Tables: a vector of sealed row blocks plus an open write buffer.

New rows land in a row-oriented write buffer; once 65,536 rows (or the
1 GB pre-compression cap) accumulate, the buffer is sealed into a
compressed :class:`RowBlock`.  Tables also delete data "as it expires due
to either age or size limits" (paper, Section 2).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.columnstore.colcache import DecodedColumnCache
from repro.columnstore.rowblock import MAX_ROWBLOCK_BYTES, ROWS_PER_BLOCK, RowBlock
from repro.errors import SchemaError
from repro.types import TIME_COLUMN, ColumnValue
from repro.util.clock import Clock, SystemClock


def estimate_row_bytes(row: Mapping[str, ColumnValue]) -> int:
    """Rough pre-compression size of one row, for the 1 GB block cap."""
    total = 0
    for name, value in row.items():
        total += len(name) + 8
        if isinstance(value, str):
            total += len(value)
        elif isinstance(value, list):
            total += sum(len(item) + 4 for item in value)
        else:
            total += 8
    return total


class Table:
    """One table's shard on one leaf server (paper, Figure 2).

    The header fields of Figure 2 — table name and row block count — are
    the ``name`` attribute and ``len(table.blocks)``.
    """

    def __init__(
        self,
        name: str,
        clock: Clock | None = None,
        rows_per_block: int = ROWS_PER_BLOCK,
        max_block_bytes: int = MAX_ROWBLOCK_BYTES,
        cache: DecodedColumnCache | None = None,
    ) -> None:
        if not name:
            raise ValueError("table name must be non-empty")
        if rows_per_block < 1:
            raise ValueError("rows_per_block must be positive")
        self.name = name
        self._clock = clock or SystemClock()
        self._rows_per_block = rows_per_block
        self._max_block_bytes = max_block_bytes
        self._cache = cache
        self._blocks: list[RowBlock] = []
        self._buffer: list[dict[str, ColumnValue]] = []
        self._buffer_bytes = 0
        #: Rows ever ingested / ever expired — monotone counters the
        #: incremental disk backup uses as sync watermarks.
        self.total_rows_ingested = 0
        self.total_rows_expired = 0

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def add_row(self, row: Mapping[str, ColumnValue]) -> None:
        """Append one row; seals a row block when a cap is reached."""
        if TIME_COLUMN not in row:
            raise SchemaError(f"row lacks the required '{TIME_COLUMN}' column")
        time_value = row[TIME_COLUMN]
        if not isinstance(time_value, int) or isinstance(time_value, bool):
            raise SchemaError(f"'{TIME_COLUMN}' must be an integer unix timestamp")
        self._buffer.append(dict(row))
        self._buffer_bytes += estimate_row_bytes(row)
        self.total_rows_ingested += 1
        if (
            len(self._buffer) >= self._rows_per_block
            or self._buffer_bytes >= self._max_block_bytes
        ):
            self.seal_buffer()

    def add_rows(self, rows: Iterable[Mapping[str, ColumnValue]]) -> int:
        """Append many rows; returns the number added."""
        count = 0
        for row in rows:
            self.add_row(row)
            count += 1
        return count

    def seal_buffer(self) -> RowBlock | None:
        """Compress the write buffer into a row block; no-op when empty."""
        if not self._buffer:
            return None
        block = RowBlock.from_rows(self._buffer, created_at=self._clock.now())
        self._blocks.append(block)
        self._buffer = []
        self._buffer_bytes = 0
        return block

    # ------------------------------------------------------------------
    # Expiry (age and size limits)
    # ------------------------------------------------------------------

    def expire_before(self, cutoff_time: int) -> int:
        """Drop sealed row blocks entirely older than ``cutoff_time``.

        Expiry is block-granular, as in Scuba: a block survives until its
        *maximum* timestamp has aged out.  Returns rows dropped.
        """
        kept: list[RowBlock] = []
        dropped: list[RowBlock] = []
        for block in self._blocks:
            if block.max_time < cutoff_time:
                dropped.append(block)
            else:
                kept.append(block)
        self._blocks = kept
        self._invalidate_cached(dropped)
        dropped_rows = sum(block.row_count for block in dropped)
        self.total_rows_expired += dropped_rows
        return dropped_rows

    def enforce_size_limit(self, max_bytes: int) -> int:
        """Drop oldest row blocks until compressed size fits ``max_bytes``."""
        dropped: list[RowBlock] = []
        while self._blocks and self.sealed_nbytes > max_bytes:
            dropped.append(self._blocks.pop(0))
        self._invalidate_cached(dropped)
        dropped_rows = sum(block.row_count for block in dropped)
        self.total_rows_expired += dropped_rows
        return dropped_rows

    # ------------------------------------------------------------------
    # Introspection / scan
    # ------------------------------------------------------------------

    @property
    def blocks(self) -> list[RowBlock]:
        """The sealed row blocks, oldest first."""
        return list(self._blocks)

    @property
    def rows_per_block(self) -> int:
        """The row-count seal threshold (parallel replay must match it)."""
        return self._rows_per_block

    @property
    def max_block_bytes(self) -> int:
        """The pre-compression byte seal threshold."""
        return self._max_block_bytes

    @property
    def block_count(self) -> int:
        return len(self._blocks)

    @property
    def row_count(self) -> int:
        """Rows across sealed blocks and the open buffer."""
        return sum(block.row_count for block in self._blocks) + len(self._buffer)

    @property
    def sealed_nbytes(self) -> int:
        return sum(block.nbytes for block in self._blocks)

    @property
    def nbytes(self) -> int:
        """Compressed sealed bytes plus the buffer's rough estimate."""
        return self.sealed_nbytes + self._buffer_bytes

    @property
    def buffered_row_count(self) -> int:
        return len(self._buffer)

    def scan(
        self,
        start_time: int | None = None,
        end_time: int | None = None,
    ) -> Iterator[dict[str, ColumnValue]]:
        """Yield rows whose timestamp falls in ``[start_time, end_time)``.

        Sealed blocks outside the range are pruned via their min/max
        timestamps without being decompressed.
        """
        for block in self._blocks:
            if not block.overlaps(start_time, end_time):
                continue
            for row in block.to_rows():
                if _time_in_range(row[TIME_COLUMN], start_time, end_time):
                    yield row
        for row in self._buffer:
            if _time_in_range(row[TIME_COLUMN], start_time, end_time):
                yield dict(row)

    def iter_buffer_rows(
        self,
        start_time: int | None = None,
        end_time: int | None = None,
    ) -> Iterator[dict[str, ColumnValue]]:
        """Yield (copies of) unsealed write-buffer rows in the time range.

        The vectorized executor handles sealed blocks in array form and
        drains the row-oriented buffer through this iterator — the
        buffer is small by construction (at most one block's worth).
        """
        for row in self._buffer:
            if _time_in_range(row[TIME_COLUMN], start_time, end_time):
                yield dict(row)

    def to_rows(self) -> list[dict[str, ColumnValue]]:
        """Every row in the table (for equality checks in tests)."""
        return list(self.scan())

    # ------------------------------------------------------------------
    # Restart engine hooks
    # ------------------------------------------------------------------

    def replace_blocks(self, blocks: list[RowBlock]) -> None:
        """Install recovered row blocks (memory or disk recovery)."""
        self._invalidate_cached(self._blocks)
        self._blocks = list(blocks)

    def install_restored_blocks(self, restored: list[RowBlock]) -> None:
        """Reconcile the lazily-restored prefix with the live block list.

        Unlike :meth:`replace_blocks` (the blocking-restore hook, which
        drops the whole list and invalidates every cached decode), this
        installs the growing restored prefix *in directory order* ahead
        of any blocks sealed from rows added during the restore, and
        leaves cached decodes alone — already-adopted blocks stay
        resident, so their entries are still valid.  Blocks that left
        the table since adoption (expiry, size limits) must be omitted
        from ``restored`` by the caller; they are not resurrected here.
        """
        restored_uids = {block.uid for block in restored}
        tail = [b for b in self._blocks if b.uid not in restored_uids]
        self._blocks = list(restored) + tail

    def take_blocks(self) -> list[RowBlock]:
        """Remove and return all sealed blocks (shutdown copy loop).

        The caller becomes responsible for the blocks; the table is left
        empty so its heap bytes can be freed block-by-block as the copy
        proceeds (paper, Figure 6).  Cached decodes of the taken blocks
        are dropped here — the copy loop is about to release each RBC's
        heap buffer, and decoded arrays must not outlive the data they
        were derived from.
        """
        blocks = self._blocks
        self._blocks = []
        self._invalidate_cached(blocks)
        return blocks

    # ------------------------------------------------------------------
    # Decoded-column cache hooks
    # ------------------------------------------------------------------

    @property
    def cache(self) -> DecodedColumnCache | None:
        """The decoded-column cache sealed-block queries read through."""
        return self._cache

    def set_cache(self, cache: DecodedColumnCache | None) -> None:
        """Attach (or detach) the cache; used by the leaf map's adopt path."""
        self._cache = cache

    def _invalidate_cached(self, blocks: list[RowBlock]) -> None:
        if self._cache is not None and blocks:
            self._cache.invalidate_blocks(block.uid for block in blocks)


def _time_in_range(
    timestamp: ColumnValue, start_time: int | None, end_time: int | None
) -> bool:
    if start_time is not None and timestamp < start_time:
        return False
    if end_time is not None and timestamp >= end_time:
        return False
    return True
