"""Row blocks (paper, Figure 2).

A row block holds all the data for a set of up to 65,536 consecutively
arrived rows: a header (size, row count, min/max timestamps, creation
timestamp), a schema, and one row block column per schema column.

In heap format the RBC buffers are separate allocations referenced by a
vector (one level of indirection).  ``pack``/``unpack`` convert to and from
the *contiguous* layout of Figure 4, where the header, schema, column
offset table, and all RBC payloads occupy a single buffer — the form used
inside shared memory segments and by the shm-format disk files of
experiment E12.
"""

from __future__ import annotations

import itertools
import struct
from typing import Iterable, Mapping

from repro.columnstore.rbc import RowBlockColumn, build_rbc, rbc_extent
from repro.columnstore.schema import Schema
from repro.compression.decoded import DecodedColumn
from repro.errors import CapacityError, CorruptionError, LayoutVersionError, SchemaError
from repro.types import TIME_COLUMN, ColumnValue
from repro.util.binary import BufferReader, BufferWriter

#: Paper: "Each row block contains 65,536 rows that arrived consecutively."
ROWS_PER_BLOCK = 65536

#: Paper: "The row block is capped at 1 GB, pre-compression."
MAX_ROWBLOCK_BYTES = 1 << 30

ROWBLOCK_MAGIC = 0x4B4C4252  # "RBLK"
ROWBLOCK_VERSION = 1

PACK_HEADER = struct.Struct("<IHHQQqqd")  # magic, ver, pad, total, rows, min, max, created

#: Process-unique row block ids, handed out at construction.  The
#: decoded-column cache keys on them: a uid is never reused, so a cache
#: entry can never be served for a different block that happens to land
#: at the same address (the failure mode of keying on ``id(block)``).
_BLOCK_UIDS = itertools.count(1)


class RowBlock:
    """An immutable sealed row block in heap format."""

    def __init__(
        self,
        schema: Schema,
        rbcs: dict[str, bytes],
        row_count: int,
        min_time: int,
        max_time: int,
        created_at: float,
    ) -> None:
        if set(rbcs) != set(schema.names):
            raise SchemaError("row block columns do not match the schema")
        self.schema = schema
        self._rbcs = rbcs
        self.row_count = row_count
        self.min_time = min_time
        self.max_time = max_time
        self.created_at = created_at
        self.uid = next(_BLOCK_UIDS)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_rows(
        cls,
        rows: list[Mapping[str, ColumnValue]],
        created_at: float,
        schema: Schema | None = None,
    ) -> "RowBlock":
        """Seal ``rows`` into a compressed row block.

        This is the expensive "translate to in-memory format" step: every
        column is extracted, compressed, and serialized into its RBC
        buffer.
        """
        if not rows:
            raise ValueError("a row block must contain at least one row")
        if len(rows) > ROWS_PER_BLOCK:
            raise CapacityError(
                f"{len(rows)} rows exceed the {ROWS_PER_BLOCK}-row block cap"
            )
        if schema is None:
            schema = Schema.from_rows(rows)
        times = [row[TIME_COLUMN] for row in rows]
        rbcs = {
            name: build_rbc(ctype, schema.column_values(name, rows))
            for name, ctype in schema.items()
        }
        return cls(
            schema,
            rbcs,
            row_count=len(rows),
            min_time=min(times),
            max_time=max(times),
            created_at=created_at,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Compressed size: the sum of the RBC buffers."""
        return sum(len(buf) for buf in self._rbcs.values())

    @property
    def column_names(self) -> list[str]:
        return self.schema.names

    def rbc_buffer(self, name: str) -> bytes:
        """The raw RBC buffer for one column (the unit of copying)."""
        try:
            return self._rbcs[name]
        except KeyError:
            raise SchemaError(f"row block has no column '{name}'") from None

    def rbc_buffers(self) -> Iterable[tuple[str, bytes]]:
        """(name, buffer) pairs in schema order — the shutdown copy loop."""
        for name in self.schema.names:
            yield name, self._rbcs[name]

    def column_values(self, name: str) -> list[ColumnValue]:
        """Decode one column back to Python values."""
        column = RowBlockColumn(self._rbcs[name])
        values = column.values(self.schema.type_of(name))
        if len(values) != self.row_count:
            raise CorruptionError(
                f"column '{name}' decodes to {len(values)} values; row block "
                f"header says {self.row_count} rows"
            )
        return values

    def decoded_column(self, name: str) -> DecodedColumn:
        """Decode one column to its array form (the vectorized read path).

        Unlike :meth:`to_rows` this touches only the named column's RBC
        buffer — a query that references three of twelve columns pays
        for three decodes.  Returns a cache-safe :class:`DecodedColumn`
        whose arrays are fresh heap copies.
        """
        column = RowBlockColumn(self._rbcs[name])
        decoded = column.decoded(self.schema.type_of(name))
        if len(decoded) != self.row_count:
            raise CorruptionError(
                f"column '{name}' decodes to {len(decoded)} values; row block "
                f"header says {self.row_count} rows"
            )
        return decoded

    def project(self, names: Iterable[str]) -> dict[str, DecodedColumn]:
        """Decode exactly the named columns that exist in this block.

        Column projection for the vectorized executor: names absent from
        the schema are simply omitted (the caller treats them as missing
        everywhere, matching the row path's ``row.get``), and no row
        dicts are ever materialized.
        """
        return {
            name: self.decoded_column(name)
            for name in names
            if name in self.schema
        }

    def to_rows(self) -> list[dict[str, ColumnValue]]:
        """Materialize all rows (column defaults included — lossy only in
        that a row that omitted a column comes back with the default)."""
        columns = {name: self.column_values(name) for name in self.schema.names}
        return [
            {name: columns[name][i] for name in self.schema.names}
            for i in range(self.row_count)
        ]

    def overlaps(self, start_time: int | None, end_time: int | None) -> bool:
        """Whether any row's timestamp could fall in ``[start, end)``.

        This is the min/max pruning the paper describes: "the minimum and
        maximum timestamps are used to decide whether to even look at a
        row block when processing a query."
        """
        if start_time is not None and self.max_time < start_time:
            return False
        if end_time is not None and self.min_time >= end_time:
            return False
        return True

    def release_column(self, name: str) -> int:
        """Drop one column's heap buffer, returning its size.

        Used only by the restart engine's shutdown loop: after an RBC has
        been copied into shared memory its heap bytes are freed
        immediately (paper, Figure 6).  The block is unusable for queries
        afterwards.
        """
        try:
            buf = self._rbcs.pop(name)
        except KeyError:
            raise SchemaError(f"row block has no column '{name}'") from None
        return len(buf)

    def verify(self) -> None:
        """Checksum-verify every column buffer."""
        for name in self.schema.names:
            RowBlockColumn(self._rbcs[name]).verify()

    # ------------------------------------------------------------------
    # Contiguous (shared memory / new disk) layout
    # ------------------------------------------------------------------

    def pack(self) -> bytes:
        """Serialize to the contiguous Figure-4 layout.

        ``header | schema | column offset table | RBC0 .. RBCk`` — the
        offset table replaces the heap's per-column pointer vector, which
        is the "one level of indirection" the shared memory layout loses.
        """
        writer = BufferWriter()
        writer.write_bytes(b"\x00" * PACK_HEADER.size)  # patched below
        self.schema.serialize(writer)
        names = self.schema.names
        writer.write_varint(len(names))
        offset_slots = [writer.reserve_u64() for _ in names]
        for slot, name in zip(offset_slots, names):
            writer.patch_u64(slot, writer.offset)
            writer.write_bytes(self._rbcs[name])
        buf = bytearray(writer.getvalue())
        PACK_HEADER.pack_into(
            buf,
            0,
            ROWBLOCK_MAGIC,
            ROWBLOCK_VERSION,
            0,
            len(buf),
            self.row_count,
            self.min_time,
            self.max_time,
            self.created_at,
        )
        return bytes(buf)

    @classmethod
    def unpack(cls, buf: bytes | memoryview, copy: bool = True) -> "RowBlock":
        """Parse a contiguous row block back into heap format.

        This is the restore hot path, so it stays deliberately thin: each
        RBC is located from its header's size field and materialized with
        **one bulk ``bytes()``** — no intermediate
        :class:`~repro.columnstore.rbc.RowBlockColumn` is constructed and
        no section is re-copied.  Structural and checksum validation is
        the job of :meth:`verify` (the restart engine calls it on every
        restored block) and of the decoders at query time.

        With ``copy=False`` the column buffers are ``memoryview`` slices
        over ``buf`` — a zero-copy *attach* rather than a materialization.
        The caller then owns the lifetime problem: the views (and any
        block built from them) die with the underlying buffer, so this
        form is for transient reads (inspection, re-serialization) — not
        for blocks that must outlive a shared memory segment.
        """
        if len(buf) < PACK_HEADER.size:
            raise CorruptionError("packed row block shorter than its header")
        view = memoryview(buf)
        magic, version, _, total, row_count, min_time, max_time, created_at = (
            PACK_HEADER.unpack(view[: PACK_HEADER.size])
        )
        if magic != ROWBLOCK_MAGIC:
            raise CorruptionError(f"bad row block magic 0x{magic:08x}")
        if version != ROWBLOCK_VERSION:
            raise LayoutVersionError(
                f"row block layout version {version} not readable by this build"
            )
        if total != len(view):
            raise CorruptionError(
                f"packed row block claims {total} bytes but buffer holds {len(view)}"
            )
        reader = BufferReader(view, offset=PACK_HEADER.size)
        schema = Schema.deserialize(reader)
        n_columns = reader.read_varint()
        if n_columns != len(schema):
            raise CorruptionError(
                f"offset table has {n_columns} entries for a {len(schema)}-column schema"
            )
        offsets = [reader.read_u64() for _ in range(n_columns)]
        rbcs: dict[str, bytes] = {}
        for name, offset in zip(schema.names, offsets):
            if not PACK_HEADER.size <= offset < total:
                raise CorruptionError(f"column '{name}' offset {offset} out of bounds")
            size = rbc_extent(view, offset)
            if offset + size > total:
                raise CorruptionError(
                    f"column '{name}' extent {offset}+{size} overruns the "
                    f"{total}-byte packed row block"
                )
            sliced = view[offset : offset + size]
            rbcs[name] = bytes(sliced) if copy else sliced
        return cls(schema, rbcs, row_count, min_time, max_time, created_at)
