"""The decoded-column cache: (row block, column) → :class:`DecodedColumn`.

Dashboard traffic is repetitive — the same handful of queries over the
same recent blocks, refreshed every few seconds.  Without a cache every
refresh re-decompresses the same RBC buffers; with one, a sealed block's
column is decoded once and every later query that names it gets the
arrays back in a dict lookup.

Design constraints, in paper order:

- **Byte-capped LRU.**  Decoded arrays are the *uncompressed* data, so
  an unbounded cache would silently undo the 30x compression win.  The
  cap is enforced on a tracked byte total; eviction is
  least-recently-used at entry granularity.
- **Charged to the leaf's** :class:`~repro.util.memtrack.MemoryTracker`
  (region ``"cache"``), so the Section 4.4 footprint claim stays
  checkable: the cache's bytes are visible next to heap and shm, and the
  restart engine drops them before the copy loop starts.
- **Keyed by block uid, not identity.**  Row blocks are immutable, so an
  entry can never go stale — but blocks *leave* (expiry, size limits,
  ``take_blocks`` during shutdown, restore fallbacks), and their entries
  must leave with them or the bytes linger forever.  Tables call
  :meth:`invalidate_blocks` at every point a block exits.
- **Lock-guarded.**  Queries may run concurrently with expiry and with
  lifecycle transitions on other threads; every attribute is touched
  only under ``self._lock`` (reprolint's RL3xx checker enforces this).
  Decoding itself happens *outside* the lock so concurrent queries
  don't serialize on decompression.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from dataclasses import field as dataclass_field
from typing import TYPE_CHECKING, Iterable

from repro.compression.decoded import DecodedColumn

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (rowblock ← rbc)
    from repro.columnstore.rowblock import RowBlock
    from repro.util.memtrack import MemoryTracker

#: Default cap: a few dozen decoded columns at test scale while staying
#: far below a leaf's data size (a production leaf would size this as a
#: fraction of its 10-15 GB capacity).
DEFAULT_CACHE_BYTES = 32 << 20

#: The MemoryTracker region decoded columns are charged to.
CACHE_REGION = "cache"


@dataclass(frozen=True)
class CacheStats:
    """A consistent snapshot of the cache's counters."""

    entries: int
    nbytes: int
    capacity_bytes: int
    hits: int
    misses: int
    evictions: int
    invalidations: int
    #: Lifetime lookups per column name — the demand signal the lazy
    #: restore's background sweep orders its fault-ins by.
    column_lookups: dict[str, int] = dataclass_field(default_factory=dict)

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0


class DecodedColumnCache:
    """Byte-capped LRU cache of decoded row block columns."""

    def __init__(
        self,
        capacity_bytes: int = DEFAULT_CACHE_BYTES,
        tracker: "MemoryTracker | None" = None,
    ) -> None:
        if capacity_bytes < 0:
            raise ValueError(f"cache capacity must be non-negative, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self._tracker = tracker
        self._lock = threading.RLock()
        self._entries: OrderedDict[tuple[int, str], DecodedColumn] = OrderedDict()
        self._by_block: dict[int, set[str]] = {}
        self._nbytes = 0
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0
        #: Lookups per column *name* (not per block): the heat signal.
        #: Deliberately not reset by clear() — restores empty the cache,
        #: but what was hot before the restart is exactly what the lazy
        #: restore's sweep wants to fault in first.
        self._column_lookups: dict[str, int] = {}

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------

    def get(self, block: "RowBlock", name: str) -> DecodedColumn | None:
        """The cached decode of ``block``'s column ``name``, or None."""
        with self._lock:
            self._column_lookups[name] = self._column_lookups.get(name, 0) + 1
            entry = self._entries.get((block.uid, name))
            if entry is None:
                self._misses += 1
                return None
            self._entries.move_to_end((block.uid, name))
            self._hits += 1
            return entry

    def put(self, block: "RowBlock", name: str, decoded: DecodedColumn) -> None:
        """Insert a decode result, evicting LRU entries past the cap.

        An entry larger than the whole cap is not cached at all (it
        would only evict everything and then be evicted itself).
        """
        nbytes = decoded.nbytes
        if nbytes > self.capacity_bytes:
            return
        with self._lock:
            key = (block.uid, name)
            if key in self._entries:
                self._entries.move_to_end(key)
                return
            self._entries[key] = decoded
            self._by_block.setdefault(block.uid, set()).add(name)
            self._nbytes += nbytes
            self._charge(nbytes)
            while self._nbytes > self.capacity_bytes:
                self._evict_oldest()

    def get_or_decode(self, block: "RowBlock", name: str) -> DecodedColumn:
        """Cached decode of one column, decoding on miss.

        The decode runs outside the lock, so two threads missing on the
        same key may both decode; the second insert is dropped by
        :meth:`put` — wasted work, never a wrong answer.
        """
        cached = self.get(block, name)
        if cached is not None:
            return cached
        decoded = block.decoded_column(name)
        self.put(block, name, decoded)
        return decoded

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------

    def invalidate_blocks(self, uids: Iterable[int]) -> int:
        """Drop every entry of the given block uids; returns bytes freed.

        Called by tables whenever blocks exit (expiry, size limits,
        ``take_blocks``, ``replace_blocks``) — the cache must never hold
        decoded data for blocks the store no longer owns.
        """
        with self._lock:
            freed = 0
            for uid in uids:
                names = self._by_block.pop(uid, None)
                if not names:
                    continue
                for name in names:
                    entry = self._entries.pop((uid, name))
                    freed += entry.nbytes
                    self._invalidations += 1
            if freed:
                self._nbytes -= freed
                self._discharge(freed)
            return freed

    def clear(self) -> int:
        """Drop everything; returns bytes freed.

        The restart engine calls this before the Figure-6 copy loop so
        the only bytes in flight during shutdown are heap + shm — the
        footprint invariant the paper's Section 4.4 argues for.
        """
        with self._lock:
            freed = self._nbytes
            self._invalidations += len(self._entries)
            self._entries.clear()
            self._by_block.clear()
            self._nbytes = 0
            if freed:
                self._discharge(freed)
            return freed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        with self._lock:
            return self._nbytes

    def column_heat(self) -> dict[str, int]:
        """Lifetime lookups per column name (a copy; hottest = largest)."""
        with self._lock:
            return dict(self._column_lookups)

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                entries=len(self._entries),
                nbytes=self._nbytes,
                capacity_bytes=self.capacity_bytes,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                invalidations=self._invalidations,
                column_lookups=dict(self._column_lookups),
            )

    # ------------------------------------------------------------------
    # Internals (lock already held by every caller)
    # ------------------------------------------------------------------

    def _evict_oldest(self) -> None:
        key, entry = self._entries.popitem(last=False)
        uid, name = key
        names = self._by_block.get(uid)
        if names is not None:
            names.discard(name)
            if not names:
                del self._by_block[uid]
        self._nbytes -= entry.nbytes
        self._evictions += 1
        self._discharge(entry.nbytes)

    def _charge(self, nbytes: int) -> None:
        if self._tracker is not None:
            self._tracker.allocate(CACHE_REGION, nbytes)

    def _discharge(self, nbytes: int) -> None:
        if self._tracker is not None:
            self._tracker.free(CACHE_REGION, nbytes)


__all__ = ["CacheStats", "DecodedColumnCache", "DEFAULT_CACHE_BYTES", "CACHE_REGION"]
