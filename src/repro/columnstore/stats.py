"""Table statistics: the operator's view of a leaf's storage.

Answers the questions an engineer asks before and after a restart: how
many row blocks, how compressed is each column, what would this table's
shared memory segment cost, which time range does it span.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.columnstore.table import Table, estimate_row_bytes
from repro.types import ColumnType


@dataclass(frozen=True)
class ColumnStats:
    """One column across every sealed row block of a table."""

    name: str
    ctype: ColumnType
    compressed_bytes: int
    raw_bytes_estimate: int

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes_estimate / self.compressed_bytes


@dataclass
class TableStats:
    """A table's storage summary."""

    name: str
    row_count: int
    buffered_rows: int
    block_count: int
    compressed_bytes: int
    raw_bytes_estimate: int
    min_time: int | None
    max_time: int | None
    columns: list[ColumnStats] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        if self.compressed_bytes == 0:
            return 1.0
        return self.raw_bytes_estimate / self.compressed_bytes


def _raw_column_estimate(ctype: ColumnType, values) -> int:
    if ctype in (ColumnType.INT64, ColumnType.FLOAT64):
        return 8 * len(values)
    if ctype is ColumnType.STRING:
        return sum(len(v.encode()) + 4 for v in values)
    return sum(sum(len(s.encode()) + 4 for s in v) + 4 for v in values)


def table_stats(table: Table) -> TableStats:
    """Compute storage statistics for one table.

    Raw sizes are estimates (the uncompressed in-memory representation
    never exists as one buffer); decoding each column once is the price
    of the per-column ratio, so this is an operator tool, not a hot
    path.
    """
    blocks = table.blocks
    per_column: dict[str, list[int]] = {}  # name -> [compressed, raw]
    column_types: dict[str, ColumnType] = {}
    for block in blocks:
        for name in block.schema.names:
            ctype = block.schema.type_of(name)
            column_types[name] = ctype
            compressed = len(block.rbc_buffer(name))
            raw = _raw_column_estimate(ctype, block.column_values(name))
            entry = per_column.setdefault(name, [0, 0])
            entry[0] += compressed
            entry[1] += raw
    columns = [
        ColumnStats(name, column_types[name], compressed, raw)
        for name, (compressed, raw) in sorted(per_column.items())
    ]
    buffer_estimate = sum(
        estimate_row_bytes(row) for row in table.scan()
    ) if not blocks and table.buffered_row_count else 0
    return TableStats(
        name=table.name,
        row_count=table.row_count,
        buffered_rows=table.buffered_row_count,
        block_count=table.block_count,
        compressed_bytes=table.sealed_nbytes,
        raw_bytes_estimate=sum(entry[1] for entry in per_column.values())
        + buffer_estimate,
        min_time=min((block.min_time for block in blocks), default=None),
        max_time=max((block.max_time for block in blocks), default=None),
        columns=columns,
    )


def format_table_stats(stats: TableStats) -> str:
    """Human-readable report."""
    lines = [
        f"table {stats.name!r}: {stats.row_count:,} rows "
        f"({stats.buffered_rows} buffered), {stats.block_count} row blocks",
        f"  compressed {stats.compressed_bytes:,} B from "
        f"~{stats.raw_bytes_estimate:,} B ({stats.compression_ratio:.1f}x)",
    ]
    if stats.min_time is not None:
        lines.append(f"  time range [{stats.min_time}, {stats.max_time}]")
    for column in stats.columns:
        lines.append(
            f"  {column.name:>20s} {column.ctype.name:<13s} "
            f"{column.compressed_bytes:>10,} B  {column.compression_ratio:>6.1f}x"
        )
    return "\n".join(lines)
