"""The heap-format column store (paper, Section 2.1 and Figure 2).

A leaf server's data lives in a :class:`LeafMap` of :class:`Table` objects.
Each table holds a vector of sealed :class:`RowBlock` objects (up to 65,536
rows each) plus an open write buffer; each row block holds one serialized
:class:`RowBlockColumn` buffer per column, in which *every internal pointer
is an offset from the buffer's base address* so the whole column moves
between heap, shared memory, and disk with a single copy.
"""

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rbc import RBC_VERSION, RowBlockColumn, build_rbc
from repro.columnstore.rowblock import (
    MAX_ROWBLOCK_BYTES,
    ROWS_PER_BLOCK,
    RowBlock,
)
from repro.columnstore.schema import Schema, infer_column_type
from repro.columnstore.stats import (
    ColumnStats,
    TableStats,
    format_table_stats,
    table_stats,
)

__all__ = [
    "ColumnStats",
    "LeafMap",
    "MAX_ROWBLOCK_BYTES",
    "RBC_VERSION",
    "ROWS_PER_BLOCK",
    "RowBlock",
    "RowBlockColumn",
    "Schema",
    "Table",
    "TableStats",
    "format_table_stats",
    "table_stats",
    "build_rbc",
    "infer_column_type",
]

from repro.columnstore.table import Table  # noqa: E402  (avoid import cycle)
