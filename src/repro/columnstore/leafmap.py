"""The leaf map: the root of a leaf server's heap data (paper, Figure 2).

"There is a leaf map containing a vector of pointers, one pointer to each
table."  Here it is a name-keyed mapping of :class:`Table` objects plus
the aggregate accounting the tailer's routing decisions need (free memory
= capacity minus total bytes).
"""

from __future__ import annotations

from typing import Iterator

from repro.columnstore.colcache import DecodedColumnCache
from repro.columnstore.table import Table
from repro.errors import SchemaError
from repro.util.clock import Clock, SystemClock


class LeafMap:
    """All tables of one leaf server."""

    def __init__(
        self,
        clock: Clock | None = None,
        rows_per_block: int | None = None,
        column_cache: DecodedColumnCache | None = None,
    ) -> None:
        self._clock = clock or SystemClock()
        self._rows_per_block = rows_per_block
        #: The leaf-wide decoded-column cache every table reads through.
        #: One cache per leaf (not per table) so the byte cap is a leaf
        #: budget and the restart engine has a single thing to drop.
        self.column_cache = column_cache
        self._tables: dict[str, Table] = {}
        #: The in-progress lazy restore, when one is serving this map.
        #: Set by :class:`~repro.core.lazyrestore.LazyRestore` at
        #: directory-publish time and cleared when every block is in (or
        #: the restore fell back to disk); ``execute_on_leaf`` checks it
        #: to fault in the blocks a query touches.
        self.restorer = None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        return list(self._tables)

    def create_table(self, name: str) -> Table:
        """Create an empty table; refuses to overwrite an existing one."""
        if name in self._tables:
            raise SchemaError(f"table '{name}' already exists")
        kwargs = {}
        if self._rows_per_block is not None:
            kwargs["rows_per_block"] = self._rows_per_block
        table = Table(name, clock=self._clock, cache=self.column_cache, **kwargs)
        self._tables[name] = table
        return table

    def get_table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(f"no such table '{name}'") from None

    def get_or_create(self, name: str) -> Table:
        table = self._tables.get(name)
        if table is None:
            table = self.create_table(name)
        return table

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise SchemaError(f"no such table '{name}'")
        table = self._tables.pop(name)
        if self.column_cache is not None:
            self.column_cache.invalidate_blocks(
                block.uid for block in table.blocks
            )

    def adopt_table(self, table: Table) -> None:
        """Install a recovered table object (restore path)."""
        if table.name in self._tables:
            raise SchemaError(f"table '{table.name}' already exists")
        table.set_cache(self.column_cache)
        self._tables[table.name] = table

    def drop_column_cache(self) -> int:
        """Empty the decoded-column cache; returns bytes freed.

        The restart engine calls this before the shutdown copy loop and
        before any restore, so cached decodes never count against the
        restart footprint and a restored leaf always starts cold.
        """
        if self.column_cache is None:
            return 0
        return self.column_cache.clear()

    @property
    def fully_resident(self) -> bool:
        """False while a lazy restore still has blocks waiting to fault in."""
        return self.restorer is None or self.restorer.done

    def iter_pending_blocks(self, table: str | None = None):
        """Yield the block descriptors a lazy restore has not yet adopted.

        Tables are *partially resident* during serve-while-restoring:
        ``table.blocks`` holds only what has faulted in so far, and this
        iterator is the other half of the picture.  Empty when no lazy
        restore is pending.
        """
        if self.restorer is None:
            return iter(())
        return self.restorer.iter_pending(table)

    @property
    def nbytes(self) -> int:
        """Total bytes across every table (sealed plus buffered)."""
        return sum(table.nbytes for table in self._tables.values())

    @property
    def row_count(self) -> int:
        return sum(table.row_count for table in self._tables.values())

    def seal_all(self) -> None:
        """Seal every table's write buffer (shutdown prepare step)."""
        for table in self._tables.values():
            table.seal_buffer()

    def snapshot_rows(self) -> dict[str, list[dict]]:
        """table name → all rows; used to assert restart equivalence."""
        return {name: table.to_rows() for name, table in self._tables.items()}
