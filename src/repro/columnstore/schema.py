"""Row block schemas.

A schema is an ordered mapping of column name to :class:`ColumnType`.
Different row blocks of the same table may have different schemas (paper,
Section 2.1 — "they usually have a large overlap in their columns"), which
is why each row block serializes its own schema rather than the table
owning one.  Every schema contains the required ``time`` column.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.errors import CorruptionError, SchemaError
from repro.types import TIME_COLUMN, ColumnType, ColumnValue
from repro.util.binary import BufferReader, BufferWriter


def infer_column_type(value: ColumnValue) -> ColumnType:
    """Infer the column type of a single Python value.

    ``bool`` is rejected rather than silently treated as an integer —
    a monitoring pipeline logging booleans almost always meant 0/1 ints
    and should say so.
    """
    if isinstance(value, bool):
        raise SchemaError("boolean values are not a Scuba column type; use 0/1 ints")
    if isinstance(value, int):
        return ColumnType.INT64
    if isinstance(value, float):
        return ColumnType.FLOAT64
    if isinstance(value, str):
        return ColumnType.STRING
    if isinstance(value, list):
        return ColumnType.STRING_VECTOR
    raise SchemaError(f"unsupported column value type: {type(value).__name__}")


class Schema:
    """An ordered, immutable name→type mapping with wire serialization."""

    def __init__(self, columns: Mapping[str, ColumnType] | Iterable[tuple[str, ColumnType]]):
        self._columns: dict[str, ColumnType] = dict(columns)
        if TIME_COLUMN not in self._columns:
            raise SchemaError(f"schema must contain the required '{TIME_COLUMN}' column")
        if self._columns[TIME_COLUMN] is not ColumnType.INT64:
            raise SchemaError(f"'{TIME_COLUMN}' column must be INT64")
        for name in self._columns:
            if not name:
                raise SchemaError("column names must be non-empty")

    @classmethod
    def from_rows(cls, rows: Iterable[Mapping[str, ColumnValue]]) -> "Schema":
        """Derive a schema from the union of columns present in ``rows``.

        The first value seen for a column fixes its type; a later value of
        a conflicting type raises :class:`SchemaError`.
        """
        columns: dict[str, ColumnType] = {}
        for row in rows:
            for name, value in row.items():
                ctype = infer_column_type(value)
                known = columns.get(name)
                if known is None:
                    columns[name] = ctype
                elif known is not ctype:
                    raise SchemaError(
                        f"column '{name}' seen as both {known.name} and {ctype.name}"
                    )
        if TIME_COLUMN not in columns:
            raise SchemaError(
                f"rows must contain the required '{TIME_COLUMN}' column"
            )
        return cls(columns)

    def __contains__(self, name: str) -> bool:
        return name in self._columns

    def __iter__(self) -> Iterator[str]:
        return iter(self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return list(self._columns.items()) == list(other._columns.items())

    def __hash__(self) -> int:
        return hash(tuple(self._columns.items()))

    def __repr__(self) -> str:
        body = ", ".join(f"{name}:{ctype.name}" for name, ctype in self._columns.items())
        return f"Schema({body})"

    @property
    def names(self) -> list[str]:
        return list(self._columns)

    def type_of(self, name: str) -> ColumnType:
        try:
            return self._columns[name]
        except KeyError:
            raise SchemaError(f"unknown column '{name}'") from None

    def items(self) -> Iterable[tuple[str, ColumnType]]:
        return self._columns.items()

    def column_values(
        self, name: str, rows: Iterable[Mapping[str, ColumnValue]]
    ) -> list[ColumnValue]:
        """Extract one column from ``rows``, filling gaps with the type's
        default value (rows need not all carry every column)."""
        ctype = self.type_of(name)
        default = ctype.default()
        out: list[ColumnValue] = []
        for row in rows:
            value = row.get(name, default)
            if isinstance(value, list):
                value = list(value)  # never alias caller-owned lists
            ctype.validate(value)
            if ctype is ColumnType.FLOAT64 and isinstance(value, int):
                value = float(value)
            out.append(value)
        return out

    def serialize(self, writer: BufferWriter) -> None:
        """Append the wire form: varint count then (name, type) pairs."""
        writer.write_varint(len(self._columns))
        for name, ctype in self._columns.items():
            writer.write_str(name)
            writer.write_u8(int(ctype))

    @classmethod
    def deserialize(cls, reader: BufferReader) -> "Schema":
        count = reader.read_varint()
        columns: dict[str, ColumnType] = {}
        for _ in range(count):
            name = reader.read_str()
            code = reader.read_u8()
            try:
                columns[name] = ColumnType(code)
            except ValueError as exc:
                raise CorruptionError(
                    f"unknown column type code {code} for column '{name}'"
                ) from exc
        return cls(columns)
