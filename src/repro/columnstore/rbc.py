"""Row block columns (paper, Figure 3).

A row block column (RBC) is one column's values for every row in a row
block, serialized into a **single contiguous buffer**:

```
+--------+-------------+----------+--------+
| header | dictionary  |   data   | footer |
+--------+-------------+----------+--------+
```

The header starts at a base address and *all other addresses are offsets
from that base* (paper: "Using offsets enables us to copy the entire row
block column between heap and shared memory in one memory copy
operation").  Only the pointer to the RBC itself lives outside the buffer.

Header layout (56 bytes, little-endian)::

    u32 magic            "RBC1"
    u16 version          layout version of this structure
    u16 compression code :class:`CompressionFlags` bitmask
    u64 total bytes      size of the whole buffer, header..footer inclusive
    u64 n items          number of values in the column
    u64 n dict items     entries in the dictionary section (0 if none)
    u64 dictionary offset
    u64 data offset
    u64 footer offset

Footer layout (8 bytes)::

    u32 crc32 over bytes [0, footer offset)
    u32 end magic        "1CBR"
"""

from __future__ import annotations

import struct

from repro.compression import (
    CompressionFlags,
    DecodedColumn,
    EncodedColumn,
    decode_column,
    decode_column_arrays,
    encode_column,
)
from repro.errors import CorruptionError, LayoutVersionError
from repro.types import ColumnType, ColumnValue
from repro.util.checksum import crc32_of, verify_crc32

RBC_MAGIC = 0x31434252  # "RBC1" little-endian
RBC_END_MAGIC = 0x52424331  # "1CBR" little-endian
RBC_VERSION = 1
HEADER_SIZE = 56
FOOTER_SIZE = 8

_HEADER = struct.Struct("<IHHQQQQQQ")
_FOOTER = struct.Struct("<II")


def build_rbc(ctype: ColumnType, values: list[ColumnValue]) -> bytes:
    """Encode ``values`` into a freshly-built RBC buffer."""
    encoded = encode_column(ctype, values)
    return build_rbc_from_encoded(encoded)


def build_rbc_from_encoded(encoded: EncodedColumn) -> bytes:
    """Assemble the Figure-3 buffer around an already-encoded column."""
    dict_offset = HEADER_SIZE
    data_offset = dict_offset + len(encoded.dictionary)
    footer_offset = data_offset + len(encoded.data)
    total = footer_offset + FOOTER_SIZE
    header = _HEADER.pack(
        RBC_MAGIC,
        RBC_VERSION,
        int(encoded.flags),
        total,
        encoded.n_items,
        encoded.n_dict_items,
        dict_offset,
        data_offset,
        footer_offset,
    )
    body = header + encoded.dictionary + encoded.data
    footer = _FOOTER.pack(crc32_of(body), RBC_END_MAGIC)
    return body + footer


class RowBlockColumn:
    """A read-only view over an RBC buffer.

    The class never copies the payload: it can wrap heap ``bytes``, a
    ``memoryview`` into a shared memory segment, or an ``mmap`` slice —
    which is exactly the position-independence property the restart path
    relies on.
    """

    __slots__ = (
        "_buf",
        "flags",
        "n_items",
        "n_dict_items",
        "_dict_offset",
        "_data_offset",
        "_footer_offset",
    )

    def __init__(self, buf: bytes | bytearray | memoryview) -> None:
        if len(buf) < HEADER_SIZE + FOOTER_SIZE:
            raise CorruptionError(
                f"buffer of {len(buf)} bytes is smaller than an empty RBC"
            )
        view = memoryview(buf)
        (
            magic,
            version,
            flags,
            total,
            n_items,
            n_dict,
            dict_offset,
            data_offset,
            footer_offset,
        ) = _HEADER.unpack(view[:HEADER_SIZE])
        if magic != RBC_MAGIC:
            raise CorruptionError(f"bad RBC magic 0x{magic:08x}")
        if version != RBC_VERSION:
            raise LayoutVersionError(
                f"RBC layout version {version} not readable by this build "
                f"(expects {RBC_VERSION})"
            )
        if total != len(view):
            raise CorruptionError(
                f"RBC header claims {total} bytes but buffer holds {len(view)}"
            )
        if not HEADER_SIZE <= dict_offset <= data_offset <= footer_offset <= total - FOOTER_SIZE:
            raise CorruptionError("RBC section offsets out of order or out of bounds")
        if footer_offset + FOOTER_SIZE != total:
            raise CorruptionError("RBC footer is not at the end of the buffer")
        self._buf = view
        self.flags = CompressionFlags(flags)
        self.n_items = n_items
        self.n_dict_items = n_dict
        self._dict_offset = dict_offset
        self._data_offset = data_offset
        self._footer_offset = footer_offset

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def nbytes(self) -> int:
        """Total buffer size in bytes."""
        return len(self._buf)

    @property
    def buffer(self) -> memoryview:
        """The whole underlying buffer (the thing one ``memcpy`` moves)."""
        return self._buf

    @property
    def dictionary(self) -> memoryview:
        return self._buf[self._dict_offset : self._data_offset]

    @property
    def data(self) -> memoryview:
        return self._buf[self._data_offset : self._footer_offset]

    @property
    def stored_checksum(self) -> int:
        return _FOOTER.unpack(self._buf[self._footer_offset :])[0]

    def verify(self) -> None:
        """Check end magic and checksum; raise on any mismatch."""
        crc, end_magic = _FOOTER.unpack(self._buf[self._footer_offset :])
        if end_magic != RBC_END_MAGIC:
            raise CorruptionError(f"bad RBC end magic 0x{end_magic:08x}")
        verify_crc32(crc, self._buf[: self._footer_offset])

    def to_encoded(self, copy: bool = True) -> EncodedColumn:
        """Reconstruct the :class:`EncodedColumn` this buffer was built from.

        With ``copy=False`` the dictionary and data fields are
        ``memoryview`` sections over this buffer instead of detached
        ``bytes`` — no copy at all.  Every decoder accepts views, so the
        zero-copy form is safe whenever the caller consumes the encoded
        column before the underlying buffer goes away (the decode path
        does exactly that).
        """
        return EncodedColumn(
            self.flags,
            self.n_items,
            self.n_dict_items,
            bytes(self.dictionary) if copy else self.dictionary,
            bytes(self.data) if copy else self.data,
        )

    def values(self, ctype: ColumnType) -> list[ColumnValue]:
        """Decode the column back to Python values."""
        # The encoded sections are consumed inside decode_column, so the
        # zero-copy form avoids two throwaway buffer copies per decode.
        return decode_column(ctype, self.to_encoded(copy=False))

    def decoded(self, ctype: ColumnType) -> DecodedColumn:
        """Decode straight to the array form the vectorized kernels use.

        The result's arrays are fresh heap copies — safe to cache past
        the lifetime of this buffer (e.g. an shm view).
        """
        return decode_column_arrays(ctype, self.to_encoded(copy=False))

    def copy_bytes(self) -> bytes:
        """A detached copy of the buffer (e.g. heap copy of an shm view)."""
        return bytes(self._buf)


def rbc_extent(view: memoryview, offset: int) -> int:
    """Total size of the RBC starting at ``offset``, from its header.

    This is the only field the restore fast path needs to slice an RBC
    out of a packed block without constructing a :class:`RowBlockColumn`
    (full validation happens later, in ``verify``/decode).
    """
    if offset + 16 > len(view):
        raise CorruptionError("RBC header overruns its enclosing buffer")
    magic = struct.unpack_from("<I", view, offset)[0]
    if magic != RBC_MAGIC:
        raise CorruptionError(f"bad RBC magic 0x{magic:08x}")
    total = struct.unpack_from("<Q", view, offset + 8)[0]
    if total < HEADER_SIZE + FOOTER_SIZE:
        raise CorruptionError(f"RBC claims impossible total size {total}")
    return total
