"""Column value types.

Scuba columns hold integers, floats, strings, and vectors of strings
(tags).  Every table additionally has a required ``time`` column of unix
timestamps (paper, Section 2.1).  The enum values are stable wire codes:
they are persisted inside schemas on disk and in shared memory, so they
must never be renumbered.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Union

ColumnValue = Union[int, float, str, list[str]]

#: Name of the column every Scuba row must carry (unix timestamp of the
#: row-generating event).
TIME_COLUMN = "time"


class ColumnType(IntEnum):
    """Wire-stable type codes for column values."""

    INT64 = 1
    FLOAT64 = 2
    STRING = 3
    STRING_VECTOR = 4

    def python_type(self) -> type:
        """The Python type a value of this column type must be."""
        return {
            ColumnType.INT64: int,
            ColumnType.FLOAT64: float,
            ColumnType.STRING: str,
            ColumnType.STRING_VECTOR: list,
        }[self]

    def validate(self, value: ColumnValue) -> None:
        """Raise ``TypeError`` unless ``value`` is valid for this type."""
        if self is ColumnType.INT64:
            if not isinstance(value, int) or isinstance(value, bool):
                raise TypeError(f"INT64 column requires int, got {type(value).__name__}")
        elif self is ColumnType.FLOAT64:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise TypeError(
                    f"FLOAT64 column requires float, got {type(value).__name__}"
                )
        elif self is ColumnType.STRING:
            if not isinstance(value, str):
                raise TypeError(f"STRING column requires str, got {type(value).__name__}")
        elif self is ColumnType.STRING_VECTOR:
            if not isinstance(value, list) or not all(
                isinstance(item, str) for item in value
            ):
                raise TypeError("STRING_VECTOR column requires a list of str")

    def default(self) -> ColumnValue:
        """The fill value used when a row lacks this column."""
        if self is ColumnType.INT64:
            return 0
        if self is ColumnType.FLOAT64:
            return 0.0
        if self is ColumnType.STRING:
            return ""
        return []
