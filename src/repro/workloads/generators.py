"""Row generators for the four motivating workloads."""

from __future__ import annotations

import random
from typing import Iterator

from repro.types import ColumnValue

_ENDPOINTS = [
    "/home",
    "/profile",
    "/photos/upload",
    "/graphql",
    "/ads/manager",
    "/search",
    "/messages/send",
    "/feed",
]
_DATACENTERS = ["prn", "ash", "lla", "frc"]
_SEVERITIES = ["debug", "info", "warning", "error", "critical"]
_COUNTRIES = ["US", "IN", "BR", "GB", "DE", "JP", "MX", "FR"]
_METRICS = ["cpu_instructions", "wall_time_ms", "alloc_bytes", "db_queries"]


def _hosts(rng: random.Random, datacenter: str) -> str:
    return f"web{rng.randrange(1000):04d}.{datacenter}"


def service_requests(
    n_rows: int, start_time: int = 1_390_000_000, seed: int = 0
) -> Iterator[dict[str, ColumnValue]]:
    """Web-tier request logs: the performance-debugging workload."""
    rng = random.Random(seed)
    timestamp = start_time
    for _ in range(n_rows):
        timestamp += rng.choice((0, 0, 0, 1))  # many events share a second
        datacenter = rng.choice(_DATACENTERS)
        status = rng.choices((200, 200, 200, 200, 301, 404, 500), k=1)[0]
        tags = ["prod"]
        if rng.random() < 0.05:
            tags.append("canary")
        if status >= 500:
            tags.append("failed")
        yield {
            "time": timestamp,
            "endpoint": rng.choice(_ENDPOINTS),
            "host": _hosts(rng, datacenter),
            "datacenter": datacenter,
            "status": status,
            "latency_ms": round(rng.lognormvariate(3.0, 0.8), 3),
            "tags": tags,
        }


def error_logs(
    n_rows: int, start_time: int = 1_390_000_000, seed: int = 1
) -> Iterator[dict[str, ColumnValue]]:
    """Error/bug-report monitoring: detect user-facing errors fast."""
    rng = random.Random(seed)
    timestamp = start_time
    messages = [
        "connection reset by peer",
        "memcache miss storm",
        "thrift timeout",
        "null property access",
        "rate limit exceeded",
    ]
    for _ in range(n_rows):
        timestamp += rng.choice((0, 0, 1))
        severity = rng.choices(_SEVERITIES, weights=(30, 40, 18, 10, 2), k=1)[0]
        yield {
            "time": timestamp,
            "severity": severity,
            "message": rng.choice(messages),
            "stack_hash": f"{rng.randrange(1 << 20):05x}",
            "count": rng.randrange(1, 50),
        }


def ads_revenue(
    n_rows: int, start_time: int = 1_390_000_000, seed: int = 2
) -> Iterator[dict[str, ColumnValue]]:
    """Ads revenue monitoring: money per impression batch."""
    rng = random.Random(seed)
    timestamp = start_time
    for _ in range(n_rows):
        timestamp += rng.choice((0, 1))
        yield {
            "time": timestamp,
            "campaign": f"cmp{rng.randrange(200):03d}",
            "country": rng.choice(_COUNTRIES),
            "impressions": rng.randrange(10, 10_000),
            "revenue_usd": round(rng.expovariate(1 / 2.5), 4),
        }


def code_regressions(
    n_rows: int, start_time: int = 1_390_000_000, seed: int = 3
) -> Iterator[dict[str, ColumnValue]]:
    """Code regression analysis: per-revision metric samples."""
    rng = random.Random(seed)
    timestamp = start_time
    revision = 600_000
    for _ in range(n_rows):
        timestamp += rng.choice((0, 0, 1, 2))
        if rng.random() < 0.01:
            revision += 1
        metric = rng.choice(_METRICS)
        base = {"cpu_instructions": 5e8, "wall_time_ms": 120.0,
                "alloc_bytes": 2e7, "db_queries": 12.0}[metric]
        yield {
            "time": timestamp,
            "metric": metric,
            "revision": revision,
            "value": round(base * rng.lognormvariate(0.0, 0.1), 2),
            "endpoint": rng.choice(_ENDPOINTS),
        }
