"""Synthetic Scuba-like workloads.

The paper motivates Scuba with monitoring use cases: code regression
analysis, bug report monitoring, ads revenue monitoring, and performance
debugging (Section 1).  These generators produce event tables with that
shape — a required ``time`` column of nearly-sorted unix timestamps,
low-cardinality string dimensions, numeric measures, and tag vectors —
which is exactly the distribution the compression pipeline and the
benchmarks assume.
"""

from repro.workloads.generators import (
    ads_revenue,
    code_regressions,
    error_logs,
    service_requests,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, populate_cluster

__all__ = [
    "SCENARIOS",
    "Scenario",
    "ads_revenue",
    "code_regressions",
    "error_logs",
    "populate_cluster",
    "service_requests",
]
