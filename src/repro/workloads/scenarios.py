"""Named scenarios binding a generator to its table and typical query."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator

from repro.cluster.cluster import Cluster
from repro.query.query import Aggregation, Filter, Query
from repro.types import ColumnValue
from repro.workloads.generators import (
    ads_revenue,
    code_regressions,
    error_logs,
    service_requests,
)


@dataclass(frozen=True)
class Scenario:
    """A workload: its table, generator, and a canonical dashboard query."""

    name: str
    table: str
    generator: Callable[..., Iterator[dict[str, ColumnValue]]]
    query: Query


SCENARIOS: dict[str, Scenario] = {
    "requests": Scenario(
        name="requests",
        table="service_requests",
        generator=service_requests,
        query=Query(
            "service_requests",
            aggregations=(
                Aggregation("count"),
                Aggregation("avg", "latency_ms"),
                Aggregation("p99", "latency_ms"),
            ),
            group_by=("endpoint",),
        ),
    ),
    "errors": Scenario(
        name="errors",
        table="error_logs",
        generator=error_logs,
        query=Query(
            "error_logs",
            aggregations=(Aggregation("count"), Aggregation("sum", "count")),
            group_by=("severity",),
            filters=(Filter("severity", "in", ("error", "critical")),),
        ),
    ),
    "ads": Scenario(
        name="ads",
        table="ads_revenue",
        generator=ads_revenue,
        query=Query(
            "ads_revenue",
            aggregations=(Aggregation("sum", "revenue_usd"), Aggregation("count")),
            group_by=("country",),
        ),
    ),
    "regressions": Scenario(
        name="regressions",
        table="code_regressions",
        generator=code_regressions,
        query=Query(
            "code_regressions",
            aggregations=(Aggregation("avg", "value"), Aggregation("p90", "value")),
            group_by=("metric",),
        ),
    ),
}


def populate_cluster(
    cluster: Cluster,
    rows_per_scenario: int = 2000,
    scenarios: list[str] | None = None,
    start_time: int = 1_390_000_000,
    batch_rows: int = 500,
) -> int:
    """Feed every (or the named) scenarios through the ingest path."""
    total = 0
    for name in scenarios or list(SCENARIOS):
        scenario = SCENARIOS[name]
        rows = scenario.generator(rows_per_scenario, start_time=start_time)
        total += cluster.ingest(scenario.table, rows, batch_rows=batch_rows)
    return total
