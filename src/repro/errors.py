"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing programming errors (``TypeError``/``ValueError`` from
argument validation) from operational failures (corruption, recovery
failure, capacity limits).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class CorruptionError(ReproError):
    """Raised when stored bytes fail validation (magic, checksum, bounds).

    This is the error a reader raises when a buffer that claims to be a
    row block column, row block, disk file, or shared memory segment does
    not decode cleanly.  It always means the *bytes* are wrong, never that
    the caller passed a bad argument.
    """


class ChecksumMismatchError(CorruptionError):
    """A payload's stored checksum does not match its recomputed value."""


class LayoutVersionError(ReproError):
    """The persisted layout version is not one this code can read.

    The paper keeps a layout version number in the leaf metadata so a new
    binary whose shared-memory layout changed refuses the old segments and
    falls back to disk recovery.
    """


class SchemaError(ReproError):
    """A row or column does not conform to the table schema."""


class CapacityError(ReproError):
    """An append or allocation would exceed a configured capacity limit."""


class StateError(ReproError):
    """An operation is not permitted in the current state machine state."""


class RecoveryError(ReproError):
    """A recovery path (shared memory or disk) failed irrecoverably."""


class SnapshotStaleError(RecoveryError):
    """A shm-format disk snapshot cannot be trusted for recovery.

    Raised when a snapshot's generation number does not match the backup
    manifest's watermark (the snapshot predates later sync points), or
    when the snapshot file is missing entirely.  The recovery ladder
    treats this as "route down to legacy replay", never as data loss.
    """


class ReplicaWireError(RecoveryError):
    """The replica block stream failed mid-session.

    Raised by the replication wire layer when a frame is malformed, a
    connection drops, the replica answers with an ERROR frame, or a
    session token is rejected.  The recovery ladder treats this exactly
    like a stale snapshot: abandon the replica rung all-or-nothing and
    route down to the local disk rungs — never data loss.
    """


class ShutdownTimeout(ReproError):
    """A clean shutdown overran its deadline and was killed.

    The deploy script gives a leaf 3 minutes to copy to shared memory
    and exit (paper, Section 4.3); a kill leaves the valid bit false, so
    the next start falls back to disk recovery.
    """


class WorkerCrashedError(ReproError):
    """A restart worker process died before finishing its leaves.

    Raised (as a per-leaf outcome, never across the pool) by the
    process-pool restart backend when a forked worker exits abnormally —
    killed, segfaulted, or OOMed — with leaves still assigned.  The
    affected leaves' shared memory valid bits are down, so their next
    start walks the disk recovery ladder.
    """


class ShmError(ReproError):
    """Shared memory segment creation, attach, or bookkeeping failed."""


class AllocationError(ShmError):
    """The (ablation-only) shared memory allocator could not satisfy a
    request, typically due to fragmentation."""


class QueryError(ReproError):
    """A query is malformed or references unknown tables/columns."""


class RoutingError(ReproError):
    """The tailer could not find any leaf willing to accept a batch."""
