"""Orchestration for reprolint: load, check, baseline, render.

This is the layer the CLI talks to; tests mostly drive the individual
checkers directly and use :func:`run_lint` only for end-to-end cases.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineMatch, is_todo
from repro.analysis.checkers import CHECKERS
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.loader import DEFAULT_SCAN_DIRS, load_modules

DEFAULT_BASELINE = "src/repro/analysis/baseline.json"


@dataclass
class LintResult:
    findings: list[Finding]
    """Every finding, before baseline filtering."""
    match: BaselineMatch
    """Split into new / accepted / stale baseline entries."""
    checkers_run: list[str] = field(default_factory=list)
    files_scanned: int = 0
    allow_todo: bool = False
    """Downgrade TODO-justified baseline entries from failure to warning."""

    @property
    def todo(self) -> list[BaselineEntry]:
        """Matched baseline entries still carrying the TODO placeholder."""
        seen: set[tuple[str, str, str]] = set()
        entries = []
        for _, entry in self.match.accepted:
            if entry.key not in seen and is_todo(entry.justification):
                seen.add(entry.key)
                entries.append(entry)
        return entries

    @property
    def failed(self) -> bool:
        if self.match.new or self.match.stale:
            return True
        return bool(self.todo) and not self.allow_todo


def run_lint(
    root: str | Path = ".",
    checkers: Iterable[str] | None = None,
    baseline_path: str | Path | None = None,
    scan_dirs: Iterable[str] = DEFAULT_SCAN_DIRS,
    allow_todo: bool = False,
) -> LintResult:
    """Run the selected checkers over ``root`` and apply the baseline.

    ``baseline_path=None`` uses the checked-in default when it exists;
    pass an explicit path (or a missing one) to control it.
    """
    root = Path(root)
    modules = load_modules(root, scan_dirs)
    selected = list(checkers) if checkers else list(CHECKERS)
    unknown = [name for name in selected if name not in CHECKERS]
    if unknown:
        raise ValueError(
            f"unknown checker(s): {', '.join(unknown)}; "
            f"available: {', '.join(sorted(CHECKERS))}"
        )
    findings: list[Finding] = []
    for name in selected:
        findings.extend(CHECKERS[name](modules))
    findings = sort_findings(findings)

    if baseline_path is None:
        candidate = root / DEFAULT_BASELINE
        baseline = Baseline.load(candidate) if candidate.is_file() else Baseline()
    else:
        baseline_path = Path(baseline_path)
        baseline = Baseline.load(baseline_path) if baseline_path.is_file() else Baseline()
    # a partial checker run must not report the skipped checkers'
    # baseline entries as stale
    if checkers:
        prefixes = tuple(_codes_for(selected))
        baseline = Baseline(
            [e for e in baseline.entries if e.code.startswith(prefixes)]
        )
    match = baseline.apply(findings)
    return LintResult(
        findings=findings,
        match=match,
        checkers_run=selected,
        files_scanned=len(modules),
        allow_todo=allow_todo,
    )


_CODE_PREFIX = {
    "layout-drift": "RL1",
    "state-machine": "RL2",
    "guarded-by": "RL3",
    "segment-lifecycle": "RL4",
    "fallback-routing": "RL5",
    "resource-balance": "RL6",
    "lock-order": "RL7",
}


def _codes_for(names: Iterable[str]) -> list[str]:
    return [_CODE_PREFIX[n] for n in names if n in _CODE_PREFIX]


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def render_text(result: LintResult, verbose: bool = False) -> str:
    lines: list[str] = []
    for finding in result.match.new:
        lines.append(finding.render())
    if verbose and result.match.accepted:
        lines.append("")
        lines.append(f"baselined ({len(result.match.accepted)}):")
        for finding, entry in result.match.accepted:
            lines.append(f"  {finding.render()}")
            lines.append(f"    accepted: {entry.justification}")
    for entry in result.match.stale:
        lines.append(
            f"stale baseline entry: {entry.code} {entry.path} [{entry.symbol}] "
            f"— no longer matches any finding; remove it"
        )
    for entry in result.todo:
        severity = "warning" if result.allow_todo else "error"
        lines.append(
            f"{severity}: TODO-justified baseline entry: {entry.code} "
            f"{entry.path} [{entry.symbol}] — replace the placeholder with a "
            f"real justification (or fix the finding)"
        )
    lines.append("")
    lines.append(
        f"reprolint: {len(result.match.new)} new, "
        f"{len(result.match.accepted)} baselined, "
        f"{len(result.match.stale)} stale "
        f"({result.files_scanned} files, "
        f"{len(result.checkers_run)} checkers)"
    )
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    payload = {
        "new": [f.to_dict() for f in result.match.new],
        "accepted": [
            {**f.to_dict(), "justification": e.justification}
            for f, e in result.match.accepted
        ],
        "stale": [e.to_dict() for e in result.match.stale],
        "summary": {
            "new": len(result.match.new),
            "accepted": len(result.match.accepted),
            "stale": len(result.match.stale),
            "todo": len(result.todo),
            "files_scanned": result.files_scanned,
            "checkers": result.checkers_run,
            "failed": result.failed,
        },
    }
    return json.dumps(payload, indent=2)


def write_baseline(
    result: LintResult,
    path: str | Path,
    justifications: dict[tuple[str, str, str], str] | None = None,
) -> Baseline:
    """Accept the current findings into a baseline file (``--update-baseline``)."""
    previous = Baseline.load(path) if Path(path).is_file() else Baseline()
    baseline = Baseline.from_findings(
        result.findings, justifications=justifications, previous=previous
    )
    baseline.save(path)
    return baseline


__all__ = [
    "DEFAULT_BASELINE",
    "LintResult",
    "run_lint",
    "render_text",
    "render_json",
    "write_baseline",
    "Baseline",
    "BaselineEntry",
]
