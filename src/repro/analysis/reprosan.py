"""reprosan — runtime lock-order and resource-balance sanitizer.

The RL6xx/RL7xx checkers reason about the tree statically; ``reprosan``
watches the same invariants while the tests actually run, so the two
can cross-check each other:

- **Lock order.**  ``install()`` patches ``threading.Lock`` / ``RLock``
  / ``Condition`` with factories that hand instrumented wrappers to
  callers inside the ``repro`` package (everything else — pytest, the
  stdlib — still gets the real primitive).  Each wrapper is named by
  its *creation site* (``relpath:lineno``), so every instance of, say,
  ``LeafServer._lock`` shares one node in the runtime acquisition
  graph.  Whenever a thread acquires a lock while holding others, an
  ordering edge is recorded; a cycle in that graph is a deadlock
  candidate observed for real, not inferred.

- **Resource balance.**  The tracker's audit seam
  (:func:`repro.util.memtrack.set_audit_hook`) reports every
  allocate/free, and the two footprint budgets' ``acquire``/``release``
  are wrapped at the class.  Per test, budget bytes must balance:
  nonzero *residue* (acquired but never released) fails the test the
  way RL602 fails the build.  Tracker balances are recorded in the
  report for inspection but not enforced — live data legitimately
  stays charged at test end.

The pytest side lives in ``tests/conftest.py`` (``--reprosan``); the
JSON report it writes feeds ``repro lint --san-report`` which
:func:`cross_check`s the observed edges against the RL7xx static graph.
"""

from __future__ import annotations

import json
import sys
import threading
from pathlib import Path

#: Same-site lock pairs (two instances created at one line, e.g. two
#: leaves' coarse locks) are not ordered against each other: the graph
#: is keyed by creation site, so such an edge would be a self-loop that
#: says nothing about cross-site ordering.
_REPRO_PREFIX = "repro"

#: Captured at import, before any patching: the sanitizer's own state
#: lock must never be an instrumented lock, or recording an edge would
#: recurse into recording edges about the recorder.
_REAL_RLOCK = threading.RLock


def _is_repro_module(name: str) -> bool:
    return name == _REPRO_PREFIX or name.startswith(_REPRO_PREFIX + ".")


class _SanLock:
    """Instrumented Lock/RLock: delegates everything, notes acquisitions."""

    __slots__ = ("_san", "_real", "site")

    def __init__(self, san: "Sanitizer", real, site: str) -> None:
        object.__setattr__(self, "_san", san)
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "site", site)

    def acquire(self, blocking: bool = True, timeout: float = -1):
        ok = self._real.acquire(blocking, timeout)
        if ok:
            self._san._note_acquire(self)
        return ok

    def release(self) -> None:
        self._real.release()
        self._san._note_release(self)

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc):
        self.release()
        return False

    def __getattr__(self, name):
        # `locked`, `_is_owned`, `_release_save`, `_acquire_restore`...
        # delegate so a real Condition can drive a wrapped RLock.  The
        # save/restore pair bypasses instrumentation during a wait; the
        # waiting thread is blocked, so its held-stack cannot be read
        # inconsistently in the meantime.
        return getattr(self._real, name)


class _SanCondition:
    """Instrumented Condition: the underlying lock is one graph node."""

    __slots__ = ("_san", "_real", "site")

    def __init__(self, san: "Sanitizer", real, site: str) -> None:
        object.__setattr__(self, "_san", san)
        object.__setattr__(self, "_real", real)
        object.__setattr__(self, "site", site)

    def acquire(self, *args):
        ok = self._real.acquire(*args)
        if ok:
            self._san._note_acquire(self)
        return ok

    def release(self) -> None:
        self._real.release()
        self._san._note_release(self)

    def __enter__(self):
        self._real.__enter__()
        self._san._note_acquire(self)
        return self

    def __exit__(self, *exc):
        self._san._note_release(self)
        return self._real.__exit__(*exc)

    # wait()/wait_for() release the lock internally, but the waiting
    # thread is blocked (and a wait_for predicate runs with the lock
    # re-held), so leaving the condition on the held-stack is accurate
    # for every observable acquisition.
    def wait(self, timeout: float | None = None):
        return self._real.wait(timeout)

    def wait_for(self, predicate, timeout: float | None = None):
        return self._real.wait_for(predicate, timeout)

    def notify(self, n: int = 1) -> None:
        self._real.notify(n)

    def notify_all(self) -> None:
        self._real.notify_all()

    def __getattr__(self, name):
        return getattr(self._real, name)


class Sanitizer:
    """The process-wide sanitizer state.  Use :func:`install`."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root or ".").resolve()
        self._tls = threading.local()
        # Guarded by a *real* lock: the sanitizer must never feed its
        # own bookkeeping back into the graph.
        self._state_lock = _REAL_RLOCK()
        #: (src_site, dst_site) -> {"count", "first_test", "thread"}
        self.edges: dict[tuple[str, str], dict] = {}
        self.tests: list[dict] = []
        self._current: dict | None = None
        self._reported_cycles: set[str] = set()
        self._saved: dict = {}
        self._installed = False

    # -- creation-site filtering ---------------------------------------

    def _caller_site(self) -> str | None:
        # Frame 0 = this method, 1 = the patched factory, 2 = the caller.
        frame = sys._getframe(2)
        module = frame.f_globals.get("__name__", "")
        if not _is_repro_module(module):
            return None
        try:
            rel = (
                Path(frame.f_code.co_filename)
                .resolve()
                .relative_to(self.root)
                .as_posix()
            )
        except ValueError:
            rel = Path(frame.f_code.co_filename).name
        return f"{rel}:{frame.f_lineno}"

    # -- held-stack and edge recording ---------------------------------

    def _held(self) -> list:
        stack = getattr(self._tls, "held", None)
        if stack is None:
            stack = self._tls.held = []
        return stack

    def _note_acquire(self, lock) -> None:
        held = self._held()
        if not any(prior is lock for prior in held):
            for prior in held:
                if prior.site != lock.site:
                    self._record_edge(prior.site, lock.site)
        held.append(lock)

    def _note_release(self, lock) -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def _record_edge(self, src: str, dst: str) -> None:
        with self._state_lock:
            info = self.edges.get((src, dst))
            if info is None:
                test = self._current["nodeid"] if self._current else None
                info = self.edges[(src, dst)] = {
                    "count": 0,
                    "first_test": test,
                    "thread": threading.current_thread().name,
                }
                if self._current is not None:
                    self._current["new_edges"].append([src, dst])
            info["count"] += 1

    # -- budget / tracker audit ----------------------------------------

    def _note_budget(self, label: str, obj_id: int, delta: int) -> None:
        with self._state_lock:
            if self._current is None:
                return
            balances = self._current["budget"]
            key = f"{label}@{obj_id:x}"
            balances[key] = balances.get(key, 0) + delta

    def _tracker_hook(self, event: str, region: str, nbytes: int, obj_id: int) -> None:
        with self._state_lock:
            if self._current is None:
                return
            per = self._current["tracker"].setdefault(
                region, {"allocated": 0, "freed": 0}
            )
            per["allocated" if event == "allocate" else "freed"] += nbytes

    # -- per-test lifecycle --------------------------------------------

    def begin_test(self, nodeid: str) -> None:
        with self._state_lock:
            self._current = {
                "nodeid": nodeid,
                "new_edges": [],
                "budget": {},
                "tracker": {},
            }

    def end_test(self) -> dict:
        """Close the current test record and return its problems."""
        with self._state_lock:
            record = self._current or {
                "nodeid": "?",
                "new_edges": [],
                "budget": {},
                "tracker": {},
            }
            self._current = None
            residue = {k: v for k, v in record["budget"].items() if v > 0}
            new_cycles = [
                c for c in find_cycles(set(self.edges))
                if c not in self._reported_cycles
            ]
            self._reported_cycles.update(new_cycles)
            problems = []
            for key, bytes_left in sorted(residue.items()):
                problems.append(
                    f"budget residue: {key} ends the test holding "
                    f"{bytes_left} unreleased bytes"
                )
            for cycle in new_cycles:
                problems.append(f"lock-order cycle observed: {cycle}")
            record["budget_residue"] = residue
            record["cycles"] = new_cycles
            record["problems"] = problems
            self.tests.append(record)
            return record

    # -- patching -------------------------------------------------------

    def install(self) -> "Sanitizer":
        if self._installed:
            return self
        from repro.core.parallel import FootprintBudget
        from repro.core.sharedbudget import SharedFootprintBudget
        from repro.util import memtrack

        san = self
        self._saved = {
            "Lock": threading.Lock,
            "RLock": threading.RLock,
            "Condition": threading.Condition,
            "FootprintBudget.acquire": FootprintBudget.acquire,
            "FootprintBudget.release": FootprintBudget.release,
            "SharedFootprintBudget.acquire": SharedFootprintBudget.acquire,
            "SharedFootprintBudget.release": SharedFootprintBudget.release,
        }

        def make_lock_factory(real, wrapper):
            def factory(*args, **kwargs):
                site = san._caller_site()
                obj = real(*args, **kwargs)
                if site is None:
                    return obj
                return wrapper(san, obj, site)

            return factory

        real_lock = threading.Lock
        real_rlock = threading.RLock
        real_condition = threading.Condition

        def condition_factory(lock=None):
            site = san._caller_site()
            # Build the real Condition on the *real* lock so its
            # save/restore fast paths stay untouched; the wrapper is the
            # single instrumented face.
            inner = lock._real if isinstance(lock, _SanLock) else lock
            obj = real_condition(inner) if inner is not None else real_condition()
            if site is None:
                return obj
            return _SanCondition(san, obj, site)

        threading.Lock = make_lock_factory(real_lock, _SanLock)
        threading.RLock = make_lock_factory(real_rlock, _SanLock)
        threading.Condition = condition_factory

        def wrap_budget(cls, label):
            orig_acquire = cls.acquire
            orig_release = cls.release

            def acquire(obj, nbytes):
                orig_acquire(obj, nbytes)
                san._note_budget(label, id(obj), nbytes)

            def release(obj, nbytes):
                orig_release(obj, nbytes)
                san._note_budget(label, id(obj), -nbytes)

            cls.acquire = acquire
            cls.release = release

        wrap_budget(FootprintBudget, "FootprintBudget")
        wrap_budget(SharedFootprintBudget, "SharedFootprintBudget")
        self._saved["audit_hook"] = memtrack.set_audit_hook(self._tracker_hook)
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        from repro.core.parallel import FootprintBudget
        from repro.core.sharedbudget import SharedFootprintBudget
        from repro.util import memtrack

        threading.Lock = self._saved["Lock"]
        threading.RLock = self._saved["RLock"]
        threading.Condition = self._saved["Condition"]
        FootprintBudget.acquire = self._saved["FootprintBudget.acquire"]
        FootprintBudget.release = self._saved["FootprintBudget.release"]
        SharedFootprintBudget.acquire = self._saved["SharedFootprintBudget.acquire"]
        SharedFootprintBudget.release = self._saved["SharedFootprintBudget.release"]
        memtrack.set_audit_hook(self._saved["audit_hook"])
        self._installed = False
        global _active
        if _active is self:
            _active = None

    # -- reporting ------------------------------------------------------

    def report(self) -> dict:
        with self._state_lock:
            return {
                "version": 1,
                "root": str(self.root),
                "edges": [
                    {"src": src, "dst": dst, **info}
                    for (src, dst), info in sorted(self.edges.items())
                ],
                "cycles": find_cycles(set(self.edges)),
                "tests": self.tests,
                "summary": {
                    "tests": len(self.tests),
                    "failed": [
                        t["nodeid"] for t in self.tests if t.get("problems")
                    ],
                },
            }

    def write_report(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.report(), indent=2) + "\n")


_active: Sanitizer | None = None


def install(root: str | Path | None = None) -> Sanitizer:
    """Install the sanitizer process-wide (idempotent)."""
    global _active
    if _active is None:
        _active = Sanitizer(root).install()
    return _active


def find_cycles(edges: set[tuple[str, str]]) -> list[str]:
    """Normalized ``"A -> B -> A"`` strings for every cycle in ``edges``."""
    graph: dict[str, set[str]] = {}
    for src, dst in edges:
        graph.setdefault(src, set()).add(dst)
    cycles: set[str] = set()

    def dfs(node: str, stack: list[str], on_stack: set[str]) -> None:
        for nxt in sorted(graph.get(node, ())):
            if nxt in on_stack:
                ring = stack[stack.index(nxt):]
                pivot = ring.index(min(ring))
                normal = ring[pivot:] + ring[:pivot] + [min(ring)]
                cycles.add(" -> ".join(normal))
            elif nxt not in visited:
                visited.add(nxt)
                stack.append(nxt)
                on_stack.add(nxt)
                dfs(nxt, stack, on_stack)
                on_stack.discard(nxt)
                stack.pop()

    visited: set[str] = set()
    for start in sorted(graph):
        visited.add(start)
        dfs(start, [start], {start})
    return sorted(cycles)


# ----------------------------------------------------------------------
# Static cross-check (`repro lint --san-report`)
# ----------------------------------------------------------------------


def _static_site_map(modules) -> dict[str, list[tuple[int, int, str]]]:
    """relpath -> [(first_line, last_line, "Class.attr")] for every
    statically-known lock creation site.

    A runtime creation site is a single frame line; the static construct
    can span several (a multi-line dataclass ``field(...)``), so sites
    map through line *ranges*.
    """
    import ast

    from repro.analysis.checkers.lockorder import _lock_attrs_of

    sites: dict[str, list[tuple[int, int, str]]] = {}
    for module in modules:
        spans = sites.setdefault(module.relpath, [])
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs = _lock_attrs_of(cls)
            if not lock_attrs:
                continue
            for node in ast.walk(cls):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr in lock_attrs
                        ):
                            spans.append(
                                (
                                    node.lineno,
                                    node.end_lineno or node.lineno,
                                    f"{cls.name}.{target.attr}",
                                )
                            )
                elif (
                    isinstance(node, ast.AnnAssign)
                    and isinstance(node.target, ast.Name)
                    and node.target.id in lock_attrs
                ):
                    spans.append(
                        (
                            node.lineno,
                            node.end_lineno or node.lineno,
                            f"{cls.name}.{node.target.id}",
                        )
                    )
    return sites


def _translate(site: str, site_map: dict) -> str:
    path, _, line = site.rpartition(":")
    try:
        lineno = int(line)
    except ValueError:
        return site
    for first, last, node in site_map.get(path, ()):
        if first <= lineno <= last:
            return node
    return site


def cross_check(report: dict, modules) -> dict:
    """Compare a reprosan JSON report against the RL7xx static graph.

    Returns a dict with ``cycles`` (observed at runtime — always a
    failure), ``inversions`` (a runtime edge whose *reverse* is the only
    statically-known order between the pair — the static and dynamic
    views disagree, someone is wrong), ``unpredicted`` (observed but
    unknown to RL7xx — informational: usually name-resolution blind
    spots), and ``unobserved`` (static edges the test run never
    exercised — coverage, not correctness).
    """
    from repro.analysis.checkers.lockorder import collect_edges

    site_map = _static_site_map(modules)
    static_edges = {(e.src, e.dst) for e in collect_edges(modules)}

    runtime: set[tuple[str, str]] = set()
    for edge in report.get("edges", ()):
        src = _translate(edge["src"], site_map)
        dst = _translate(edge["dst"], site_map)
        if src != dst:
            runtime.add((src, dst))

    cycles = find_cycles(runtime)
    inversions = sorted(
        f"{src} -> {dst}"
        for src, dst in runtime
        if (dst, src) in static_edges and (src, dst) not in static_edges
    )
    unpredicted = sorted(
        f"{src} -> {dst}" for src, dst in runtime - static_edges
    )
    unobserved = sorted(
        f"{src} -> {dst}" for src, dst in static_edges - runtime
    )
    return {
        "runtime_edges": sorted(f"{s} -> {d}" for s, d in runtime),
        "cycles": cycles,
        "inversions": inversions,
        "unpredicted": unpredicted,
        "unobserved": unobserved,
        "ok": not cycles and not inversions,
    }


__all__ = [
    "Sanitizer",
    "install",
    "find_cycles",
    "cross_check",
]
