"""The finding model shared by every reprolint checker.

A :class:`Finding` is one violation of a repo-specific invariant.  Its
identity for baselining purposes is ``(code, path, symbol)`` — *not* the
line number — so a checked-in baseline survives unrelated edits that
shift lines, while moving the offending construct to a different
function or file re-raises it for review.

Codes are stable, grep-able identifiers grouped by checker:

- ``RL1xx`` layout-drift (binary format structs, magics, offsets)
- ``RL2xx`` state-machine coverage (declared vs exercised transitions)
- ``RL3xx`` guarded-by lock discipline
- ``RL4xx`` segment/handle lifecycle leaks
- ``RL5xx`` fallback routing in recovery tiers
- ``RL6xx`` resource balance (charge/release pairing across all paths)
- ``RL7xx`` lock order, blocking-under-lock, and status atomicity
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True, order=True)
class Finding:
    """One invariant violation, anchored to a source location."""

    path: str
    """Repo-relative posix path of the offending file."""
    line: int
    """1-based line of the offending construct."""
    code: str
    """Stable finding code, e.g. ``RL301``."""
    checker: str
    """Checker name, e.g. ``guarded-by``."""
    symbol: str
    """Stable anchor within the file (class.method:attr, edge, struct
    name...) used, with ``code`` and ``path``, as the baseline identity."""
    message: str = field(compare=False)
    """Human-readable description of the violation."""

    @property
    def key(self) -> tuple[str, str, str]:
        """The baseline identity of this finding."""
        return (self.code, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.code} [{self.checker}] {self.message}"


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic order: by path, then line, then code, then symbol."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.code, f.symbol))
