"""reprolint — AST-based invariant verifier for the restart pipeline.

Five checkers, one per invariant family the restart protocol depends
on:

================  ======  ==============================================
checker           codes   invariant
================  ======  ==============================================
layout-drift      RL1xx   struct formats, magics, and offsets agree
                          between writers and readers
state-machine     RL2xx   every declared restart transition is reachable
                          and every call site uses a declared edge
guarded-by        RL3xx   lock-owning classes touch shared state only
                          under the lock
segment-lifecycle RL4xx   shm handles are released on every path,
                          including exception edges
fallback-routing  RL5xx   recovery tiers route failures to the next
                          rung instead of swallowing them
================  ======  ==============================================

Run it as ``repro lint`` or ``python -m repro.cli lint``.
"""

from repro.analysis.baseline import Baseline, BaselineEntry
from repro.analysis.findings import Finding, sort_findings
from repro.analysis.loader import SourceModule, load_files, load_modules
from repro.analysis.runner import (
    LintResult,
    render_json,
    render_text,
    run_lint,
    write_baseline,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintResult",
    "SourceModule",
    "load_files",
    "load_modules",
    "render_json",
    "render_text",
    "run_lint",
    "sort_findings",
    "write_baseline",
]
