"""Source discovery and parsing for reprolint.

Checkers never import the code under analysis — everything is stdlib
``ast`` over the files on disk, so the linter can examine a tree whose
code would not even import (which is exactly when invariants drift).

A :class:`SourceModule` bundles the parsed tree with the repo-relative
path used in findings and baselines, plus a parent map so checkers can
walk *up* from a node (``ast`` only links downward).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable

#: The subsystems whose invariants the checkers understand.  ``cli.py``
#: and the analysis package itself are deliberately excluded: the linter
#: must stay runnable on a tree whose only breakage is in the code it
#: lints.
DEFAULT_SCAN_DIRS = (
    "src/repro/shm",
    "src/repro/disk",
    "src/repro/core",
    "src/repro/util",
    "src/repro/server",
)


@dataclass
class SourceModule:
    """One parsed source file."""

    path: Path
    """Absolute path on disk."""
    relpath: str
    """Repo-relative posix path (the one findings carry)."""
    tree: ast.Module
    text: str
    _parents: dict[ast.AST, ast.AST] = field(default_factory=dict, repr=False)

    @classmethod
    def parse(cls, path: str | Path, relpath: str | None = None) -> "SourceModule":
        path = Path(path)
        text = path.read_text()
        tree = ast.parse(text, filename=str(path))
        rel = relpath if relpath is not None else path.name
        module = cls(path=path, relpath=rel, tree=tree, text=text)
        module._index_parents()
        return module

    def _index_parents(self) -> None:
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (None for the module itself)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        """Walk from ``node``'s parent up to the module root."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None


def load_modules(
    root: str | Path,
    scan_dirs: Iterable[str] = DEFAULT_SCAN_DIRS,
) -> list[SourceModule]:
    """Parse every ``.py`` file under ``root``'s scan directories.

    Files that fail to parse are skipped silently here — a tree with
    syntax errors cannot be linted for semantic invariants, and the
    ordinary toolchain reports syntax errors far better than we would.
    """
    root = Path(root)
    modules: list[SourceModule] = []
    for rel_dir in scan_dirs:
        base = root / rel_dir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            try:
                modules.append(SourceModule.parse(path, rel))
            except SyntaxError:
                continue
    return modules


def load_files(paths: Iterable[str | Path], root: str | Path | None = None) -> list[SourceModule]:
    """Parse an explicit list of files (fixtures, ad-hoc scans)."""
    modules = []
    for path in paths:
        path = Path(path)
        if root is not None:
            rel = path.resolve().relative_to(Path(root).resolve()).as_posix()
        else:
            rel = path.name
        modules.append(SourceModule.parse(path, rel))
    return modules


# ----------------------------------------------------------------------
# Small AST conveniences shared by checkers
# ----------------------------------------------------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def call_name(call: ast.Call) -> str | None:
    """The dotted name a call targets, if statically nameable."""
    return dotted_name(call.func)


def is_self_attr(node: ast.AST, attr: str | None = None) -> bool:
    """Whether ``node`` is ``self.X`` (optionally a specific ``X``)."""
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


def int_value(node: ast.AST) -> int | None:
    """The value of an integer literal (not bool), else None."""
    if isinstance(node, ast.Constant) and type(node.value) is int:
        return node.value
    return None
