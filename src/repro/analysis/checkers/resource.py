"""RL6xx — resource-balance checker for paired charge/release APIs.

The paper's Section 4.3 footprint invariant — heap + shm must never
exceed one copy of the data — only holds if every *logical* charge is
eventually released: ``MemoryTracker.allocate`` balanced by ``free`` in
the same region, ``FootprintBudget.acquire`` (and its shared-memory
sibling) balanced by ``release``, the decoded-column cache's
``_charge`` balanced by ``_discharge``, and the engine's
``_track_heap_alloc`` balanced by ``_track_heap_free``.  PRs 2, 5 and 6
each shipped (and then fixed by hand) a path where an exception escaped
between the charge and the release; this checker encodes that class of
bug the way RL4xx encodes segment-handle leaks.

A charge is *paired* with a release when both use the same API family,
the same receiver expression, and (for the tracker) the same region
label.  Three codes:

- ``RL601`` a charge whose API family has **no matching release
  anywhere in the module** — charged and never freed.  A release in a
  different function of the same module is a *handoff* (the
  ``_publish_directory`` → ``_finish_memory`` idiom) and does not fire.
- ``RL602`` a charge released on the normal path of the **same
  function**, but leaked if an exception fires between the charge and
  the release: no enclosing ``finally``/handler releases it and no
  immediately-following ``try/finally`` covers it.
- ``RL603`` a budget ``reserve(...)`` context manager called outside a
  ``with`` statement — the pairing the context manager guarantees never
  engages.

Suppression: a charge statement carrying a ``# reprolint: handoff``
comment on its line is treated as a documented ownership transfer.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, dotted_name

CHECKER = "resource-balance"

#: method name -> (pair key, matching release method names)
_CHARGE_METHODS = {
    "allocate": ("tracker", {"free"}),
    "acquire": ("budget", {"release"}),
    "_charge": ("cache", {"_discharge"}),
    "_track_heap_alloc": ("heap", {"_track_heap_free"}),
}
_RELEASE_METHODS = {
    "free": "tracker",
    "release": "budget",
    "_discharge": "cache",
    "_track_heap_free": "heap",
}
#: Receiver-name fragments that identify the charged object, so that
#: ``connection.acquire()`` on some unrelated class is not mistaken for
#: a budget charge.  The fragment is matched against the last component
#: of the receiver's dotted name, lowercased.
_RECEIVER_HINTS = {
    "tracker": ("tracker",),
    "budget": ("budget",),
}

_HANDOFF_PRAGMA = "reprolint: handoff"


@dataclass
class _Charge:
    call: ast.Call
    stmt: ast.stmt
    family: str  # tracker | budget | cache | heap
    receiver: str  # dotted receiver expression, "" when none
    region: str | None  # tracker region literal, None = any
    api: str  # full dotted call name, for messages/symbols
    releases: frozenset[str]


def _receiver_of(call: ast.Call) -> str:
    """The dotted name of the object a method call is made on."""
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value) or ""
    return ""


def _region_of(call: ast.Call) -> str | None:
    if call.args and isinstance(call.args[0], ast.Constant):
        if isinstance(call.args[0].value, str):
            return call.args[0].value
    return None


def _receiver_matches(family: str, receiver: str) -> bool:
    hints = _RECEIVER_HINTS.get(family)
    if hints is None:
        return True  # _charge/_track_heap_alloc are unambiguous names
    terminal = receiver.rsplit(".", 1)[-1].lower()
    return any(hint in terminal for hint in hints)


def _classify_charge(call: ast.Call) -> _Charge | None:
    if not isinstance(call.func, ast.Attribute):
        return None
    method = call.func.attr
    entry = _CHARGE_METHODS.get(method)
    if entry is None:
        return None
    family, releases = entry
    receiver = _receiver_of(call)
    if not _receiver_matches(family, receiver):
        return None
    region = _region_of(call) if family == "tracker" else None
    return _Charge(
        call=call,
        stmt=None,  # filled by the caller
        family=family,
        receiver=receiver,
        region=region,
        api=dotted_name(call.func) or method,
        releases=frozenset(releases),
    )


def _is_matching_release(node: ast.AST, charge: _Charge) -> bool:
    if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
        return False
    if node.func.attr not in charge.releases:
        return False
    if _receiver_of(node) != charge.receiver:
        return False
    if charge.family == "tracker" and charge.region is not None:
        region = _region_of(node)
        if region is not None and region != charge.region:
            return False
    return True


def _releases_in(part: list[ast.stmt] | ast.stmt, charge: _Charge) -> bool:
    stmts = part if isinstance(part, list) else [part]
    for stmt in stmts:
        for node in ast.walk(stmt):
            if _is_matching_release(node, charge):
                return True
    return False


def _enclosing_stmt(node: ast.AST, module: SourceModule) -> ast.stmt | None:
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = module.parent(current)
    return current if isinstance(current, ast.stmt) else None


def _has_handoff_pragma(charge: _Charge, module: SourceModule) -> bool:
    lines = module.text.splitlines()
    lineno = charge.call.lineno
    if 1 <= lineno <= len(lines):
        return _HANDOFF_PRAGMA in lines[lineno - 1]
    return False


def _block_of(stmt: ast.stmt, module: SourceModule) -> tuple[list[ast.stmt], int] | None:
    """The statement list containing ``stmt`` and its index in it."""
    parent = module.parent(stmt)
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and stmt in block:
            return block, block.index(stmt)
    return None


def _is_glue(stmt: ast.stmt) -> bool:
    """A statement that cannot plausibly raise between charge and cover."""
    if isinstance(stmt, (ast.Pass, ast.AnnAssign)):
        return not any(isinstance(n, ast.Call) for n in ast.walk(stmt))
    if isinstance(stmt, (ast.Assign, ast.AugAssign)):
        return not any(isinstance(n, ast.Call) for n in ast.walk(stmt))
    return False


def _followup_cover(charge: _Charge, module: SourceModule, boundary: ast.AST | None) -> str:
    """Scan the statements after the charge for a covering ``try``.

    Walks forward through glue statements; climbs out of enclosing
    ``if``/``with`` blocks up to ``boundary`` (the enclosing ``try`` or
    the function).  Returns ``"covered"`` when a following ``try``
    releases the charge in its ``finally`` (or in every handler),
    ``"vacuous"`` when the next effective statement *is* the release,
    and ``"open"`` otherwise.
    """
    stmt = charge.stmt
    while True:
        located = _block_of(stmt, module)
        if located is None:
            return "open"
        block, index = located
        for following in block[index + 1 :]:
            if _is_glue(following):
                continue
            if isinstance(following, ast.Try):
                if following.finalbody and _releases_in(following.finalbody, charge):
                    return "covered"
                if following.handlers and all(
                    _releases_in(h.body, charge) or _handler_only_raises(h)
                    for h in following.handlers
                ):
                    return "covered"
                return "open"
            if _releases_in(following, charge) and not any(
                _classify_charge(n) for n in ast.walk(following)
                if isinstance(n, ast.Call)
            ):
                # The very next effective statement releases: nothing can
                # fire in between.
                return "vacuous"
            return "open"
        # Block exhausted without risk: climb to the enclosing statement
        # (an if/with/for body ending right after the charge).
        parent = module.parent(stmt)
        while parent is not None and not isinstance(parent, ast.stmt):
            parent = module.parent(parent)
        if parent is None or parent is boundary or isinstance(
            parent, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Try)
        ):
            return "open"
        stmt = parent


def _handler_only_raises(handler: ast.ExceptHandler) -> bool:
    return len(handler.body) == 1 and isinstance(handler.body[0], ast.Raise)


def _exception_edge(charge: _Charge, fn: ast.AST, module: SourceModule) -> str:
    """Classify the exception-edge coverage of a charge.

    An escaping exception unwinds through every enclosing ``try`` in
    turn, so the charge is covered if the statements right after it
    form a covering ``try``/release, or if *any* enclosing level
    releases it in a ``finally`` or in all of its handlers.  A level
    whose handlers can swallow the exception without releasing stops
    the walk: outer coverage never runs.  Returns ``"covered"`` or
    ``"leak"``.
    """
    if _followup_cover(charge, module, boundary=fn) in ("covered", "vacuous"):
        return "covered"
    for trynode in module.ancestors(charge.stmt):
        if not isinstance(trynode, ast.Try):
            if isinstance(trynode, (ast.FunctionDef, ast.AsyncFunctionDef)):
                break
            continue
        if charge.stmt in _flat(trynode.finalbody):
            continue  # charged inside the finally: no edge at this level
        if trynode.finalbody and _releases_in(trynode.finalbody, charge):
            return "covered"
        if charge.stmt in _flat(trynode.body) and trynode.handlers:
            if all(
                _releases_in(h.body, charge) or _handler_only_raises(h)
                for h in trynode.handlers
            ):
                return "covered"
            return "leak"  # a handler may swallow without releasing
        # Finally-only try (or charged in a handler/orelse): the
        # exception keeps unwinding — consult the next level out.
    return "leak"


def _flat(stmts: list[ast.stmt]) -> list[ast.stmt]:
    out: list[ast.stmt] = []
    for s in stmts:
        out.append(s)
        for sub in ast.walk(s):
            if isinstance(sub, ast.stmt):
                out.append(sub)
    return out


def _in_with_item(call: ast.Call, module: SourceModule) -> bool:
    parent = module.parent(call)
    return isinstance(parent, ast.withitem) and parent.context_expr is call


def _module_releases(module: SourceModule, charge: _Charge) -> bool:
    for node in ast.walk(module.tree):
        if _is_matching_release(node, charge):
            return True
    return False


def _function_releases(fn: ast.AST, charge: _Charge) -> bool:
    return _releases_in(list(getattr(fn, "body", [])), charge)


def check(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        findings.extend(_check_reserve_misuse(module))
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(_check_function(module, fn))
    return findings


def _check_reserve_misuse(module: SourceModule) -> list[Finding]:
    findings = []
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr != "reserve":
            continue
        receiver = _receiver_of(node)
        if not _receiver_matches("budget", receiver):
            continue
        if _in_with_item(node, module):
            continue
        fn = module.enclosing_function(node)
        fn_name = getattr(fn, "name", "<module>")
        findings.append(
            Finding(
                path=module.relpath,
                line=node.lineno,
                code="RL603",
                checker=CHECKER,
                symbol=f"{fn_name}:{dotted_name(node.func) or 'reserve'}",
                message=(
                    f"{fn_name} calls {receiver or 'the budget'}.reserve() "
                    f"outside a `with` statement — the context manager's "
                    f"acquire/release pairing never engages"
                ),
            )
        )
    return findings


def _check_function(module: SourceModule, fn: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    fn_name = getattr(fn, "name", "?")
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call):
            continue
        if module.enclosing_function(node) is not fn:
            continue
        charge = _classify_charge(node)
        if charge is None:
            continue
        stmt = _enclosing_stmt(node, module)
        if stmt is None:
            continue
        charge.stmt = stmt
        if _in_with_item(node, module):
            continue
        if _has_handoff_pragma(charge, module):
            continue
        region = f":{charge.region}" if charge.region else ""
        symbol = f"{fn_name}:{charge.api}{region}"
        if not _module_releases(module, charge):
            findings.append(
                Finding(
                    path=module.relpath,
                    line=node.lineno,
                    code="RL601",
                    checker=CHECKER,
                    symbol=symbol,
                    message=(
                        f"{fn_name} charges via {charge.api}"
                        f"{f' (region {charge.region!r})' if charge.region else ''} "
                        f"but nothing in this module ever releases the "
                        f"{charge.family} pair — charged and never freed"
                    ),
                )
            )
            continue
        if not _function_releases(fn, charge):
            # Released elsewhere in the module: a cross-method handoff
            # (the publish/finish idiom); lifetime is the class's problem.
            continue
        if _exception_edge(charge, fn, module) == "leak":
            findings.append(
                Finding(
                    path=module.relpath,
                    line=node.lineno,
                    code="RL602",
                    checker=CHECKER,
                    symbol=symbol,
                    message=(
                        f"{fn_name} releases the {charge.api} charge on the "
                        f"normal path but leaks it on the exception edge: no "
                        f"finally, covering handler, or immediate try/finally "
                        f"between the charge and its release"
                    ),
                )
            )
    return findings
