"""Checker registry for reprolint.

Each checker module exposes ``CHECKER`` (its display name) and
``check(modules) -> list[Finding]``.  The registry maps name -> check
function so the runner and the CLI ``--checker`` filter share one list.
"""

from __future__ import annotations

from repro.analysis.checkers import (
    fallback,
    layout,
    lifecycle,
    lockorder,
    locks,
    resource,
    statemachine,
)

CHECKERS = {
    layout.CHECKER: layout.check,
    statemachine.CHECKER: statemachine.check,
    locks.CHECKER: locks.check,
    lifecycle.CHECKER: lifecycle.check,
    fallback.CHECKER: fallback.check,
    resource.CHECKER: resource.check,
    lockorder.CHECKER: lockorder.check,
}

__all__ = [
    "CHECKERS",
    "fallback",
    "layout",
    "lifecycle",
    "lockorder",
    "locks",
    "resource",
    "statemachine",
]
