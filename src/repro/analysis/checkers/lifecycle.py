"""RL4xx — shared-memory segment lifecycle checker.

Shared memory outlives the process that created it: a leaked attach is
not garbage-collected at exit, it squats in ``/dev/shm`` until someone
unlinks it — which is how PR 2's leaked-attach-on-fallback bug ate the
restore budget.  This checker tracks every acquisition of a segment
handle through a function body and verifies it is released on every
path, including the exception edges.

Acquisitions: ``ShmSegment.create/attach``, ``LeafMetadata.create/
attach``, ``shared_memory.SharedMemory(...)``, ``open(...)``.
Releases: ``.close()``, ``.unlink()``, ``.unlink_all()``.

Codes:

- ``RL401`` a handle acquired and never released on the normal path.
- ``RL402`` a handle released on the normal path but leaked if an
  exception fires between the acquire and the release.

A handle is considered safe when any of these hold:

- acquired in a ``with`` statement (context manager owns it);
- released in a chained call (``X.attach(n).unlink()``);
- ownership escapes: the handle is returned, yielded, stored on
  ``self``/an object, put in a container, or passed to another call —
  release is then the new owner's job;
- a ``finally`` block of an enclosing/sibling ``try`` releases it;
- an ``except`` handler of the enclosing ``try`` releases it *and*
  the normal path also releases it (the engine's attach-then-guard
  idiom).  When the acquire is the **only** statement in the ``try``
  body nothing can fire between acquire and handler, so the handler
  need not release (``segment_exists`` idiom).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, dotted_name

CHECKER = "segment-lifecycle"

#: call-name suffixes that hand back a resource handle
_ACQUIRE_SUFFIXES = (
    "ShmSegment.create",
    "ShmSegment.attach",
    "LeafMetadata.create",
    "LeafMetadata.attach",
    "SharedMemory",
)
_ACQUIRE_EXACT = {"open"}
_RELEASE_METHODS = {"close", "unlink", "unlink_all"}


def _is_acquire(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    if name in _ACQUIRE_EXACT:
        return True
    return any(
        name == suffix or name.endswith("." + suffix) for suffix in _ACQUIRE_SUFFIXES
    )


@dataclass
class _Acquire:
    call: ast.Call
    var: str | None  # the local name bound, None when unbound/complex
    stmt: ast.stmt  # the statement performing the acquire
    api: str


def _function_acquires(fn: ast.AST, module: SourceModule) -> list[_Acquire]:
    out: list[_Acquire] = []
    for node in ast.walk(fn):
        if not isinstance(node, ast.Call) or not _is_acquire(node):
            continue
        if module.enclosing_function(node) is not fn:
            continue
        stmt = _enclosing_stmt(node, module)
        if stmt is None:
            continue
        var: str | None = None
        if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
            target = stmt.targets[0]
            if isinstance(target, ast.Name) and _value_is(stmt.value, node):
                var = target.id
        out.append(
            _Acquire(call=node, var=var, stmt=stmt, api=dotted_name(node.func) or "?")
        )
    return out


def _value_is(value: ast.AST, call: ast.Call) -> bool:
    """Whether ``value`` is the call itself (possibly via no wrapping)."""
    return value is call


def _enclosing_stmt(node: ast.AST, module: SourceModule) -> ast.stmt | None:
    current: ast.AST | None = node
    while current is not None and not isinstance(current, ast.stmt):
        current = module.parent(current)
    return current if isinstance(current, ast.stmt) else None


def _in_with_item(call: ast.Call, module: SourceModule) -> bool:
    parent = module.parent(call)
    return isinstance(parent, ast.withitem) and parent.context_expr is call


def _chained_release(call: ast.Call, module: SourceModule) -> bool:
    """``ShmSegment.attach(n).unlink()`` — released in the same expression."""
    parent = module.parent(call)
    if isinstance(parent, ast.Attribute) and parent.attr in _RELEASE_METHODS:
        grand = module.parent(parent)
        return isinstance(grand, ast.Call) and grand.func is parent
    return False


def _ownership_escapes(acq: _Acquire, fn: ast.AST, module: SourceModule) -> bool:
    """The handle leaves the function's custody."""
    call, var = acq.call, acq.var
    parent = module.parent(call)
    # unbound forms: returned / yielded / stored / passed directly
    if isinstance(parent, (ast.Return, ast.Yield, ast.Await)):
        return True
    if isinstance(parent, ast.Call) and call in parent.args:
        return True
    if isinstance(parent, ast.keyword):
        return True
    if isinstance(parent, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(parent, ast.Assign):
        for target in parent.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return True
    if var is None:
        return False
    # bound forms: any later use of the name that transfers ownership
    for node in ast.walk(fn):
        if not isinstance(node, ast.Name) or node.id != var:
            continue
        if not isinstance(node.ctx, ast.Load):
            continue
        use_parent = module.parent(node)
        if isinstance(use_parent, (ast.Return, ast.Yield)):
            return True
        # Passing the bound handle to a *constructor* (``cls(raw)``,
        # ``TableSegmentWriter(segment, ...)``) wraps it — the wrapper
        # owns it now.  Passing it to an ordinary function is borrowing:
        # the caller still owns it and must release (this is exactly how
        # the PR 2 leak looked: attached, iterated, never closed on
        # raise), so lowercase callees do NOT transfer ownership.
        if (
            isinstance(use_parent, ast.Call)
            and node in list(use_parent.args) + [kw.value for kw in use_parent.keywords]
            and _is_constructor_call(use_parent)
        ):
            return True
        if isinstance(use_parent, (ast.Tuple, ast.List, ast.Dict, ast.Set)):
            return True
        if isinstance(use_parent, ast.Assign):
            # rebinding elsewhere: conservatively treat attribute stores
            # of the handle as ownership transfer
            for target in use_parent.targets:
                if isinstance(target, (ast.Attribute, ast.Subscript)):
                    return True
    return False


def _is_constructor_call(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    terminal = name.rsplit(".", 1)[-1]
    return terminal == "cls" or (terminal[:1].isupper() and terminal.isidentifier())


def _releases_var(tree_part: list[ast.stmt] | ast.stmt, var: str) -> bool:
    nodes = tree_part if isinstance(tree_part, list) else [tree_part]
    for stmt in nodes:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _RELEASE_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id == var
            ):
                return True
    return False


def _normal_path_releases(acq: _Acquire, fn: ast.AST) -> bool:
    if acq.var is None:
        return False
    # any release anywhere in the function counts as a normal-path
    # release; path sensitivity beyond try/except is out of scope
    return _releases_var(list(getattr(fn, "body", [])), acq.var)


def _handler_guard(acq: _Acquire, fn: ast.AST, module: SourceModule) -> str:
    """Classify exception-edge coverage for a bound acquire.

    Returns one of ``"covered"``, ``"leak"``, ``"no-try"``.
    """
    var = acq.var
    assert var is not None
    enclosing_tries = [
        t for t in module.ancestors(acq.stmt) if isinstance(t, ast.Try)
    ]
    if not enclosing_tries:
        return "no-try"
    trynode = enclosing_tries[0]
    in_final = any(acq.stmt in _flat(part) for part in [trynode.finalbody])
    if in_final:
        # acquired inside finally: treat as no-try for this level
        return "no-try"
    # finally releasing covers everything
    if trynode.finalbody and _releases_var(trynode.finalbody, var):
        return "covered"
    in_body = acq.stmt in _flat(trynode.body)
    if in_body:
        # nothing can fire after the acquire if it is the last risky
        # statement — approximate: acquire is the only statement
        if len(trynode.body) == 1:
            return "covered"
        # statements follow the acquire inside the try: a handler must
        # release (or re-raise cleanup happens elsewhere)
        handlers_release = all(
            _releases_var(h.body, var) or _handler_only_raises(h)
            for h in trynode.handlers
        )
        return "covered" if handlers_release and trynode.handlers else "leak"
    # acquired in a handler/orelse: no exception edge at this level
    return "no-try"


def _handler_only_raises(handler: ast.ExceptHandler) -> bool:
    return len(handler.body) == 1 and isinstance(handler.body[0], ast.Raise)


def _flat(stmts: list[ast.stmt]) -> list[ast.stmt]:
    out = []
    for s in stmts:
        out.append(s)
        for sub in ast.walk(s):
            if isinstance(sub, ast.stmt):
                out.append(sub)
    return out


def _sibling_try_covers(acq: _Acquire, module: SourceModule) -> bool:
    """Acquire followed by a ``try`` that guarantees release.

    The engine's shutdown idiom::

        meta = LeafMetadata.create(...)
        records = []            # call-free glue only
        try:
            ... the risky work ...
        finally:
            meta.close()

    covers the exception edge as long as nothing between the acquire and
    the ``try`` can raise — approximated as the glue statements
    containing no calls.  A ``try`` whose every handler releases the
    handle (or is re-raise-only) counts too.
    """
    if acq.var is None:
        return False
    parent = module.parent(acq.stmt)
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if not (isinstance(block, list) and acq.stmt in block):
            continue
        rest = block[block.index(acq.stmt) + 1 :]
        for stmt in rest:
            if isinstance(stmt, ast.Try):
                if stmt.finalbody and _releases_var(stmt.finalbody, acq.var):
                    return True
                if stmt.handlers and all(
                    _releases_var(h.body, acq.var) or _handler_only_raises(h)
                    for h in stmt.handlers
                ):
                    return True
                return False
            if any(isinstance(n, ast.Call) for n in ast.walk(stmt)):
                return False
        return False
    return False


def _risky_statements_follow(acq: _Acquire, fn: ast.AST, module: SourceModule) -> bool:
    """Whether any statement at all executes after the acquire before the
    release — if the release is the next statement and nothing can fail
    in between, the exception edge is vacuous.  Approximated as: the
    statement immediately following the acquire in the same block
    releases the var."""
    parent = module.parent(acq.stmt)
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and acq.stmt in block:
            idx = block.index(acq.stmt)
            rest = block[idx + 1 :]
            if not rest:
                return False
            if acq.var is not None and _releases_var(rest[0], acq.var):
                return False
            return True
    return True


def check(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        for fn in ast.walk(module.tree):
            if not isinstance(fn, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            findings.extend(_check_function(module, fn))
    return findings


def _check_function(module: SourceModule, fn: ast.AST) -> list[Finding]:
    findings: list[Finding] = []
    fn_name = getattr(fn, "name", "?")
    for acq in _function_acquires(fn, module):
        if _in_with_item(acq.call, module):
            continue
        if _chained_release(acq.call, module):
            continue
        if _ownership_escapes(acq, fn, module):
            continue
        symbol = f"{fn_name}:{acq.api}"
        if not _normal_path_releases(acq, fn):
            findings.append(
                Finding(
                    path=module.relpath,
                    line=acq.call.lineno,
                    code="RL401",
                    checker=CHECKER,
                    symbol=symbol,
                    message=(
                        f"{fn_name} acquires a handle via {acq.api} but never "
                        f"releases it (no close/unlink on any path)"
                    ),
                )
            )
            continue
        if acq.var is None:
            continue
        guard = _handler_guard(acq, fn, module)
        if guard == "covered":
            continue
        if guard == "no-try" and _sibling_try_covers(acq, module):
            continue
        if guard == "no-try" and not _risky_statements_follow(acq, fn, module):
            continue
        findings.append(
            Finding(
                path=module.relpath,
                line=acq.call.lineno,
                code="RL402",
                checker=CHECKER,
                symbol=symbol,
                message=(
                    f"{fn_name} leaks the {acq.api} handle on the exception "
                    f"edge: released on the normal path but no with-block, "
                    f"finally, or handler release covers a raise before "
                    f"`{acq.var}.close()`"
                ),
            )
        )
    return findings
