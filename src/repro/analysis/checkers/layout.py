"""RL1xx — layout-drift checker.

The shm layout writer and the restore reader must agree byte-for-byte
(paper, Section 4.2: the layout version exists *because* drift here is a
data-corruption bug, not a style problem).  This checker reads every
``struct.Struct`` definition and its pack/unpack call sites and flags
the drift patterns that survive review most easily:

- ``RL101`` a ``pack``/``pack_into`` call whose argument count disagrees
  with the format's field count (a new header field added to the format
  string but not to one of its writers).
- ``RL102`` a tuple-unpacking assignment from ``unpack``/``unpack_from``
  whose target count disagrees with the field count (the reader half of
  the same drift).
- ``RL103`` a raw integer literal equal to a named ``*MAGIC*`` constant
  defined in the same module — comparisons must go through the name, or
  renumbering the constant silently splits writer from reader.
- ``RL104`` an integer literal equal to a module struct's computed
  ``.size`` used as an offset/length — the PR 2 hardcoded-header-offset
  bug: the literal stays behind when the format grows.
- ``RL105`` a format struct with pack sites but no unpack sites (or the
  reverse) across the scanned tree — a one-sided format is either dead
  or read by code the linter (and the layout version) cannot vouch for.
- ``RL106`` an ``*_OFFSET`` constant that does not land on a field
  boundary of any struct in its module — the valid-bit offset class of
  drift, where a format change moves a field but not the constant
  pointing at it.
"""

from __future__ import annotations

import ast
import struct as struct_mod

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, call_name, dotted_name, int_value

CHECKER = "layout-drift"

#: RL104 ignores small literals: 0/1/4/8 are everywhere, while real
#: header sizes (16, 20, 24, 44...) are distinctive enough to flag.
MIN_SIZE_LITERAL = 12

#: RL103 only polices magic numbers (32-bit tags); version constants are
#: small integers that collide with ordinary literals constantly.
MIN_MAGIC_VALUE = 0x10000

_PACK_METHODS = {"pack", "pack_into"}
_UNPACK_METHODS = {"unpack", "unpack_from"}


def _struct_field_count(fmt: str) -> int | None:
    """How many values ``pack`` consumes for ``fmt`` (pads excluded)."""
    try:
        return len(struct_mod.unpack(fmt, b"\x00" * struct_mod.calcsize(fmt)))
    except struct_mod.error:
        return None


def _format_boundaries(fmt: str) -> set[int]:
    """Byte offsets that fall on a field boundary of ``fmt``."""
    prefix = ""
    body = fmt
    if body and body[0] in "@=<>!":
        prefix = body[0]
        body = body[1:]
    boundaries = {0}
    # Walk the format one (count, code) token at a time so "7x" and "4s"
    # advance as single units.
    i = 0
    consumed = ""
    while i < len(body):
        ch = body[i]
        if ch.isdigit():
            consumed += ch
            i += 1
            continue
        consumed += ch
        i += 1
        try:
            boundaries.add(struct_mod.calcsize(prefix + _normalize(consumed)))
        except struct_mod.error:
            return boundaries
    return boundaries


def _normalize(partial: str) -> str:
    """Strip a trailing bare repeat count (incomplete token)."""
    end = len(partial)
    while end > 0 and partial[end - 1].isdigit():
        end -= 1
    return partial[:end]


class _ModuleFacts:
    """Everything RL1xx needs to know about one module."""

    def __init__(self, module: SourceModule) -> None:
        self.module = module
        self.structs: dict[str, tuple[str, int, int, int]] = {}
        # name -> (fmt, size, nfields, def_line)
        self.magics: dict[str, tuple[int, int]] = {}  # name -> (value, line)
        self.offsets: dict[str, tuple[int, int]] = {}  # name -> (value, line)
        self.imports: dict[str, str] = {}  # local name -> source module
        self._collect()

    def _collect(self) -> None:
        for node in self.module.tree.body:
            if isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.imports[alias.asname or alias.name] = node.module
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            value = node.value
            if (
                isinstance(value, ast.Call)
                and call_name(value) in ("struct.Struct", "Struct")
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, str)
            ):
                fmt = value.args[0].value
                try:
                    size = struct_mod.calcsize(fmt)
                except struct_mod.error:
                    continue
                nfields = _struct_field_count(fmt)
                if nfields is not None:
                    self.structs[name] = (fmt, size, nfields, node.lineno)
            literal = int_value(value)
            if literal is not None:
                if "MAGIC" in name:
                    self.magics[name] = (literal, node.lineno)
                if "OFFSET" in name:
                    self.offsets[name] = (literal, node.lineno)


def check(modules: list[SourceModule]) -> list[Finding]:
    facts = [_ModuleFacts(m) for m in modules]
    findings: list[Finding] = []
    for fact in facts:
        findings.extend(_check_arity(fact))
        findings.extend(_check_magic_literals(fact))
        findings.extend(_check_size_literals(fact))
        findings.extend(_check_offset_constants(fact))
    findings.extend(_check_one_sided(facts))
    return findings


def _resolve_struct(fact: _ModuleFacts, name: str) -> tuple[str, tuple] | None:
    """(defining relpath key, struct facts) for a local struct name."""
    if name in fact.structs:
        return fact.module.relpath, fact.structs[name]
    return None


def _struct_calls(fact: _ModuleFacts, methods: set[str]):
    for node in ast.walk(fact.module.tree):
        if not isinstance(node, ast.Call) or not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in methods:
            continue
        owner = dotted_name(node.func.value)
        if owner is None:
            continue
        # `X.pack(...)` and `self.X.pack(...)` both resolve to X.
        base = owner.split(".")[-1]
        yield base, node


def _check_arity(fact: _ModuleFacts) -> list[Finding]:
    findings = []
    module = fact.module
    for base, call in _struct_calls(fact, _PACK_METHODS | _UNPACK_METHODS):
        resolved = _resolve_struct(fact, base)
        if resolved is None:
            continue
        _, (fmt, _size, nfields, _line) = resolved
        method = call.func.attr  # type: ignore[union-attr]
        if method in _PACK_METHODS:
            supplied = len(call.args)
            if method == "pack_into":
                supplied -= 2  # buffer, offset
            if any(isinstance(a, ast.Starred) for a in call.args):
                continue  # not statically countable
            if supplied != nfields:
                findings.append(
                    Finding(
                        path=module.relpath,
                        line=call.lineno,
                        code="RL101",
                        checker=CHECKER,
                        symbol=f"{base}.{method}",
                        message=(
                            f"{base}.{method} packs {supplied} values but format "
                            f"{fmt!r} has {nfields} fields"
                        ),
                    )
                )
        else:
            parent = module.parent(call)
            targets: list[ast.expr] = []
            if isinstance(parent, ast.Assign) and len(parent.targets) == 1:
                targets = [parent.targets[0]]
            elif isinstance(parent, (ast.Tuple, ast.List)):
                continue  # value inside a display, not an unpack assignment
            if targets and isinstance(targets[0], (ast.Tuple, ast.List)):
                count = len(targets[0].elts)
                if any(isinstance(e, ast.Starred) for e in targets[0].elts):
                    continue
                if count != nfields:
                    findings.append(
                        Finding(
                            path=module.relpath,
                            line=call.lineno,
                            code="RL102",
                            checker=CHECKER,
                            symbol=f"{base}.{method}",
                            message=(
                                f"{base}.{method} unpacks into {count} names but "
                                f"format {fmt!r} has {nfields} fields"
                            ),
                        )
                    )
    return findings


def _check_magic_literals(fact: _ModuleFacts) -> list[Finding]:
    findings = []
    module = fact.module
    by_value = {
        value: name
        for name, (value, _line) in fact.magics.items()
        if value >= MIN_MAGIC_VALUE
    }
    if not by_value:
        return findings
    def_lines = {line for _v, line in fact.magics.values()}
    for node in ast.walk(module.tree):
        value = int_value(node)
        if value is None or value not in by_value:
            continue
        if node.lineno in def_lines:
            continue  # the constant's own definition
        name = by_value[value]
        findings.append(
            Finding(
                path=module.relpath,
                line=node.lineno,
                code="RL103",
                checker=CHECKER,
                symbol=f"{name}:0x{value:x}",
                message=(
                    f"raw literal 0x{value:x} duplicates constant {name}; "
                    f"use the name so renumbering cannot split writer from reader"
                ),
            )
        )
    return findings


def _check_size_literals(fact: _ModuleFacts) -> list[Finding]:
    findings = []
    module = fact.module
    by_size: dict[int, str] = {}
    for name, (_fmt, size, _n, _line) in fact.structs.items():
        if size >= MIN_SIZE_LITERAL:
            by_size[size] = name
    if not by_size:
        return findings
    struct_lines = {line for _f, _s, _n, line in fact.structs.values()}
    for node in ast.walk(module.tree):
        value = int_value(node)
        if value is None or value not in by_size:
            continue
        if node.lineno in struct_lines:
            continue
        parent = module.parent(node)
        # Only offsets/lengths in use: call arguments and slice positions.
        in_call = isinstance(parent, ast.Call) and node in parent.args
        in_slice = isinstance(parent, (ast.Slice, ast.Subscript)) or (
            isinstance(parent, ast.BinOp)
            and isinstance(module.parent(parent), (ast.Slice, ast.Subscript))
        )
        if not (in_call or in_slice):
            continue
        name = by_size[value]
        findings.append(
            Finding(
                path=module.relpath,
                line=node.lineno,
                code="RL104",
                checker=CHECKER,
                symbol=f"{name}:size{value}",
                message=(
                    f"literal {value} equals {name}.size; write {name}.size so "
                    f"the offset tracks the format"
                ),
            )
        )
    return findings


def _check_offset_constants(fact: _ModuleFacts) -> list[Finding]:
    findings = []
    if not fact.structs:
        return findings
    boundary_sets = [
        _format_boundaries(fmt) for fmt, _s, _n, _l in fact.structs.values()
    ]
    for name, (value, line) in fact.offsets.items():
        if any(value in bounds for bounds in boundary_sets):
            continue
        fmts = ", ".join(repr(f) for f, _s, _n, _l in fact.structs.values())
        findings.append(
            Finding(
                path=fact.module.relpath,
                line=line,
                code="RL106",
                checker=CHECKER,
                symbol=name,
                message=(
                    f"{name} = {value} is not a field boundary of any module "
                    f"struct ({fmts}); the format moved without it"
                ),
            )
        )
    return findings


def _check_one_sided(facts: list[_ModuleFacts]) -> list[Finding]:
    """Every format struct needs both a writer and a reader in-tree."""
    packed: set[tuple[str, str]] = set()
    unpacked: set[tuple[str, str]] = set()
    for fact in facts:
        for base, call in _struct_calls(fact, _PACK_METHODS | _UNPACK_METHODS):
            key = _defining_key(fact, facts, base)
            if key is None:
                continue
            if call.func.attr in _PACK_METHODS:  # type: ignore[union-attr]
                packed.add(key)
            else:
                unpacked.add(key)
    findings = []
    for fact in facts:
        for name, (fmt, _size, _n, line) in fact.structs.items():
            key = (fact.module.relpath, name)
            has_pack, has_unpack = key in packed, key in unpacked
            if has_pack and has_unpack:
                continue
            if not has_pack and not has_unpack:
                side = "no pack or unpack sites"
            elif has_pack:
                side = "pack sites but no unpack sites"
            else:
                side = "unpack sites but no pack sites"
            findings.append(
                Finding(
                    path=fact.module.relpath,
                    line=line,
                    code="RL105",
                    checker=CHECKER,
                    symbol=name,
                    message=(
                        f"format struct {name} ({fmt!r}) has {side} in the "
                        f"scanned tree; a one-sided format is drift waiting to land"
                    ),
                )
            )
    return findings


def _defining_key(
    fact: _ModuleFacts, facts: list[_ModuleFacts], base: str
) -> tuple[str, str] | None:
    if base in fact.structs:
        return (fact.module.relpath, base)
    source = fact.imports.get(base)
    if source is None:
        return None
    # Resolve `from repro.shm.layout import X` to the scanned module that
    # defines X, matching on the dotted module suffix.
    suffix = source.replace(".", "/") + ".py"
    for other in facts:
        if other.module.relpath.endswith(suffix) and base in other.structs:
            return (other.module.relpath, base)
    return None
