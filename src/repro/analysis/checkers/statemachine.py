"""RL2xx — state-machine coverage checker.

``core/states.py`` declares the Figure-5 transition tables; the engine
and the leaf server are supposed to *drive* them.  Drift shows up as
tables that promise edges nothing exercises (dead protocol surface) or
call sites that assume edges the table never granted (a guaranteed
``StateError`` at runtime).  Four checks:

- ``RL201`` a declared target state never passed to ``transition()``
  anywhere in the scanned tree — the state is unreachable in practice.
- ``RL202`` a ``transition()`` call site whose state is not a target of
  any declared edge — it can only ever raise ``StateError``.
- ``RL203`` a structural hole in the table itself: a non-terminal state
  with no outgoing edges, or a state from which no terminal state is
  reachable — a failure path that cannot route to rest.
- ``RL204`` a declared edge never exercised by any statically-visible
  call sequence.

RL204 runs a small abstract interpretation over each function: machine
variables constructed locally are tracked precisely through branches,
loops and try/except; variables that cross a call boundary (passed as an
argument, or received as an annotated parameter) degrade to "any state",
which marks every declared edge into the transitioned-to state.  The
approximation is deliberately one-sided — it can miss an unexercised
edge, never invent one exercised.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, dotted_name

CHECKER = "state-machine"

#: Abstract "any state" — a machine that crossed a call boundary.
TOP = "*"


@dataclass
class MachineTable:
    name: str
    relpath: str
    line: int
    enum: str
    initial: str
    transitions: dict[str, set[str]] = field(default_factory=dict)
    terminal: set[str] = field(default_factory=set)

    @property
    def states(self) -> set[str]:
        states = {self.initial} | self.terminal | set(self.transitions)
        for targets in self.transitions.values():
            states |= targets
        return states

    @property
    def targets(self) -> set[str]:
        out: set[str] = set()
        for targets in self.transitions.values():
            out |= targets
        return out

    @property
    def edges(self) -> set[tuple[str, str]]:
        return {
            (src, dst) for src, targets in self.transitions.items() for dst in targets
        }


def _enum_member(node: ast.AST) -> tuple[str, str] | None:
    """``EnumClass.MEMBER`` -> (enum name, member name)."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None


def _parse_members(node: ast.AST) -> set[str] | None:
    if not isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        return None
    members = set()
    for element in node.elts:
        member = _enum_member(element)
        if member is None:
            return None
        members.add(member[1])
    return members


def discover_machines(modules: list[SourceModule]) -> list[MachineTable]:
    """Find StateMachine subclasses and parse their transition tables.

    The recognized shape is the repo convention: an ``__init__`` whose
    ``super().__init__(initial, {src: {dst, ...}}, terminal={...})``
    call spells the whole table with ``Enum.MEMBER`` literals.
    """
    machines = []
    for module in modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            table = _parse_class(module, node)
            if table is not None:
                machines.append(table)
    return machines


def _parse_class(module: SourceModule, cls: ast.ClassDef) -> MachineTable | None:
    for item in cls.body:
        if not isinstance(item, ast.FunctionDef) or item.name != "__init__":
            continue
        for call in ast.walk(item):
            if not (
                isinstance(call, ast.Call)
                and isinstance(call.func, ast.Attribute)
                and call.func.attr == "__init__"
                and isinstance(call.func.value, ast.Call)
                and isinstance(call.func.value.func, ast.Name)
                and call.func.value.func.id == "super"
            ):
                continue
            if not call.args:
                continue
            initial = _enum_member(call.args[0])
            table_node = call.args[1] if len(call.args) > 1 else None
            terminal_node = call.args[2] if len(call.args) > 2 else None
            for kw in call.keywords:
                if kw.arg == "terminal":
                    terminal_node = kw.value
                if kw.arg == "transitions":
                    table_node = kw.value
                if kw.arg == "initial":
                    initial = _enum_member(kw.value)
            if initial is None or not isinstance(table_node, ast.Dict):
                continue
            enum_name, initial_member = initial
            transitions: dict[str, set[str]] = {}
            for key, value in zip(table_node.keys, table_node.values):
                src = _enum_member(key) if key is not None else None
                targets = _parse_members(value)
                if src is None or targets is None:
                    transitions = {}
                    break
                transitions[src[1]] = targets
            if not transitions:
                continue
            terminal = _parse_members(terminal_node) if terminal_node is not None else set()
            return MachineTable(
                name=cls.name,
                relpath=module.relpath,
                line=cls.lineno,
                enum=enum_name,
                initial=initial_member,
                transitions=transitions,
                terminal=terminal or set(),
            )
    return None


# ----------------------------------------------------------------------
# RL204: abstract interpretation of transition sequences
# ----------------------------------------------------------------------


class _Walker:
    """Tracks machine-typed variables through one function body."""

    def __init__(self, machines: dict[str, MachineTable], by_enum: dict[str, list[MachineTable]]):
        self.machines = machines  # class name -> table
        self.by_enum = by_enum
        self.exercised: set[tuple[str, str, str]] = set()  # (machine, src, dst)

    # -- environment helpers ------------------------------------------

    @staticmethod
    def _merge(a: dict, b: dict) -> dict:
        out: dict = {}
        for var in set(a) | set(b):
            sa, sb = a.get(var), b.get(var)
            if sa is None or sb is None:
                chosen = sa if sb is None else sb
                out[var] = chosen
            elif sa[1] == TOP or sb[1] == TOP:
                out[var] = (sa[0], TOP)
            else:
                out[var] = (sa[0], sa[1] | sb[1])
        return out

    def _mark(self, machine: MachineTable, current, member: str) -> None:
        if current == TOP:
            sources = {
                src for src, targets in machine.transitions.items() if member in targets
            }
        else:
            sources = {
                src for src in current if member in machine.transitions.get(src, set())
            }
        for src in sources:
            self.exercised.add((machine.name, src, member))

    # -- expression scanning ------------------------------------------

    def _scan_calls(self, node: ast.AST, env: dict) -> None:
        calls = [n for n in ast.walk(node) if isinstance(n, ast.Call)]
        calls.sort(key=lambda c: (c.lineno, c.col_offset))
        for call in calls:
            self._apply_call(call, env)

    def _apply_call(self, call: ast.Call, env: dict) -> None:
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "transition"
            and call.args
        ):
            member = _enum_member(call.args[0])
            if member is not None:
                enum_name, state = member
                receiver = dotted_name(func.value)
                if receiver in env:
                    machine_name, current = env[receiver]
                    machine = self.machines[machine_name]
                    if machine.enum == enum_name:
                        self._mark(machine, current, state)
                        env[receiver] = (machine_name, frozenset({state}))
                        return
                # Unknown receiver: any machine over this enum may be
                # driven here; mark every declared edge into the state.
                for machine in self.by_enum.get(enum_name, []):
                    self._mark(machine, TOP, state)
                return
        # A tracked variable escaping into a call loses precision.
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, ast.Name) and arg.id in env:
                name, _states = env[arg.id]
                env[arg.id] = (name, TOP)

    # -- statement walking --------------------------------------------

    def run(self, fn: ast.FunctionDef) -> None:
        env: dict = {}
        for arg in list(fn.args.args) + list(fn.args.kwonlyargs):
            if (
                arg.annotation is not None
                and isinstance(arg.annotation, ast.Name)
                and arg.annotation.id in self.machines
            ):
                env[arg.arg] = (arg.annotation.id, TOP)
        self._block(fn.body, env)

    def _block(self, stmts: list[ast.stmt], env: dict) -> tuple[dict, bool]:
        """Returns (env after, terminated)."""
        for stmt in stmts:
            terminated = self._stmt(stmt, env)
            if terminated:
                return env, True
        return env, False

    def _snapshot_block(self, stmts: list[ast.stmt], env: dict) -> tuple[dict, bool, dict]:
        """Like _block, but also unions the env at every statement
        boundary — the states an exception handler could observe."""
        union = dict(env)
        for stmt in stmts:
            terminated = self._stmt(stmt, env)
            union = self._merge(union, env)
            if terminated:
                return env, True, union
        return env, False, union

    def _stmt(self, stmt: ast.stmt, env: dict) -> bool:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return False
        if isinstance(stmt, ast.Assign):
            self._scan_calls(stmt.value, env)
            value = stmt.value
            for target in stmt.targets:
                if not isinstance(target, ast.Name):
                    continue
                if (
                    isinstance(value, ast.Call)
                    and isinstance(value.func, ast.Name)
                    and value.func.id in self.machines
                ):
                    machine = self.machines[value.func.id]
                    env[target.id] = (machine.name, frozenset({machine.initial}))
                elif target.id in env:
                    del env[target.id]
            return False
        if isinstance(stmt, (ast.Return, ast.Raise)):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                self._scan_calls(stmt.value, env)
            if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                self._scan_calls(stmt.exc, env)
            return True
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
        if isinstance(stmt, ast.If):
            self._scan_calls(stmt.test, env)
            then_env, then_done = self._block(stmt.body, dict(env))
            else_env, else_done = self._block(stmt.orelse, dict(env))
            merged = self._merge(
                then_env if not then_done else {},
                else_env if not else_done else {},
            )
            env.clear()
            env.update(merged)
            return then_done and else_done
        if isinstance(stmt, (ast.For, ast.While)):
            if isinstance(stmt, ast.For):
                self._scan_calls(stmt.iter, env)
            else:
                self._scan_calls(stmt.test, env)
            # Two passes approximate the loop fixpoint (enough for the
            # construct-then-drive shapes this repo uses).
            current = dict(env)
            for _ in range(2):
                body_env, _done = self._block(stmt.body, dict(current))
                current = self._merge(current, body_env)
            self._block(stmt.orelse, dict(current))
            env.clear()
            env.update(current)
            return False
        if isinstance(stmt, ast.Try):
            body_env, body_done, at_raise = self._snapshot_block(stmt.body, dict(env))
            outcomes = [] if body_done else [body_env]
            for handler in stmt.handlers:
                handler_env, handler_done = self._block(handler.body, dict(at_raise))
                if not handler_done:
                    outcomes.append(handler_env)
            if stmt.orelse and not body_done:
                else_env, else_done = self._block(stmt.orelse, dict(body_env))
                outcomes = [o for o in outcomes if o is not body_env]
                if not else_done:
                    outcomes.append(else_env)
            merged: dict = {}
            for outcome in outcomes:
                merged = self._merge(merged, outcome)
            if not outcomes:
                merged = at_raise  # every path raised/returned; finally still runs
            final_env, final_done = self._block(stmt.finalbody, merged)
            env.clear()
            env.update(final_env)
            return final_done or not outcomes
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._scan_calls(item.context_expr, env)
            _env, done = self._block(stmt.body, env)
            return done
        # Any other simple statement: scan its expressions in order.
        self._scan_calls(stmt, env)
        return False


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------


def check(modules: list[SourceModule]) -> list[Finding]:
    machines = discover_machines(modules)
    if not machines:
        return []
    by_name = {m.name: m for m in machines}
    by_enum: dict[str, list[MachineTable]] = {}
    for machine in machines:
        by_enum.setdefault(machine.enum, []).append(machine)

    findings: list[Finding] = []
    findings.extend(_structural(machines))

    walker = _Walker(by_name, by_enum)
    entered: dict[str, set[str]] = {m.name: set() for m in machines}
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                walker.run(node)  # type: ignore[arg-type]
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "transition"
                and node.args
            ):
                member = _enum_member(node.args[0])
                if member is None:
                    continue
                enum_name, state = member
                for machine in by_enum.get(enum_name, []):
                    entered[machine.name].add(state)
                    if state not in machine.targets:
                        findings.append(
                            Finding(
                                path=module.relpath,
                                line=node.lineno,
                                code="RL202",
                                checker=CHECKER,
                                symbol=f"{machine.name}:{state}",
                                message=(
                                    f"transition to {enum_name}.{state} is outside "
                                    f"{machine.name}'s declared table; this call "
                                    f"can only raise StateError"
                                ),
                            )
                        )

    for machine in machines:
        for state in sorted(machine.targets - entered[machine.name]):
            findings.append(
                Finding(
                    path=machine.relpath,
                    line=machine.line,
                    code="RL201",
                    checker=CHECKER,
                    symbol=f"{machine.name}:{state}",
                    message=(
                        f"{machine.name} declares transitions into {state} but no "
                        f"call site ever enters it"
                    ),
                )
            )
        for src, dst in sorted(machine.edges):
            if (machine.name, src, dst) not in walker.exercised:
                findings.append(
                    Finding(
                        path=machine.relpath,
                        line=machine.line,
                        code="RL204",
                        checker=CHECKER,
                        symbol=f"{machine.name}:{src}->{dst}",
                        message=(
                            f"declared edge {src} -> {dst} of {machine.name} is "
                            f"never exercised by any visible call sequence"
                        ),
                    )
                )
    return findings


def _structural(machines: list[MachineTable]) -> list[Finding]:
    findings = []
    for machine in machines:
        reachable_terminal = _reaches_terminal(machine)
        for state in sorted(machine.states):
            if state in machine.terminal:
                continue
            if not machine.transitions.get(state):
                findings.append(
                    Finding(
                        path=machine.relpath,
                        line=machine.line,
                        code="RL203",
                        checker=CHECKER,
                        symbol=f"{machine.name}:{state}:dead-end",
                        message=(
                            f"non-terminal state {state} of {machine.name} has no "
                            f"outgoing edges; a failure parked here never resolves"
                        ),
                    )
                )
            elif state not in reachable_terminal:
                findings.append(
                    Finding(
                        path=machine.relpath,
                        line=machine.line,
                        code="RL203",
                        checker=CHECKER,
                        symbol=f"{machine.name}:{state}:no-terminal-path",
                        message=(
                            f"state {state} of {machine.name} cannot reach any "
                            f"terminal state"
                        ),
                    )
                )
    return findings


def _reaches_terminal(machine: MachineTable) -> set[str]:
    """States with a path to a terminal state (terminals included)."""
    good = set(machine.terminal)
    changed = True
    while changed:
        changed = False
        for src, targets in machine.transitions.items():
            if src not in good and targets & good:
                good.add(src)
                changed = True
    return good
