"""RL3xx — guarded-by lock discipline checker.

A class that owns a ``threading.Lock``/``RLock``/``Condition`` has
declared that its mutable state is shared; every method that touches
that state outside a ``with self._lock:`` block is a race waiting for a
parallel restart to find it (the machine-wide tracker and budget of
PR 1 are exactly such objects).  Two findings:

- ``RL301`` a write (assign, augment, subscript store, or mutating
  method call) to a shared attribute outside the lock.
- ``RL302`` a read of a shared attribute outside the lock.

What counts as *shared* is inferred, not annotated: any ``self.X``
assigned outside ``__init__``/``__post_init__`` (state that changes
after construction), plus container attributes mutated in place.
Attributes assigned only at construction are configuration and exempt.

Private helpers whose every in-class call site is lock-guarded are
treated as lock-held (the ``_after_change`` idiom) — the discipline is
"hold the lock when you get here", which the call-graph closure checks.
"""

from __future__ import annotations

import ast

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, call_name, dotted_name, is_self_attr

CHECKER = "guarded-by"

_LOCK_FACTORIES = {
    "threading.Lock",
    "threading.RLock",
    "threading.Condition",
    "Lock",
    "RLock",
    "Condition",
}
_MUTATING_METHODS = {
    "append",
    "extend",
    "insert",
    "remove",
    "pop",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
}
_CONSTRUCTORS = {"__init__", "__post_init__", "__new__"}


def _lock_attrs_of(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        # self._lock = threading.RLock()  (in __init__ or anywhere)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            name = call_name(node.value)
            if name in _LOCK_FACTORIES:
                for target in node.targets:
                    if is_self_attr(target):
                        locks.add(target.attr)
        # dataclass field: _lock: threading.RLock = field(default_factory=threading.RLock)
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Call)
            and call_name(node.value) == "field"
        ):
            for kw in node.value.keywords:
                if kw.arg != "default_factory":
                    continue
                value = kw.value
                # `lambda: threading.RLock()` defers the threading lookup
                # to instance creation (the reprosan late-binding form).
                if isinstance(value, ast.Lambda) and isinstance(value.body, ast.Call):
                    if call_name(value.body) in _LOCK_FACTORIES:
                        locks.add(node.target.id)
                elif dotted_name(value) in _LOCK_FACTORIES:
                    locks.add(node.target.id)
    return locks


def _method_of(cls: ast.ClassDef, node: ast.AST, module: SourceModule) -> ast.FunctionDef | None:
    """The method of ``cls`` directly containing ``node``."""
    best: ast.FunctionDef | None = None
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.FunctionDef):
            best = ancestor
        if ancestor is cls:
            return best
    return None


def _is_guarded(node: ast.AST, module: SourceModule, lock_attrs: set[str], cls: ast.ClassDef) -> bool:
    """Whether ``node`` sits inside ``with self.<lock>:`` within ``cls``."""
    for ancestor in module.ancestors(node):
        if ancestor is cls:
            return False
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                expr = item.context_expr
                if is_self_attr(expr) and expr.attr in lock_attrs:
                    return True
    return False


def _shared_attrs_of(cls: ast.ClassDef, module: SourceModule, lock_attrs: set[str]) -> set[str]:
    shared: set[str] = set()
    for node in ast.walk(cls):
        method = _method_of(cls, node, module)
        if method is None or method.name in _CONSTRUCTORS:
            continue
        # self.X = ... / self.X += ...
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for target in targets:
                if is_self_attr(target):
                    shared.add(target.attr)
                # self.X[k] = ...
                if isinstance(target, ast.Subscript) and is_self_attr(target.value):
                    shared.add(target.value.attr)
        # self.X.append(...) and friends
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and is_self_attr(node.func.value)
        ):
            shared.add(node.func.value.attr)
    return shared - lock_attrs


def _lock_held_methods(cls: ast.ClassDef, module: SourceModule, lock_attrs: set[str]) -> set[str]:
    """Private methods only ever called with the lock already held."""
    # call sites: method name -> list of (callsite node, caller method)
    sites: dict[str, list[ast.Call]] = {}
    for node in ast.walk(cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            sites.setdefault(node.func.attr, []).append(node)
    held: set[str] = set()
    changed = True
    while changed:
        changed = False
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            name = item.name
            if name in held or not name.startswith("_") or name.startswith("__"):
                continue
            calls = sites.get(name)
            if not calls:
                continue
            if all(
                _is_guarded(call, module, lock_attrs, cls)
                or (_method_of(cls, call, module) or item).name in held
                for call in calls
            ):
                held.add(name)
                changed = True
    return held


def check(modules: list[SourceModule]) -> list[Finding]:
    findings: list[Finding] = []
    for module in modules:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs = _lock_attrs_of(cls)
            if not lock_attrs:
                continue
            shared = _shared_attrs_of(cls, module, lock_attrs)
            if not shared:
                continue
            held = _lock_held_methods(cls, module, lock_attrs)
            findings.extend(
                _check_class(module, cls, lock_attrs, shared, held)
            )
    return findings


def _check_class(
    module: SourceModule,
    cls: ast.ClassDef,
    lock_attrs: set[str],
    shared: set[str],
    held: set[str],
) -> list[Finding]:
    findings: list[Finding] = []
    seen: set[tuple[str, int]] = set()
    for node in ast.walk(cls):
        if not isinstance(node, ast.Attribute) or not is_self_attr(node):
            continue
        if node.attr not in shared:
            continue
        method = _method_of(cls, node, module)
        if method is None or method.name in _CONSTRUCTORS or method.name in held:
            continue
        if _is_guarded(node, module, lock_attrs, cls):
            continue
        is_store = isinstance(node.ctx, (ast.Store, ast.Del))
        parent = module.parent(node)
        if isinstance(parent, ast.Attribute) and parent.value is node:
            # receiver of a method call: mutating methods are writes
            grand = module.parent(parent)
            if (
                isinstance(grand, ast.Call)
                and grand.func is parent
                and parent.attr in _MUTATING_METHODS
            ):
                is_store = True
        if isinstance(parent, ast.Subscript) and isinstance(
            parent.ctx, (ast.Store, ast.Del)
        ):
            is_store = True
        code = "RL301" if is_store else "RL302"
        key = (f"{cls.name}.{method.name}:{node.attr}:{code}", node.lineno)
        if key in seen:
            continue
        seen.add(key)
        action = "writes" if is_store else "reads"
        findings.append(
            Finding(
                path=module.relpath,
                line=node.lineno,
                code=code,
                checker=CHECKER,
                symbol=f"{cls.name}.{method.name}:{node.attr}",
                message=(
                    f"{cls.name}.{method.name} {action} shared attribute "
                    f"'{node.attr}' outside `with self.{sorted(lock_attrs)[0]}:`"
                ),
            )
        )
    return findings
