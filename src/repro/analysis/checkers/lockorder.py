"""RL7xx — lock-order and atomicity checker.

PR 6 layered a third lock domain onto the tree: the leaf server's
coarse lock, the lazy restorer's internal lock, and the footprint
budget's condition all nest during a serve-while-restoring boot.  Lock
nesting is fine as long as the acquisition *order* is globally
consistent and nothing slow happens inside a critical section; this
checker makes both properties static:

- ``RL701`` the cross-class lock-acquisition graph has a cycle — two
  code paths take the same pair of locks in opposite orders, the
  classic deadlock candidate.
- ``RL702`` a blocking call (budget ``acquire``, ``wait``/``join``,
  shm ``attach``, ``sleep``, pipe ``recv``...) is made while a lock is
  held.  Even when it cannot deadlock, it turns every other user of
  that lock into a queue behind the slow operation — the exact
  availability failure serve-while-restoring exists to avoid.
- ``RL703`` a check-then-act on a service-status gate (``status``,
  ``is_alive``, ``accepts_adds``, ``accepts_queries``) outside the
  owning lock: the status read and the dependent call are two separate
  critical sections, so the leaf can flip between them.  Catching the
  ``StateError`` the re-check raises (the retention idiom) or holding
  the lock across both (the expire idiom) are the accepted fixes.

The lock graph is name-resolved, not type-resolved: a call ``obj.m()``
made under a lock adds edges to the locks acquired by *every* known
class method named ``m``.  That over-approximates (the cost is a rare
justified baseline entry), which is the right direction for a deadlock
checker to be wrong in.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, dotted_name, is_self_attr

CHECKER = "lock-order"

#: Terminal factory names that create an in-process lock.  Matched on
#: the last component so ``threading.RLock``, ``ctx.Lock`` (a
#: multiprocessing context), and a bare imported ``Condition`` all hit.
_LOCK_TERMINALS = {"Lock", "RLock", "Condition"}

#: Method/function terminal names that can block for unbounded time.
#: ``reserve`` is the budget context manager (it acquires on entry);
#: ``attach`` maps a shared-memory segment.
_BLOCKING_NAMES = {
    "acquire",
    "attach",
    "join",
    "recv",
    "reserve",
    "select",
    "sleep",
    "wait",
    "wait_for",
}

#: Service-status gates: the attributes Figure 5 consumers branch on.
_GATE_ATTRS = {"status", "is_alive", "accepts_adds", "accepts_queries"}


@dataclass
class _LockRegion:
    """One ``with self.<lock>:`` body (or a lock-held helper's body)."""

    node: str  # "Class.attr"
    cls: ast.ClassDef
    method: ast.FunctionDef
    body: list[ast.stmt]
    lock_expr: str  # dotted receiver of the held lock, e.g. "self._cond"


@dataclass
class _Edge:
    src: str
    dst: str
    module: SourceModule
    line: int
    via: str  # the call or with-statement that creates the edge


def _factory_terminal(call: ast.Call) -> str | None:
    name = dotted_name(call.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]


def _lock_attrs_of(cls: ast.ClassDef) -> set[str]:
    locks: set[str] = set()
    for node in ast.walk(cls):
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            if _factory_terminal(node.value) in _LOCK_TERMINALS:
                for target in node.targets:
                    if is_self_attr(target):
                        locks.add(target.attr)
        if (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Call)
            and dotted_name(node.value.func) == "field"
        ):
            for kw in node.value.keywords:
                if kw.arg != "default_factory":
                    continue
                value = kw.value
                if isinstance(value, ast.Lambda) and isinstance(value.body, ast.Call):
                    if _factory_terminal(value.body) in _LOCK_TERMINALS:
                        locks.add(node.target.id)
                elif (
                    dotted_name(value) or ""
                ).rsplit(".", 1)[-1] in _LOCK_TERMINALS:
                    locks.add(node.target.id)
    return locks


@dataclass
class _ClassInfo:
    cls: ast.ClassDef
    module: SourceModule
    lock_attrs: set[str]
    #: method name -> lock nodes ("Class.attr") it acquires, transitively
    method_locks: dict[str, set[str]] = field(default_factory=dict)
    #: method name -> method def
    methods: dict[str, ast.FunctionDef] = field(default_factory=dict)
    #: methods whose every in-class call site holds a lock (the
    #: ``_fault_block`` idiom) -> the lock node their callers hold
    held_methods: dict[str, str] = field(default_factory=dict)


def _method_of(info: _ClassInfo, node: ast.AST) -> ast.FunctionDef | None:
    best: ast.FunctionDef | None = None
    for ancestor in info.module.ancestors(node):
        if isinstance(ancestor, ast.FunctionDef):
            best = ancestor
        if ancestor is info.cls:
            return best
    return None


def _held_with_lock(node: ast.AST, info: _ClassInfo) -> str | None:
    """The lock attr guarding ``node`` via an enclosing ``with``, if any."""
    for ancestor in info.module.ancestors(node):
        if ancestor is info.cls:
            return None
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                expr = item.context_expr
                if is_self_attr(expr) and expr.attr in info.lock_attrs:
                    return expr.attr
    return None


def _direct_locks(method: ast.FunctionDef, info: _ClassInfo) -> set[str]:
    locks = set()
    for node in ast.walk(method):
        if isinstance(node, ast.With):
            for item in node.items:
                expr = item.context_expr
                if is_self_attr(expr) and expr.attr in info.lock_attrs:
                    locks.add(f"{info.cls.name}.{expr.attr}")
    return locks


def _collect_classes(modules: list[SourceModule]) -> list[_ClassInfo]:
    infos: list[_ClassInfo] = []
    for module in modules:
        for cls in ast.walk(module.tree):
            if not isinstance(cls, ast.ClassDef):
                continue
            lock_attrs = _lock_attrs_of(cls)
            if not lock_attrs:
                continue
            info = _ClassInfo(cls=cls, module=module, lock_attrs=lock_attrs)
            for item in cls.body:
                if isinstance(item, ast.FunctionDef):
                    info.methods[item.name] = item
                    info.method_locks[item.name] = _direct_locks(item, info)
            _close_over_self_calls(info)
            _find_held_methods(info)
            infos.append(info)
    return infos


def _close_over_self_calls(info: _ClassInfo) -> None:
    """Propagate lock acquisition through same-class self-calls."""
    changed = True
    while changed:
        changed = False
        for name, method in info.methods.items():
            acquired = info.method_locks[name]
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "self"
                    and node.func.attr in info.method_locks
                ):
                    extra = info.method_locks[node.func.attr] - acquired
                    if extra:
                        acquired.update(extra)
                        changed = True


def _find_held_methods(info: _ClassInfo) -> None:
    """Private methods only ever called with a lock already held."""
    sites: dict[str, list[ast.Call]] = {}
    for node in ast.walk(info.cls):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            sites.setdefault(node.func.attr, []).append(node)
    changed = True
    while changed:
        changed = False
        for name in info.methods:
            if name in info.held_methods or not name.startswith("_") or name.startswith("__"):
                continue
            calls = sites.get(name)
            if not calls:
                continue
            locks = set()
            ok = True
            for call in calls:
                attr = _held_with_lock(call, info)
                if attr is not None:
                    locks.add(f"{info.cls.name}.{attr}")
                    continue
                caller = _method_of(info, call)
                if caller is not None and caller.name in info.held_methods:
                    locks.add(info.held_methods[caller.name])
                    continue
                ok = False
                break
            if ok and len(locks) == 1:
                info.held_methods[name] = locks.pop()
                changed = True


def _lock_regions(info: _ClassInfo) -> list[_LockRegion]:
    regions: list[_LockRegion] = []
    for name, method in info.methods.items():
        for node in ast.walk(method):
            if not isinstance(node, ast.With):
                continue
            for item in node.items:
                expr = item.context_expr
                if is_self_attr(expr) and expr.attr in info.lock_attrs:
                    regions.append(
                        _LockRegion(
                            node=f"{info.cls.name}.{expr.attr}",
                            cls=info.cls,
                            method=method,
                            body=node.body,
                            lock_expr=f"self.{expr.attr}",
                        )
                    )
        held = info.held_methods.get(name)
        if held is not None:
            regions.append(
                _LockRegion(
                    node=held,
                    cls=info.cls,
                    method=method,
                    body=method.body,
                    lock_expr=f"self.{held.rsplit('.', 1)[-1]}",
                )
            )
    return regions


def _receiver_of(call: ast.Call) -> str | None:
    if isinstance(call.func, ast.Attribute):
        return dotted_name(call.func.value)
    return None


def _by_method(infos: list[_ClassInfo]) -> dict[str, list[tuple[_ClassInfo, set[str]]]]:
    index: dict[str, list[tuple[_ClassInfo, set[str]]]] = {}
    for info in infos:
        for name, locks in info.method_locks.items():
            if locks:
                index.setdefault(name, []).append((info, locks))
    return index


def collect_edges(modules: list[SourceModule]) -> list[_Edge]:
    """The static lock-acquisition graph, for reprosan cross-checks."""
    infos = _collect_classes(modules)
    by_method = _by_method(infos)
    edges: list[_Edge] = []
    for info in infos:
        for region in _lock_regions(info):
            _scan_region(region, info, by_method, edges)
    return edges


def check(modules: list[SourceModule]) -> list[Finding]:
    infos = _collect_classes(modules)
    by_method = _by_method(infos)
    findings: list[Finding] = []
    edges: list[_Edge] = []
    for info in infos:
        for region in _lock_regions(info):
            findings.extend(
                _scan_region(region, info, by_method, edges)
            )
    findings.extend(_find_cycles(edges))
    for module in modules:
        findings.extend(_check_gates(module, infos))
    # A method that is both a lock-held helper and takes the lock itself
    # yields overlapping regions; collapse their duplicate findings.
    unique: dict[tuple, Finding] = {}
    for finding in findings:
        unique.setdefault((finding.code, finding.path, finding.symbol, finding.line), finding)
    return list(unique.values())


def _scan_region(
    region: _LockRegion,
    info: _ClassInfo,
    by_method: dict[str, list[tuple[_ClassInfo, set[str]]]],
    edges: list[_Edge],
) -> list[Finding]:
    findings: list[Finding] = []
    lock_exprs = {f"self.{attr}" for attr in info.lock_attrs}
    seen: set[tuple[str, str]] = set()
    for stmt in region.body:
        for node in ast.walk(stmt):
            # Nested `with self.<other_lock>:` — a direct ordering edge.
            if isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if is_self_attr(expr) and expr.attr in info.lock_attrs:
                        dst = f"{info.cls.name}.{expr.attr}"
                        if dst != region.node:
                            edges.append(
                                _Edge(
                                    src=region.node,
                                    dst=dst,
                                    module=info.module,
                                    line=node.lineno,
                                    via=f"with self.{expr.attr}",
                                )
                            )
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            name = func.attr if isinstance(func, ast.Attribute) else None
            receiver = _receiver_of(node)
            # Ordering edges through calls that acquire other locks.
            if name is not None:
                if receiver == "self" and name in info.method_locks:
                    targets = info.method_locks[name]
                else:
                    targets = set()
                    for other, locks in by_method.get(name, []):
                        if receiver == "self" and other is info:
                            continue  # handled above, without name aliasing
                        targets = targets | locks
                for dst in targets:
                    if dst != region.node:
                        edges.append(
                            _Edge(
                                src=region.node,
                                dst=dst,
                                module=info.module,
                                line=node.lineno,
                                via=f"{receiver or ''}.{name}".lstrip("."),
                            )
                        )
            # Blocking calls under the lock.
            if name in _BLOCKING_NAMES:
                if receiver == region.lock_expr:
                    continue  # the condition-wait idiom releases the lock
                if receiver in lock_exprs:
                    continue  # re-acquiring our own (reentrant) lock
                callname = f"{receiver}.{name}" if receiver else (
                    dotted_name(func) or name
                )
                key = (region.method.name, callname)
                if key in seen:
                    continue
                seen.add(key)
                findings.append(
                    Finding(
                        path=info.module.relpath,
                        line=node.lineno,
                        code="RL702",
                        checker=CHECKER,
                        symbol=f"{info.cls.name}.{region.method.name}:{callname}",
                        message=(
                            f"{info.cls.name}.{region.method.name} calls "
                            f"blocking {callname}() while holding "
                            f"{region.node} — every other user of the lock "
                            f"queues behind it"
                        ),
                    )
                )
    return findings


def _find_cycles(edges: list[_Edge]) -> list[Finding]:
    graph: dict[str, dict[str, _Edge]] = {}
    for edge in edges:
        graph.setdefault(edge.src, {}).setdefault(edge.dst, edge)
    cycles: dict[str, _Edge] = {}

    def dfs(node: str, stack: list[str], on_stack: set[str]) -> None:
        for nxt, edge in graph.get(node, {}).items():
            if nxt in on_stack:
                cycle = stack[stack.index(nxt) :] + [nxt]
                # Normalize: rotate so the smallest node leads.
                ring = cycle[:-1]
                pivot = ring.index(min(ring))
                normal = ring[pivot:] + ring[:pivot] + [min(ring)]
                cycles.setdefault(" -> ".join(normal), edge)
            elif nxt not in visited:
                visited.add(nxt)
                stack.append(nxt)
                on_stack.add(nxt)
                dfs(nxt, stack, on_stack)
                on_stack.discard(nxt)
                stack.pop()

    visited: set[str] = set()
    for start in sorted(graph):
        if start in visited:
            visited.add(start)
            continue
        visited.add(start)
        dfs(start, [start], {start})
    findings = []
    for symbol, edge in sorted(cycles.items()):
        findings.append(
            Finding(
                path=edge.module.relpath,
                line=edge.line,
                code="RL701",
                checker=CHECKER,
                symbol=symbol,
                message=(
                    f"lock-order cycle {symbol} (closing edge via "
                    f"{edge.via} at {edge.module.relpath}:{edge.line}) — "
                    f"two paths take these locks in opposite orders"
                ),
            )
        )
    return findings


# ----------------------------------------------------------------------
# RL703 — check-then-act on status gates
# ----------------------------------------------------------------------


def _gate_reads(test: ast.expr, module: SourceModule) -> list[tuple[str, str]]:
    """(receiver, gate) pairs read as plain attributes in an if-test.

    Method *calls* like ``proc.is_alive()`` are not gates: the property
    read is the snapshot the TOCTOU pattern caches, while a call result
    is understood to be instantaneous either way.
    """
    reads = []
    for node in ast.walk(test):
        if not isinstance(node, ast.Attribute) or node.attr not in _GATE_ATTRS:
            continue
        parent = module.parent(node)
        if isinstance(parent, ast.Call) and parent.func is node:
            continue
        receiver = dotted_name(node.value)
        if receiver is None:
            continue
        reads.append((receiver, node.attr))
    return reads


def _acts_on(receiver: str, stmts: list[ast.stmt]) -> ast.Call | None:
    for stmt in stmts:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and dotted_name(node.func.value) == receiver
            ):
                return node
    return None


def _act_handles_staleness(call: ast.Call, module: SourceModule) -> bool:
    """Whether the dependent call sits in a try that catches the
    StateError the under-lock re-check raises."""
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        if not isinstance(ancestor, ast.Try):
            continue
        for handler in ancestor.handlers:
            if handler.type is None:
                return True
            names = [
                dotted_name(t) or ""
                for t in (
                    handler.type.elts
                    if isinstance(handler.type, ast.Tuple)
                    else [handler.type]
                )
            ]
            if any(
                n.rsplit(".", 1)[-1] in ("StateError", "Exception", "BaseException")
                for n in names
            ):
                return True
    return False


def _check_gates(module: SourceModule, infos: list[_ClassInfo]) -> list[Finding]:
    info_by_cls = {info.cls: info for info in infos}
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.If):
            continue
        reads = _gate_reads(node.test, module)
        if not reads:
            continue
        # Suppress gates already inside the owning class's lock (or in a
        # lock-held helper): the check and the act share the section.
        cls = next(
            (a for a in module.ancestors(node) if isinstance(a, ast.ClassDef)),
            None,
        )
        if cls is not None and cls in info_by_cls:
            info = info_by_cls[cls]
            if _held_with_lock(node, info) is not None:
                continue
            method = _method_of(info, node)
            if method is not None and method.name in info.held_methods:
                continue
        fn = module.enclosing_function(node)
        fn_name = getattr(fn, "name", "<module>")
        if cls is not None:
            fn_name = f"{cls.name}.{fn_name}"
        # The act: a call on the same receiver in the branch bodies or in
        # the rest of the enclosing block (the early-continue shape).
        parent = module.parent(node)
        following: list[ast.stmt] = []
        for attr in ("body", "orelse", "finalbody"):
            block = getattr(parent, attr, None)
            if isinstance(block, list) and node in block:
                following = block[block.index(node) + 1 :]
                break
        for receiver, gate in reads:
            act = (
                _acts_on(receiver, node.body)
                or _acts_on(receiver, node.orelse)
                or _acts_on(receiver, following)
            )
            if act is None:
                continue
            if _act_handles_staleness(act, module):
                continue
            findings.append(
                Finding(
                    path=module.relpath,
                    line=node.lineno,
                    code="RL703",
                    checker=CHECKER,
                    symbol=f"{fn_name}:{receiver}.{gate}",
                    message=(
                        f"{fn_name} branches on {receiver}.{gate} and then "
                        f"calls into {receiver} outside the owning lock — "
                        f"the status can flip between check and act; hold "
                        f"the lock or catch the StateError re-check"
                    ),
                )
            )
    return findings
