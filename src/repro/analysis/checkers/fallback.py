"""RL5xx — recovery-ladder fallback routing checker.

The whole point of the tiered restart (shm -> disk snapshot -> legacy
replay) is that a failed rung *routes* to the next one; an ``except``
that quietly swallows the error turns a recoverable restart into a
silently empty leaf.  This checker looks at every broad exception
handler in the recovery tiers and demands that it visibly does one of:

- re-raise (bare ``raise`` or a typed ``repro.errors`` exception);
- invoke the next rung (a call whose name mentions ``recover``,
  ``restore``, ``fallback``, ``replay``, or ``wipe``);
- record the reroute (a store to a ``fell_back*``/``fallback*``
  attribute or variable);
- bind the exception (``except X as exc``) *and* use it — logging or
  wrapping the error is routing it to a human.

Codes:

- ``RL501`` broad handler (``except Exception``/bare ``except``) whose
  body neither re-raises, reroutes, records, nor uses the exception.
- ``RL502`` handler whose body is literally ``pass`` — even for narrow
  exception types; intentional ones belong in the baseline with a
  justification.
- ``RL503`` a ``raise`` of a non-``repro.errors`` builtin exception
  (``RuntimeError``/``ValueError``...) inside a recovery function —
  callers dispatch the ladder on typed errors, so untyped raises skip
  every rung below.

Scope defaults to the recovery tiers (``core/`` and ``disk/``) — lock
utilities legitimately swallow ``OSError`` during probing; the override
parameter exists for fixtures.
"""

from __future__ import annotations

import ast
from typing import Iterable

from repro.analysis.findings import Finding
from repro.analysis.loader import SourceModule, call_name

CHECKER = "fallback-routing"

DEFAULT_SCOPE_PREFIXES = ("src/repro/core/", "src/repro/disk/")

_ROUTING_CALL_HINTS = ("recover", "restore", "fallback", "replay", "wipe", "discard")
_ROUTING_ATTR_HINTS = ("fell_back", "fallback", "degraded")

#: builtin exception names whose raising inside a recovery function
#: bypasses the typed-error ladder
_UNTYPED_EXCEPTIONS = {
    "RuntimeError",
    "ValueError",
    "Exception",
    "OSError",
    "IOError",
    "KeyError",
    "TypeError",
}

#: repro.errors types (kept in sync loosely — anything imported from
#: repro.errors or ending in Error that is not a known builtin counts)
_RECOVERY_FN_HINTS = ("recover", "restore", "fallback", "replay")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = _handler_type_names(handler)
    return bool(names & {"Exception", "BaseException"})


def _handler_type_names(handler: ast.ExceptHandler) -> set[str]:
    node = handler.type
    if node is None:
        return set()
    nodes = node.elts if isinstance(node, ast.Tuple) else [node]
    names = set()
    for n in nodes:
        if isinstance(n, ast.Attribute):
            names.add(n.attr)
        elif isinstance(n, ast.Name):
            names.add(n.id)
    return names


def _body_is_pass(handler: ast.ExceptHandler) -> bool:
    return all(isinstance(s, ast.Pass) for s in handler.body)


def _handler_routes(handler: ast.ExceptHandler) -> bool:
    exc_name = handler.name  # "exc" in `except X as exc`
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            name = (call_name(node) or "").lower()
            if any(hint in name for hint in _ROUTING_CALL_HINTS):
                return True
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                label = (
                    target.attr
                    if isinstance(target, ast.Attribute)
                    else target.id if isinstance(target, ast.Name) else ""
                )
                if any(hint in label.lower() for hint in _ROUTING_ATTR_HINTS):
                    return True
        if (
            exc_name
            and isinstance(node, ast.Name)
            and node.id == exc_name
            and isinstance(node.ctx, ast.Load)
        ):
            # the bound exception is consumed (logged, wrapped, stored)
            return True
    return False


def _enclosing_fn_name(node: ast.AST, module: SourceModule) -> str:
    fn = module.enclosing_function(node)
    return getattr(fn, "name", "<module>") if fn is not None else "<module>"


def _in_recovery_function(node: ast.AST, module: SourceModule) -> bool:
    name = _enclosing_fn_name(node, module).lower()
    return any(hint in name for hint in _RECOVERY_FN_HINTS)


def check(
    modules: list[SourceModule],
    scope_prefixes: Iterable[str] = DEFAULT_SCOPE_PREFIXES,
) -> list[Finding]:
    prefixes = tuple(scope_prefixes)
    findings: list[Finding] = []
    for module in modules:
        if prefixes and not module.relpath.startswith(prefixes):
            continue
        findings.extend(_check_module(module))
    return findings


def _check_module(module: SourceModule) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ExceptHandler):
            findings.extend(_check_handler(module, node))
        if isinstance(node, ast.Raise):
            finding = _check_raise(module, node)
            if finding is not None:
                findings.append(finding)
    return findings


def _check_handler(module: SourceModule, handler: ast.ExceptHandler) -> list[Finding]:
    fn_name = _enclosing_fn_name(handler, module)
    types = "|".join(sorted(_handler_type_names(handler))) or "bare"
    symbol = f"{fn_name}:except:{types}"
    if _body_is_pass(handler):
        return [
            Finding(
                path=module.relpath,
                line=handler.lineno,
                code="RL502",
                checker=CHECKER,
                symbol=symbol,
                message=(
                    f"{fn_name} has a pass-only `except {types}` — the error "
                    f"vanishes without a log, reroute, or re-raise"
                ),
            )
        ]
    if _is_broad(handler) and not _handler_routes(handler):
        return [
            Finding(
                path=module.relpath,
                line=handler.lineno,
                code="RL501",
                checker=CHECKER,
                symbol=symbol,
                message=(
                    f"{fn_name} swallows a broad exception without re-raising, "
                    f"invoking a fallback rung, or recording the reroute"
                ),
            )
        ]
    return []


def _check_raise(module: SourceModule, node: ast.Raise) -> Finding | None:
    if not _in_recovery_function(node, module):
        return None
    exc = node.exc
    if exc is None:  # bare re-raise is always fine
        return None
    name = None
    if isinstance(exc, ast.Call):
        name = call_name(exc)
    elif isinstance(exc, ast.Name):
        name = exc.id
    if name is None:
        return None
    terminal = name.rsplit(".", 1)[-1]
    if terminal not in _UNTYPED_EXCEPTIONS:
        return None
    fn_name = _enclosing_fn_name(node, module)
    return Finding(
        path=module.relpath,
        line=node.lineno,
        code="RL503",
        checker=CHECKER,
        symbol=f"{fn_name}:raise:{terminal}",
        message=(
            f"{fn_name} raises builtin {terminal} inside a recovery tier — "
            f"callers dispatch fallback on typed repro.errors exceptions, so "
            f"this skips every rung below"
        ),
    )
