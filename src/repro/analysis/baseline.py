"""Accepted-findings baseline for reprolint.

A baseline lets the linter be adopted on a tree with intentional
violations: each accepted finding is recorded with a one-line
justification, new findings still fail the build, and entries that stop
matching anything are reported as stale so the file cannot rot.

File format (checked in at ``src/repro/analysis/baseline.json``)::

    {
      "version": 1,
      "entries": [
        {"code": "RL302", "path": "src/repro/server/leaf.py",
         "symbol": "LeafServer.is_alive:status",
         "justification": "benign monitoring read; ..."}
      ]
    }

Matching is by ``(code, path, symbol)`` — never line numbers — so the
baseline survives unrelated edits.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1

#: The placeholder ``--update-baseline`` writes for entries nobody has
#: justified yet.  The runner treats entries still carrying it as a
#: failure (``--allow-todo`` downgrades that to a warning) so a freshly
#: generated baseline cannot slip through CI unreviewed.
TODO_JUSTIFICATION = "TODO: justify or fix"


def is_todo(justification: str) -> bool:
    """Whether a justification is still the unreviewed placeholder."""
    return justification.strip().upper().startswith("TODO")


@dataclass(frozen=True)
class BaselineEntry:
    code: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> tuple[str, str, str]:
        return (self.code, self.path, self.symbol)

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "path": self.path,
            "symbol": self.symbol,
            "justification": self.justification,
        }


@dataclass
class BaselineMatch:
    """The result of applying a baseline to a set of findings."""

    new: list[Finding] = field(default_factory=list)
    accepted: list[tuple[Finding, BaselineEntry]] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)


class Baseline:
    def __init__(self, entries: list[BaselineEntry] | None = None) -> None:
        self.entries = list(entries or [])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        raw = json.loads(Path(path).read_text())
        if raw.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline version {raw.get('version')!r} is not readable "
                f"(this build reads {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry(
                code=e["code"],
                path=e["path"],
                symbol=e["symbol"],
                justification=e.get("justification", ""),
            )
            for e in raw.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: str | Path) -> None:
        ordered = sorted(self.entries, key=lambda e: e.key)
        payload = {
            "version": BASELINE_VERSION,
            "entries": [e.to_dict() for e in ordered],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def apply(self, findings: list[Finding]) -> BaselineMatch:
        """Split findings into new vs accepted; report unmatched entries.

        A baseline entry may match several findings (two unguarded reads
        of different lines can share a symbol only if a checker emits
        them that way); every match consumes the entry's staleness, not
        its acceptance.
        """
        by_key = {entry.key: entry for entry in self.entries}
        matched: set[tuple[str, str, str]] = set()
        result = BaselineMatch()
        for finding in findings:
            entry = by_key.get(finding.key)
            if entry is None:
                result.new.append(finding)
            else:
                matched.add(entry.key)
                result.accepted.append((finding, entry))
        result.stale = [e for e in self.entries if e.key not in matched]
        return result

    @classmethod
    def from_findings(
        cls,
        findings: list[Finding],
        justifications: dict[tuple[str, str, str], str] | None = None,
        previous: "Baseline | None" = None,
    ) -> "Baseline":
        """Build a baseline accepting ``findings``.

        Justifications are taken (in priority order) from the explicit
        mapping, from a previous baseline's matching entry, or default to
        a TODO marker that reviewers are expected to replace.
        """
        justifications = justifications or {}
        prior = {e.key: e.justification for e in (previous.entries if previous else [])}
        entries = []
        seen: set[tuple[str, str, str]] = set()
        for finding in findings:
            if finding.key in seen:
                continue
            seen.add(finding.key)
            note = justifications.get(
                finding.key, prior.get(finding.key, TODO_JUSTIFICATION)
            )
            entries.append(
                BaselineEntry(
                    code=finding.code,
                    path=finding.path,
                    symbol=finding.symbol,
                    justification=note,
                )
            )
        return cls(entries)
