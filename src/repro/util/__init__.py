"""Low-level helpers shared by every other subpackage.

Nothing in here knows about Scuba, tables, or restarts: these are plain
binary-encoding, checksum, bit-packing, clock, and accounting utilities.
"""

from repro.util.binary import (
    BufferReader,
    BufferWriter,
    decode_varint,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)
from repro.util.bits import pack_uints, required_bit_width, unpack_uints
from repro.util.checksum import crc32_of, verify_crc32
from repro.util.clock import Clock, ManualClock, SystemClock
from repro.util.memtrack import MemoryTracker

__all__ = [
    "BufferReader",
    "BufferWriter",
    "Clock",
    "ManualClock",
    "MemoryTracker",
    "SystemClock",
    "crc32_of",
    "decode_varint",
    "encode_varint",
    "pack_uints",
    "required_bit_width",
    "unpack_uints",
    "verify_crc32",
    "zigzag_decode",
    "zigzag_encode",
]
