"""Logical memory accounting.

The paper's Section 4.4 makes a precise claim: copying one row block
column at a time (allocate in shm → copy → free from heap) keeps the
total footprint of a leaf *nearly unchanged* during shutdown and restart,
whereas a copy-everything-then-free strategy would briefly need twice the
data size.  Python's allocator hides physical memory, so the restart
engine reports every logical allocate/free to a :class:`MemoryTracker`
and experiment E8 asserts the peak bound on those numbers.

A machine restarting several leaves in parallel shares one tracker across
all of their engines, so every mutation is guarded by a lock — the peak
observed then is the *machine-wide* footprint, the quantity experiment
E15 bounds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field


@dataclass
class MemoryTracker:
    """Tracks logically-allocated bytes per region and the global peak.

    Regions are free-form labels — the restart engine uses ``"heap"`` and
    ``"shm"`` — and the invariant of interest is on the *sum* across
    regions, since a real machine has one pool of physical memory.

    Thread-safe: concurrent engines (one per leaf on a machine) may share
    a single tracker, and the recorded peak is then the true high-water
    mark across their interleaved copies.
    """

    regions: dict[str, int] = field(default_factory=dict)
    peak_total: int = 0
    _history: list[tuple[float, int]] = field(default_factory=list)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def allocate(self, region: str, nbytes: int, at: float | None = None) -> None:
        """Record ``nbytes`` newly allocated in ``region``."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate a negative size ({nbytes})")
        with self._lock:
            self.regions[region] = self.regions.get(region, 0) + nbytes
            self._after_change(at)

    def free(self, region: str, nbytes: int, at: float | None = None) -> None:
        """Record ``nbytes`` freed from ``region``."""
        if nbytes < 0:
            raise ValueError(f"cannot free a negative size ({nbytes})")
        with self._lock:
            current = self.regions.get(region, 0)
            if nbytes > current:
                raise ValueError(
                    f"freeing {nbytes} bytes from region '{region}' which only "
                    f"holds {current}"
                )
            self.regions[region] = current - nbytes
            self._after_change(at)

    def _after_change(self, at: float | None) -> None:
        total = self.total
        if total > self.peak_total:
            self.peak_total = total
        if at is not None:
            self._history.append((at, total))

    @property
    def total(self) -> int:
        """Bytes currently allocated across all regions."""
        with self._lock:
            return sum(self.regions.values())

    def in_region(self, region: str) -> int:
        with self._lock:
            return self.regions.get(region, 0)

    @property
    def history(self) -> list[tuple[float, int]]:
        """(timestamp, total bytes) samples, when timestamps were supplied."""
        with self._lock:
            return list(self._history)

    def reset_peak(self) -> None:
        """Restart peak tracking from the current total."""
        with self._lock:
            self.peak_total = self.total
