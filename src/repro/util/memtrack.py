"""Logical memory accounting.

The paper's Section 4.4 makes a precise claim: copying one row block
column at a time (allocate in shm → copy → free from heap) keeps the
total footprint of a leaf *nearly unchanged* during shutdown and restart,
whereas a copy-everything-then-free strategy would briefly need twice the
data size.  Python's allocator hides physical memory, so the restart
engine reports every logical allocate/free to a :class:`MemoryTracker`
and experiment E8 asserts the peak bound on those numbers.

A machine restarting several leaves in parallel shares one tracker across
all of their engines, so every mutation is guarded by a lock — the peak
observed then is the *machine-wide* footprint, the quantity experiment
E15 bounds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable

#: Audit seam for the reprosan runtime sanitizer: when set, every
#: successful allocate/free reports (event, region, nbytes, tracker_id)
#: so a test harness can balance charges against frees per tracker.
#: None in production — the accounting itself never depends on it.
_audit_hook: "Callable[[str, str, int, int], None] | None" = None


def set_audit_hook(
    hook: "Callable[[str, str, int, int], None] | None",
) -> "Callable[[str, str, int, int], None] | None":
    """Install (or clear, with ``None``) the audit hook; returns the
    previous hook so callers can restore it."""
    global _audit_hook
    previous = _audit_hook
    _audit_hook = hook
    return previous


@dataclass
class MemoryTracker:
    """Tracks logically-allocated bytes per region and the global peak.

    Regions are free-form labels — the restart engine uses ``"heap"`` and
    ``"shm"`` — and the invariant of interest is on the *sum* across
    regions, since a real machine has one pool of physical memory.

    Thread-safe: concurrent engines (one per leaf on a machine) may share
    a single tracker, and the recorded peak is then the true high-water
    mark across their interleaved copies.
    """

    regions: dict[str, int] = field(default_factory=dict)
    peak_total: int = 0
    _history: list[tuple[float, int]] = field(default_factory=list)
    # The lambda defers the `threading.RLock` lookup to instance
    # creation, so a sanitizer that patches `threading` after this
    # module is imported still instruments the tracker's lock.
    _lock: threading.RLock = field(
        default_factory=lambda: threading.RLock(), repr=False, compare=False
    )

    def allocate(self, region: str, nbytes: int, at: float | None = None) -> None:
        """Record ``nbytes`` newly allocated in ``region``."""
        if nbytes < 0:
            raise ValueError(f"cannot allocate a negative size ({nbytes})")
        with self._lock:
            self.regions[region] = self.regions.get(region, 0) + nbytes
            self._after_change(at)
        if _audit_hook is not None:
            _audit_hook("allocate", region, nbytes, id(self))

    def free(self, region: str, nbytes: int, at: float | None = None) -> None:
        """Record ``nbytes`` freed from ``region``."""
        if nbytes < 0:
            raise ValueError(f"cannot free a negative size ({nbytes})")
        with self._lock:
            current = self.regions.get(region, 0)
            if nbytes > current:
                raise ValueError(
                    f"freeing {nbytes} bytes from region '{region}' which only "
                    f"holds {current}"
                )
            self.regions[region] = current - nbytes
            self._after_change(at)
        if _audit_hook is not None:
            _audit_hook("free", region, nbytes, id(self))

    def _after_change(self, at: float | None) -> None:
        total = self.total
        if total > self.peak_total:
            self.peak_total = total
        if at is not None:
            self._history.append((at, total))

    @property
    def total(self) -> int:
        """Bytes currently allocated across all regions."""
        with self._lock:
            return sum(self.regions.values())

    def in_region(self, region: str) -> int:
        with self._lock:
            return self.regions.get(region, 0)

    @property
    def history(self) -> list[tuple[float, int]]:
        """(timestamp, total bytes) samples, when timestamps were supplied."""
        with self._lock:
            return list(self._history)

    def reset_peak(self) -> None:
        """Restart peak tracking from the current total."""
        with self._lock:
            self.peak_total = self.total
