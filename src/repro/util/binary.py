"""Binary encoding primitives: little-endian struct helpers, varints,
zigzag transforms, and cursor-style buffer reader/writer classes.

All multi-byte integers in the repro on-disk / in-shared-memory formats are
little-endian, matching the x86 servers the paper ran on.  Every pointer
stored *inside* a serialized structure is an offset from the structure's
base address (paper, Section 2.1), which is what makes single-``memcpy``
relocation possible; the reader/writer here only ever deal in offsets.
"""

from __future__ import annotations

import struct

from repro.errors import CorruptionError

_U8 = struct.Struct("<B")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")
_U64 = struct.Struct("<Q")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")


def encode_varint(value: int) -> bytes:
    """Encode a non-negative integer as a LEB128 varint."""
    if value < 0:
        raise ValueError(f"varint requires a non-negative value, got {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def decode_varint(buf: bytes | memoryview, offset: int = 0) -> tuple[int, int]:
    """Decode a LEB128 varint.

    Returns ``(value, next_offset)``.  Raises :class:`CorruptionError` if
    the buffer ends mid-varint or the varint is pathologically long.
    """
    value = 0
    shift = 0
    pos = offset
    while True:
        if pos >= len(buf):
            raise CorruptionError("varint truncated at end of buffer")
        if shift > 63:
            raise CorruptionError("varint longer than 64 bits")
        byte = buf[pos]
        pos += 1
        value |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return value, pos
        shift += 7


def zigzag_encode(value: int) -> int:
    """Map a signed integer onto an unsigned one with small magnitudes
    staying small (0→0, -1→1, 1→2, -2→3 ...)."""
    return (value << 1) ^ (value >> 63) if value >= 0 else ((-value) << 1) - 1


def zigzag_decode(value: int) -> int:
    """Inverse of :func:`zigzag_encode`."""
    return (value >> 1) ^ -(value & 1)


class BufferWriter:
    """An append-only binary writer with offset patching.

    ``reserve_*`` methods return the offset of a placeholder that can be
    filled in later with ``patch_*`` — used for headers whose section
    offsets are only known after the sections are written.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def __len__(self) -> int:
        return len(self._buf)

    @property
    def offset(self) -> int:
        """Current write position (== number of bytes written so far)."""
        return len(self._buf)

    def write_bytes(self, data: bytes | bytearray | memoryview) -> None:
        self._buf += data

    def write_u8(self, value: int) -> None:
        self._buf += _U8.pack(value)

    def write_u16(self, value: int) -> None:
        self._buf += _U16.pack(value)

    def write_u32(self, value: int) -> None:
        self._buf += _U32.pack(value)

    def write_u64(self, value: int) -> None:
        self._buf += _U64.pack(value)

    def write_i64(self, value: int) -> None:
        self._buf += _I64.pack(value)

    def write_f64(self, value: float) -> None:
        self._buf += _F64.pack(value)

    def write_varint(self, value: int) -> None:
        self._buf += encode_varint(value)

    def write_len_prefixed(self, data: bytes) -> None:
        """Write a varint length followed by the raw bytes."""
        self.write_varint(len(data))
        self.write_bytes(data)

    def write_str(self, text: str) -> None:
        """Write a UTF-8 string with a varint byte-length prefix."""
        self.write_len_prefixed(text.encode("utf-8"))

    def reserve_u32(self) -> int:
        offset = self.offset
        self._buf += b"\x00\x00\x00\x00"
        return offset

    def reserve_u64(self) -> int:
        offset = self.offset
        self._buf += b"\x00" * 8
        return offset

    def patch_u32(self, offset: int, value: int) -> None:
        _U32.pack_into(self._buf, offset, value)

    def patch_u64(self, offset: int, value: int) -> None:
        _U64.pack_into(self._buf, offset, value)

    def getvalue(self) -> bytes:
        return bytes(self._buf)


class BufferReader:
    """A cursor over a read-only buffer with bounds-checked accessors.

    Every read past the end raises :class:`CorruptionError` rather than
    ``struct.error`` so that callers decoding untrusted bytes (a disk file,
    a shared memory segment left by an older process) get a uniform error.
    """

    def __init__(self, buf: bytes | bytearray | memoryview, offset: int = 0) -> None:
        self._buf = memoryview(buf)
        self._pos = offset

    @property
    def offset(self) -> int:
        return self._pos

    @property
    def remaining(self) -> int:
        return len(self._buf) - self._pos

    def seek(self, offset: int) -> None:
        if not 0 <= offset <= len(self._buf):
            raise CorruptionError(
                f"seek to {offset} outside buffer of {len(self._buf)} bytes"
            )
        self._pos = offset

    def _take(self, count: int) -> memoryview:
        if count < 0 or self._pos + count > len(self._buf):
            raise CorruptionError(
                f"read of {count} bytes at offset {self._pos} overruns "
                f"buffer of {len(self._buf)} bytes"
            )
        view = self._buf[self._pos : self._pos + count]
        self._pos += count
        return view

    def read_bytes(self, count: int) -> bytes:
        return bytes(self._take(count))

    def read_view(self, count: int) -> memoryview:
        """Zero-copy read; the view aliases the underlying buffer."""
        return self._take(count)

    def read_u8(self) -> int:
        return _U8.unpack(self._take(1))[0]

    def read_u16(self) -> int:
        return _U16.unpack(self._take(2))[0]

    def read_u32(self) -> int:
        return _U32.unpack(self._take(4))[0]

    def read_u64(self) -> int:
        return _U64.unpack(self._take(8))[0]

    def read_i64(self) -> int:
        return _I64.unpack(self._take(8))[0]

    def read_f64(self) -> float:
        return _F64.unpack(self._take(8))[0]

    def read_varint(self) -> int:
        value, self._pos = decode_varint(self._buf, self._pos)
        return value

    def read_len_prefixed(self) -> bytes:
        return self.read_bytes(self.read_varint())

    def read_str(self) -> str:
        raw = self.read_len_prefixed()
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise CorruptionError(f"invalid UTF-8 in string field: {exc}") from exc
