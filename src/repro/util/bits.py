"""Bit packing for non-negative integers.

Scuba's column compression bit-packs integer payloads (dictionary ids,
zigzagged deltas) down to the minimum width that fits the largest value in
the column (paper, Section 2.1).  The packing here is vectorized with
numpy: values are spread into a ``(n, width)`` bit matrix and packed with
``numpy.packbits`` so that encoding a million-value column stays in the
millisecond range.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CorruptionError


def required_bit_width(max_value: int) -> int:
    """Smallest width (in bits) able to represent ``max_value``.

    Zero needs a width of 1 so that a column of all-zeros still stores one
    bit per value and round-trips its length.
    """
    if max_value < 0:
        raise ValueError(f"bit packing requires non-negative values, got {max_value}")
    return max(1, int(max_value).bit_length())


def pack_uints(values: np.ndarray, width: int) -> bytes:
    """Pack ``values`` (non-negative, < 2**width) into a dense bitstream.

    The stream is big-endian within each value (most significant bit
    first), padded with zero bits to a whole byte at the end.
    """
    if width < 1 or width > 64:
        raise ValueError(f"bit width must be in [1, 64], got {width}")
    values = np.ascontiguousarray(values, dtype=np.uint64)
    if values.size == 0:
        return b""
    if width <= 63 and bool((values >> np.uint64(width)).any()):
        raise ValueError(f"a value does not fit in {width} bits")
    # Build an (n, width) matrix of bits, MSB first, then pack row-major.
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    bit_matrix = ((values[:, None] >> shifts[None, :]) & np.uint64(1)).astype(np.uint8)
    return np.packbits(bit_matrix.reshape(-1)).tobytes()


def unpack_uints(data: bytes | memoryview, width: int, count: int) -> np.ndarray:
    """Inverse of :func:`pack_uints`; returns a ``uint64`` array of
    ``count`` values."""
    if width < 1 or width > 64:
        raise ValueError(f"bit width must be in [1, 64], got {width}")
    if count == 0:
        return np.empty(0, dtype=np.uint64)
    needed_bits = width * count
    needed_bytes = (needed_bits + 7) // 8
    if len(data) < needed_bytes:
        raise CorruptionError(
            f"bit-packed payload too short: need {needed_bytes} bytes for "
            f"{count} values of {width} bits, have {len(data)}"
        )
    bits = np.unpackbits(
        np.frombuffer(data, dtype=np.uint8, count=needed_bytes), count=needed_bits
    )
    bit_matrix = bits.reshape(count, width).astype(np.uint64)
    shifts = np.arange(width - 1, -1, -1, dtype=np.uint64)
    return (bit_matrix << shifts[None, :]).sum(axis=1, dtype=np.uint64)
