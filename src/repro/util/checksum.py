"""Checksums used in row block column footers and disk records.

The paper's row block column footer stores a checksum (Figure 3) so that a
relocated or persisted buffer can prove it survived the trip intact.  We
use CRC-32 (via the stdlib's zlib, the same polynomial as the classic
Ethernet/PNG CRC) and expose small helpers so every call site validates
identically.
"""

from __future__ import annotations

import hashlib
import json
import zlib

from repro.errors import ChecksumMismatchError


def crc32_of(*chunks: bytes | bytearray | memoryview) -> int:
    """CRC-32 over the concatenation of ``chunks`` (without copying)."""
    crc = 0
    for chunk in chunks:
        crc = zlib.crc32(chunk, crc)
    return crc & 0xFFFFFFFF


def verify_crc32(expected: int, *chunks: bytes | bytearray | memoryview) -> None:
    """Raise :class:`ChecksumMismatchError` unless the CRC of ``chunks``
    equals ``expected``."""
    actual = crc32_of(*chunks)
    if actual != expected:
        raise ChecksumMismatchError(
            f"checksum mismatch: stored 0x{expected:08x}, computed 0x{actual:08x}"
        )


def rows_digest(snapshot: dict[str, list[dict]]) -> str:
    """A stable content digest of a leaf's full row snapshot.

    Used to prove restart equivalence *across process boundaries*: an
    old worker reports its digest before shutting down into shared
    memory, the re-exec'd/respawned worker reports its own after
    restoring, and the controller compares strings instead of shipping
    every row over the wire.  Canonical JSON (sorted keys, no float
    ambiguity beyond repr) keeps the digest independent of dict order.
    """
    canonical = json.dumps(snapshot, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()
