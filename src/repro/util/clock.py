"""Clock abstraction.

Leaf servers stamp row blocks with creation times and expire data by age;
the cluster simulator advances a virtual clock by hours.  Both go through
the same tiny :class:`Clock` interface so that tests and the simulator can
substitute a deterministic time source.
"""

from __future__ import annotations

import time
from typing import Protocol, runtime_checkable


@runtime_checkable
class Clock(Protocol):
    """Anything with a ``now() -> float`` returning seconds since epoch."""

    def now(self) -> float:  # pragma: no cover - protocol stub
        ...


class SystemClock:
    """The real wall clock."""

    def now(self) -> float:
        return time.time()


class ManualClock:
    """A clock that only moves when told to — for tests and simulation."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move time forward; rewinding raises ``ValueError``."""
        if seconds < 0:
            raise ValueError(f"cannot advance the clock by {seconds} seconds")
        self._now += seconds
        return self._now

    def set(self, timestamp: float) -> None:
        if timestamp < self._now:
            raise ValueError(
                f"cannot move the clock backwards ({timestamp} < {self._now})"
            )
        self._now = float(timestamp)
