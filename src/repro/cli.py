"""Command line interface: ``python -m repro <command>``.

Commands:

- ``sim-rollover``   — full-scale rollover timings and the Figure-8 view
- ``availability``   — weekly availability for a deploy cadence
- ``inspect-shm``    — examine a leaf's shared memory state (read-only)
- ``bench-restart``  — a real scaled disk-vs-shm restart on this machine
- ``bench-query``    — vectorized vs row-at-a-time query execution (E13)
- ``leaf-worker``    — run one leaf server process (the deployment unit)
- ``lint``           — reprolint, the AST-based restart-invariant verifier
"""

from __future__ import annotations

import argparse
import sys
import time
import uuid
from pathlib import Path
from dataclasses import replace

from repro.cluster.dashboard import render_dashboard
from repro.sim.availability import weekly_availability
from repro.sim.hardware import HOUR, MINUTE, paper_profile
from repro.sim.rollover import simulate_rollover


def _fmt_duration(seconds: float) -> str:
    if seconds >= HOUR:
        return f"{seconds / HOUR:.1f} h"
    if seconds >= MINUTE:
        return f"{seconds / MINUTE:.1f} min"
    return f"{seconds:.1f} s"


def cmd_sim_rollover(args: argparse.Namespace) -> int:
    profile = paper_profile()
    if args.leaves_per_machine is not None:
        profile = replace(profile, leaves_per_machine=args.leaves_per_machine)
    result = simulate_rollover(
        profile, args.machines, args.strategy, args.batch_fraction
    )
    print(
        f"{result.strategy} rollover of {result.leaves_total} leaves on "
        f"{result.n_machines} machines ({result.batch_size} at a time):"
    )
    print(f"  restarts:        {_fmt_duration(result.restart_seconds)}")
    print(f"  incl. deploy sw: {_fmt_duration(result.total_seconds)}")
    print(f"  per-leaf offline: {_fmt_duration(result.per_leaf_offline_seconds)}")
    print(f"  availability:    mean {result.mean_availability:.2%}, "
          f"min {result.min_availability:.2%}")
    if args.dashboard:
        print(render_dashboard(result.dashboard, width=48, max_rows=args.dashboard))
    return 0


def cmd_availability(args: argparse.Namespace) -> int:
    report = weekly_availability(
        args.rollover_hours * HOUR, args.per_week, args.availability_during
    )
    print(f"rollovers: {args.per_week}/week x {args.rollover_hours:.1f} h")
    print(f"  fully available:        {report.fully_available_fraction:.2%}")
    print(f"  mean data availability: {report.mean_data_availability:.3%}")
    return 0


def cmd_inspect_shm(args: argparse.Namespace) -> int:
    from repro.shm.inspect import format_leaf_info, inspect_leaf

    info = inspect_leaf(args.namespace, args.leaf_id)
    print(format_leaf_info(info))
    return 0 if info.metadata_exists else 1


def cmd_bench_restart(args: argparse.Namespace) -> int:
    import tempfile

    from repro.columnstore.leafmap import LeafMap
    from repro.core.engine import RestartEngine
    from repro.disk.backup import DiskBackup
    from repro.workloads import service_requests

    namespace = f"reprocli-{uuid.uuid4().hex[:8]}"
    if args.incremental:
        return _bench_incremental(args)
    if args.replica_tier:
        return _bench_replica_tier(args, namespace)
    if args.serve_while_restoring:
        return _bench_serve_while_restoring(args, namespace)
    if args.workers is not None:
        return _bench_parallel_restart(args, namespace)
    if args.disk_tier:
        return _bench_disk_tier(args, namespace)
    with tempfile.TemporaryDirectory() as tmp:
        backup = DiskBackup(tmp)
        leafmap = LeafMap(rows_per_block=4096)
        leafmap.get_or_create("service_requests").add_rows(
            service_requests(args.rows)
        )
        leafmap.seal_all()
        data_bytes = sum(t.sealed_nbytes for t in leafmap)
        backup.sync_leafmap(leafmap)
        print(f"{args.rows:,} rows, {data_bytes / 1e6:.2f} MB compressed")

        engine = RestartEngine("cli", namespace=namespace, backup=backup)
        started = time.perf_counter()
        engine.backup_to_shm(leafmap)
        copy_out = time.perf_counter() - started
        print(f"copy to shared memory: {copy_out * 1000:.1f} ms")

        started = time.perf_counter()
        restored = LeafMap(rows_per_block=4096)
        RestartEngine("cli", namespace=namespace, backup=backup).restore(restored)
        shm_restore = time.perf_counter() - started
        print(f"restore from shared memory: {shm_restore * 1000:.1f} ms")

        started = time.perf_counter()
        restored = LeafMap(rows_per_block=4096)
        RestartEngine(
            "cli", namespace=namespace, backup=backup, disk_snapshot_tier=False
        ).restore(restored)
        disk_restore = time.perf_counter() - started
        print(f"restore from disk: {disk_restore * 1000:.1f} ms")
        print(f"shared memory was {disk_restore / max(shm_restore, 1e-9):.0f}x faster")
    return 0


def _bench_replica_tier(args: argparse.Namespace, namespace: str) -> int:
    """``bench-restart --replica-tier``: experiment E18.

    One primary leaf, fully synced and mirrored to a standby, restarts
    through each rung — the wire pull from the replica, the local disk
    snapshot, and legacy replay — and must produce identical digests.
    A second replica restart serves queries mid-transfer: the first
    dashboard answer has to land before 25% of the bytes arrived.
    """
    import json as json_module
    import os
    import tempfile

    from repro.cluster.replication import ReplicaCatalog
    from repro.core.engine import RecoveryMethod
    from repro.disk.backup import DiskBackup
    from repro.query.query import Aggregation, Query
    from repro.server.leaf import LeafServer
    from repro.util.checksum import rows_digest
    from repro.workloads import service_requests

    rows = args.rows
    backends = (
        ["thread", "process"] if args.backend == "both" else [args.backend]
    )
    results = []
    exit_code = 0
    for backend in backends:
        with tempfile.TemporaryDirectory() as tmp:
            ns = f"{namespace}-{backend}"
            leaf = LeafServer(
                "cli0",
                backup=DiskBackup(Path(tmp) / "primary"),
                namespace=ns,
                rows_per_block=64,
            )
            leaf.start()
            data = list(service_requests(rows))
            leaf.add_rows("service_requests", data)
            leaf.leafmap.seal_all()
            leaf.sync_to_disk()
            # Dashboard shape: count over the newest half minute — a
            # couple of the newest blocks out of the many the leaf holds.
            newest = data[-1]["time"]
            dashboard = Query(
                table="service_requests",
                start_time=newest - 30,
                end_time=newest + 1,
                aggregations=[Aggregation("count", None)],
            )
            baseline = rows_digest(leaf.leafmap.snapshot_rows())
            data_bytes = sum(t.sealed_nbytes for t in leaf.leafmap)

            replica = LeafServer(
                "cli0r",
                backup=DiskBackup(Path(tmp) / "replica"),
                namespace=f"{ns}-rep",
                rows_per_block=64,
            )
            replica.start()
            catalog = ReplicaCatalog()
            catalog.assign("cli0", replica)
            catalog.mirror("cli0", "service_requests", data)
            source = catalog.session_source("cli0")
            # The legacy route replays through the selected pool backend
            # so the digest identity is checked against both.
            leaf.engine.replay_backend = backend
            leaf.engine.replay_workers = 2

            timings: dict[str, float] = {}
            methods: dict[str, str] = {}
            digests_match = True

            def run_route(name, expected, *, wire, snapshot_tier):
                nonlocal digests_match
                leaf.crash()
                leaf.engine.replica_source = source if wire else None
                leaf.engine.disk_snapshot_tier = snapshot_tier
                started = time.perf_counter()
                leaf.start()
                timings[name] = time.perf_counter() - started
                methods[name] = leaf.last_restart_report.method.value
                if leaf.last_restart_report.method is not expected:
                    digests_match = False
                if rows_digest(leaf.leafmap.snapshot_rows()) != baseline:
                    digests_match = False

            run_route(
                "replica", RecoveryMethod.REPLICA, wire=True, snapshot_tier=True
            )
            run_route(
                "disk_snapshot",
                RecoveryMethod.DISK_SNAPSHOT,
                wire=False,
                snapshot_tier=True,
            )
            run_route(
                "legacy", RecoveryMethod.DISK, wire=False, snapshot_tier=False
            )

            # Serve-while-restoring over the wire: queries fault blocks
            # in on demand ahead of the transfer (``sweep=False`` keeps
            # the fraction reading deterministic).
            leaf.engine.replica_source = source
            leaf.engine.disk_snapshot_tier = True
            leaf.crash()
            started = time.perf_counter()
            leaf.start(serve_while_restoring=True, sweep=False)
            leaf.query(dashboard)
            first_answer_seconds = time.perf_counter() - started
            fraction = leaf.restore_progress().fraction_restored
            leaf.wait_restored()
            if rows_digest(leaf.leafmap.snapshot_rows()) != baseline:
                digests_match = False
            if leaf.last_restart_report.method is not RecoveryMethod.REPLICA:
                digests_match = False
            catalog.close()

            vs_legacy = timings["legacy"] / max(timings["replica"], 1e-9)
            vs_snapshot = timings["disk_snapshot"] / max(
                timings["replica"], 1e-9
            )
            print(
                f"[{backend}] {rows:,} rows ({data_bytes / 1e6:.2f} MB): "
                f"replica wire pull {timings['replica'] * 1000:.1f} ms vs "
                f"disk snapshot {timings['disk_snapshot'] * 1000:.1f} ms vs "
                f"legacy replay {timings['legacy'] * 1000:.1f} ms"
            )
            print(
                f"[{backend}] replica tier {vs_legacy:.1f}x the legacy "
                f"replay; first query answered with {fraction:.1%} of bytes "
                f"transferred ({first_answer_seconds * 1000:.1f} ms); "
                f"digests {'identical' if digests_match else 'DIVERGED'}"
            )
            if fraction >= 0.25 or not digests_match or vs_legacy < 2.0:
                exit_code = 1
            results.append(
                {
                    "backend": backend,
                    "rows": rows,
                    "compressed_bytes": data_bytes,
                    "restore_seconds": timings,
                    "methods": methods,
                    "speedup_vs_legacy": vs_legacy,
                    "speedup_vs_disk_snapshot": vs_snapshot,
                    "fraction_restored_at_first_query": fraction,
                    "first_answer_seconds": first_answer_seconds,
                    "digests_match": digests_match,
                }
            )
    profile = paper_profile()
    sim_speedup = profile.replica_restore_speedup(1)
    print(
        f"simulator, paper-scale leaf: replica pull "
        f"{_fmt_duration(profile.replica_restart_seconds())} vs disk "
        f"snapshot {_fmt_duration(profile.disk_snapshot_restart_seconds(1))} "
        f"({sim_speedup:.1f}x; the local run hides the disk bottleneck "
        f"behind the page cache)"
    )
    if sim_speedup < 2.0:
        exit_code = 1
    if args.json:
        payload = {
            "experiment": "E18",
            "rows": rows,
            "cpu_count": os.cpu_count() or 1,
            "sim_replica_speedup_vs_disk_snapshot": sim_speedup,
            "backends": results,
        }
        with open(args.json, "w") as fh:
            json_module.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return exit_code


def _bench_disk_tier(args: argparse.Namespace, namespace: str) -> int:
    """``bench-restart --disk-tier``: legacy row-format replay vs the
    shm-format snapshot tier (experiment E12), plus a forced fallback."""
    import tempfile

    from repro.columnstore.leafmap import LeafMap
    from repro.core.engine import RecoveryMethod, RestartEngine
    from repro.disk.backup import DiskBackup
    from repro.workloads import service_requests

    with tempfile.TemporaryDirectory() as tmp:
        backup = DiskBackup(tmp)
        leafmap = LeafMap(rows_per_block=4096)
        leafmap.get_or_create("service_requests").add_rows(
            service_requests(args.rows)
        )
        leafmap.seal_all()
        data_bytes = sum(t.sealed_nbytes for t in leafmap)
        backup.sync_leafmap(leafmap)  # sealed buffers -> snapshots are fresh
        rows = leafmap.snapshot_rows()
        print(f"{args.rows:,} rows, {data_bytes / 1e6:.2f} MB compressed")

        started = time.perf_counter()
        legacy = LeafMap(rows_per_block=4096)
        report = RestartEngine(
            "cli", namespace=namespace, backup=backup, disk_snapshot_tier=False
        ).restore(legacy)
        legacy_s = time.perf_counter() - started
        assert report.method is RecoveryMethod.DISK
        print(f"legacy row-format replay:  {legacy_s * 1000:.1f} ms")

        started = time.perf_counter()
        fast = LeafMap(rows_per_block=4096)
        report = RestartEngine("cli", namespace=namespace, backup=backup).restore(fast)
        snapshot_s = time.perf_counter() - started
        assert report.method is RecoveryMethod.DISK_SNAPSHOT
        assert fast.snapshot_rows() == rows
        print(f"shm-format snapshot tier:  {snapshot_s * 1000:.1f} ms")
        print(f"snapshot tier was {legacy_s / max(snapshot_s, 1e-9):.1f}x faster")

        # Tear one snapshot file: the ladder must route down to legacy
        # replay and recover the identical rows.
        victim = backup.snapshot_path("service_requests")
        victim.write_bytes(victim.read_bytes()[:64])
        torn = LeafMap(rows_per_block=4096)
        report = RestartEngine("cli", namespace=namespace, backup=backup).restore(torn)
        assert report.method is RecoveryMethod.DISK and report.fell_back_to_legacy
        assert torn.snapshot_rows() == rows
        print("torn snapshot: fell back to legacy replay, identical rows")

        profile = paper_profile()
        legacy_sim = profile.disk_restart_seconds(1)
        snap_sim = profile.disk_snapshot_restart_seconds(1)
        print(
            f"simulator, paper-scale leaf: legacy {_fmt_duration(legacy_sim)} "
            f"vs snapshot tier {_fmt_duration(snap_sim)} "
            f"({legacy_sim / snap_sim:.1f}x)"
        )
    return 0


def _bench_incremental(args: argparse.Namespace) -> int:
    """``bench-restart --incremental``: experiment E17.

    An append-mostly workload synced through three snapshot regimes —
    full rewrite, incremental delta chain, and an aggressively-compacted
    chain — measuring the sync write bytes each pays, then replaying the
    legacy chunks serially and through the parallel replay pool.  Every
    recovery route must produce the identical digest.
    """
    import json as json_module
    import os
    import tempfile
    from itertools import islice

    from repro.columnstore.leafmap import LeafMap
    from repro.disk.backup import DiskBackup
    from repro.disk.recovery import recover_leafmap, recover_leafmap_snapshots
    from repro.disk.replay import replay_leafmap
    from repro.util.checksum import rows_digest
    from repro.workloads import service_requests

    rounds = 8
    base_rows = args.rows
    per_round = max(256, args.rows // 16)
    workers = max(1, args.workers) if args.workers is not None else 4
    exit_code = 0
    with tempfile.TemporaryDirectory() as tmp:
        root = Path(tmp)
        backups = {
            "full": DiskBackup(root / "full", incremental=False),
            "incremental": DiskBackup(root / "incremental"),
            "compacted": DiskBackup(root / "compacted", max_chain_links=2),
        }
        leafmap = LeafMap(rows_per_block=1024)
        table = leafmap.get_or_create("service_requests")
        gen = iter(service_requests(base_rows + rounds * per_round))

        def sync_all():
            leafmap.seal_all()
            for backup in backups.values():
                backup.sync_leafmap(leafmap)

        table.add_rows(islice(gen, base_rows))
        sync_all()
        base_bytes = {
            name: b.stats.snapshot_bytes_written for name, b in backups.items()
        }
        for _ in range(rounds):
            # Append-mostly: each sync point seals only the new rows, so
            # the delta chain writes a small fraction of the table while
            # the full-rewrite regime pays the whole table every time.
            table.add_rows(islice(gen, per_round))
            sync_all()
        data_bytes = table.sealed_nbytes
        print(
            f"{base_rows:,} base rows + {rounds} syncs x {per_round:,} rows, "
            f"{data_bytes / 1e6:.2f} MB compressed live"
        )

        steady = {
            name: b.stats.snapshot_bytes_written - base_bytes[name]
            for name, b in backups.items()
        }
        reduction = steady["full"] / max(steady["incremental"], 1)
        for name, backup in backups.items():
            stats = backup.stats
            print(
                f"[{name}] sync writes after base: {steady[name] / 1e6:.2f} MB "
                f"(amplification {stats.write_amplification:.3f}, "
                f"{stats.deltas_written} deltas, {stats.compactions} compactions)"
            )
        print(f"incremental wrote {reduction:.1f}x fewer sync bytes than full rewrite")

        source_digest = rows_digest(leafmap.snapshot_rows())
        digests_identical = True
        replay_seconds: dict[str, float] = {}
        for name, backup in backups.items():
            chained = LeafMap(rows_per_block=1024)
            recover_leafmap_snapshots(backup, chained)
            ok = rows_digest(chained.snapshot_rows()) == source_digest
            started = time.perf_counter()
            serial = LeafMap(rows_per_block=1024)
            recover_leafmap(backup, serial)
            serial_s = time.perf_counter() - started
            ok = ok and rows_digest(serial.snapshot_rows()) == source_digest
            for backend in ("thread", "process"):
                started = time.perf_counter()
                parallel = LeafMap(rows_per_block=1024)
                replay_leafmap(backup, parallel, workers=workers, backend=backend)
                replay_seconds[backend] = time.perf_counter() - started
                ok = ok and rows_digest(parallel.snapshot_rows()) == source_digest
            digests_identical = digests_identical and ok
            if name == "incremental":
                replay_seconds["serial"] = serial_s
            print(
                f"[{name}] digests {'identical' if ok else 'DIVERGED'} across "
                f"chain / serial / parallel x thread / parallel x process"
            )
        if not digests_identical:
            exit_code = 1
        for backend in ("thread", "process"):
            speedup = replay_seconds["serial"] / max(replay_seconds[backend], 1e-9)
            print(
                f"legacy replay, {workers} workers, {backend} backend: "
                f"{replay_seconds[backend] * 1000:.1f} ms "
                f"({speedup:.2f}x vs serial {replay_seconds['serial'] * 1000:.1f} ms)"
            )

        profile = paper_profile()
        print(
            f"simulator, paper-scale leaf: incremental sync writes "
            f"{profile.incremental_sync_reduction():.1f}x fewer bytes; "
            f"{workers}-worker process replay "
            f"{_fmt_duration(profile.translate_seconds(profile.data_bytes_per_leaf) / profile.parallel_replay_speedup(workers, 'process'))} "
            f"vs serial "
            f"{_fmt_duration(profile.translate_seconds(profile.data_bytes_per_leaf))} "
            f"({profile.parallel_replay_speedup(workers, 'process'):.1f}x)"
        )
        if args.json:
            inc_stats = backups["incremental"].stats
            payload = {
                "experiment": "E17",
                "rows": base_rows + rounds * per_round,
                "rounds": rounds,
                "compressed_bytes": data_bytes,
                "cpu_count": os.cpu_count() or 1,
                "workers": workers,
                "sync_write_bytes": steady,
                "write_reduction": reduction,
                "write_amplification": inc_stats.write_amplification,
                "compactions": {
                    name: b.stats.compactions for name, b in backups.items()
                },
                "deltas_written": inc_stats.deltas_written,
                "skipped_unchanged": inc_stats.skipped_unchanged,
                "replay_seconds": replay_seconds,
                "replay_speedup": {
                    backend: replay_seconds["serial"]
                    / max(replay_seconds[backend], 1e-9)
                    for backend in ("thread", "process")
                },
                "digests_identical": digests_identical,
                "sim": {
                    "sync_write_reduction": profile.incremental_sync_reduction(),
                    "replay_speedup_process": profile.parallel_replay_speedup(
                        workers, "process"
                    ),
                    "replay_speedup_thread": profile.parallel_replay_speedup(
                        workers, "thread"
                    ),
                },
            }
            with open(args.json, "w") as fh:
                json_module.dump(payload, fh, indent=2)
            print(f"wrote {args.json}")
    return exit_code


def _bench_serve_while_restoring(args: argparse.Namespace, namespace: str) -> int:
    """``bench-restart --serve-while-restoring``: experiment E16.

    Measures availability, not throughput: how far into the restore the
    first (dashboard-shaped) query gets answered, on each backend, and
    that the lazily-restored leaf is digest-identical to a blocking
    restore of the same shared memory image.
    """
    import json as json_module
    import os
    import tempfile

    from repro.core.parallel import ParallelRestartCoordinator
    from repro.query.query import Aggregation, Query
    from repro.server.machine import Machine
    from repro.util.checksum import rows_digest
    from repro.workloads import service_requests

    leaves = max(1, args.leaves)
    backends = (
        ["thread", "process"] if args.backend == "both" else [args.backend]
    )
    rows_per_leaf = max(1, args.rows // leaves)
    # ~4 rows share each second, so the newest data ends near this mark;
    # the dashboard query scans the last half minute — a couple of the
    # newest blocks out of the many the leaf holds.
    newest = 1_390_000_000 + rows_per_leaf // 4 + 1
    dashboard = Query(
        table="service_requests",
        start_time=newest - 30,
        end_time=newest + 1,
        aggregations=[Aggregation("count", None)],
    )
    results = []
    exit_code = 0
    for backend in backends:
        with tempfile.TemporaryDirectory() as tmp:
            machine = Machine(
                "cli",
                backup_root=tmp,
                leaves_per_machine=leaves,
                namespace=f"{namespace}-{backend}",
                rows_per_block=64,
                shared_tracker=True,
            )
            machine.start_all()
            for leaf in machine.leaves:
                leaf.add_rows(
                    "service_requests", service_requests(rows_per_leaf)
                )
                leaf.leafmap.seal_all()
            data_bytes = machine.nbytes
            coordinator = ParallelRestartCoordinator(
                machine.leaves, backend=backend
            )

            # Baseline: the blocking restart — unavailable until the
            # last byte — and the content digests it produces.
            blocking = coordinator.restart_all()
            if blocking.failures:
                for outcome in blocking.failures:
                    print(f"[{backend}] blocking restart FAILED: "
                          f"{outcome.error}")
                return 1
            digests = [
                rows_digest(leaf.leafmap.snapshot_rows())
                for leaf in machine.leaves
            ]

            # Serve-while-restoring: shutdown the same way, then bring
            # each leaf to serving and query it before the sweep runs
            # (``sweep=False`` keeps the reading deterministic).
            outcomes = coordinator.shutdown_all()
            if any(not o.ok for o in outcomes):
                print(f"[{backend}] shutdown FAILED")
                return 1
            worst_fraction = 0.0
            first_answer_seconds = 0.0
            queries_served = 0
            digests_match = True
            for leaf, blocking_digest in zip(machine.leaves, digests):
                started = time.perf_counter()
                leaf.start(serve_while_restoring=True, sweep=False)
                leaf.query(dashboard)
                first_answer_seconds = max(
                    first_answer_seconds, time.perf_counter() - started
                )
                progress = leaf.restore_progress()
                worst_fraction = max(
                    worst_fraction, progress.fraction_restored
                )
                queries_served += progress.queries_served
                leaf.wait_restored()
                if rows_digest(leaf.leafmap.snapshot_rows()) != blocking_digest:
                    digests_match = False
            print(
                f"[{backend}] {leaves} leaves x {rows_per_leaf:,} rows "
                f"({data_bytes / 1e6:.2f} MB): first query answered with "
                f"{worst_fraction:.1%} of bytes restored "
                f"(blocking restore waits for 100%)"
            )
            print(
                f"[{backend}] time to first answer {first_answer_seconds * 1000:.1f} ms "
                f"vs blocking restore {blocking.restore_seconds * 1000:.1f} ms; "
                f"digests {'identical' if digests_match else 'DIVERGED'}"
            )
            if worst_fraction >= 0.25 or not digests_match:
                exit_code = 1
            results.append(
                {
                    "backend": backend,
                    "leaves": leaves,
                    "rows_per_leaf": rows_per_leaf,
                    "compressed_bytes": data_bytes,
                    "fraction_restored_at_first_query": worst_fraction,
                    "first_answer_seconds": first_answer_seconds,
                    "blocking_restore_seconds": blocking.restore_seconds,
                    "queries_served_during_restore": queries_served,
                    "digests_match": digests_match,
                }
            )
    profile = paper_profile()
    print(
        f"simulator, paper-scale leaf: blocking window "
        f"{_fmt_duration(profile.shm_restart_seconds(1))} vs serving at "
        f"{_fmt_duration(profile.shm_lazy_restart_seconds(1))} "
        f"(background fill {_fmt_duration(profile.shm_restore_seconds(1))})"
    )
    if args.json:
        payload = {
            "experiment": "E16",
            "rows": args.rows,
            "leaves": leaves,
            "cpu_count": os.cpu_count() or 1,
            "backends": results,
        }
        with open(args.json, "w") as fh:
            json_module.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return exit_code


def _bench_parallel_restart(args: argparse.Namespace, namespace: str) -> int:
    """``bench-restart --workers N``: a whole machine restarting in
    parallel (experiment E15), plus the simulator's prediction.

    ``--backend both`` runs the thread pool and the process pool on the
    same data and reports the process/thread speedup; ``--json`` writes
    the measurements for CI to archive (the ``BENCH_e15.json`` artifact).
    """
    import json as json_module
    import os
    import tempfile

    from repro.server.machine import Machine
    from repro.workloads import service_requests

    leaves = max(1, args.leaves)
    workers = max(1, args.workers)
    backends = (
        ["thread", "process"] if args.backend == "both" else [args.backend]
    )
    results = []
    exit_code = 0
    with tempfile.TemporaryDirectory() as tmp:
        machine = Machine(
            "cli",
            backup_root=tmp,
            leaves_per_machine=leaves,
            namespace=namespace,
            rows_per_block=4096,
            shared_tracker=True,
        )
        machine.start_all()
        rows_per_leaf = max(1, args.rows // leaves)
        for leaf in machine.leaves:
            leaf.add_rows("service_requests", service_requests(rows_per_leaf))
            leaf.leafmap.seal_all()  # measure compressed, not buffered, size
        data_bytes = machine.nbytes
        print(
            f"{leaves} leaves x {rows_per_leaf:,} rows, "
            f"{data_bytes / 1e6:.2f} MB compressed, {workers} workers"
        )
        budget = int(args.budget_mb * 1_000_000) if args.budget_mb else None
        for backend in backends:
            report = machine.restart_all(
                workers=workers, budget_bytes=budget, backend=backend
            )
            failures = report.failures
            print(f"[{backend}] parallel shutdown: "
                  f"{report.shutdown_seconds * 1000:.1f} ms")
            print(f"[{backend}] parallel restore:  "
                  f"{report.restore_seconds * 1000:.1f} ms")
            if backend == "process":
                print(f"[{backend}] adopt (harness):   "
                      f"{report.adopt_seconds * 1000:.1f} ms")
            if budget:
                print(
                    f"[{backend}] peak in-flight:    "
                    f"{report.peak_in_flight_bytes / 1e6:.2f} MB "
                    f"(budget {args.budget_mb} MB)"
                )
            results.append(
                {
                    "backend": backend,
                    "workers": workers,
                    "leaves": leaves,
                    "shutdown_seconds": report.shutdown_seconds,
                    "restore_seconds": report.restore_seconds,
                    "adopt_seconds": report.adopt_seconds,
                    "restart_window_seconds": report.restart_window_seconds,
                    "peak_in_flight_bytes": report.peak_in_flight_bytes,
                    "budget_bytes": budget,
                    "failures": len(failures),
                }
            )
            for outcome in failures:
                print(f"[{backend}] leaf {outcome.leaf_id} FAILED: "
                      f"{outcome.error}")
                exit_code = 1
        if machine.tracker is not None:
            print(f"peak footprint:    {machine.tracker.peak_total / 1e6:.2f} MB")
        speedup = None
        if len(results) == 2:
            thread_window = results[0]["restart_window_seconds"]
            process_window = results[1]["restart_window_seconds"]
            speedup = thread_window / max(process_window, 1e-9)
            print(
                f"process backend was {speedup:.2f}x the thread backend "
                f"({os.cpu_count() or 1} cores on this host)"
            )
        profile = paper_profile()
        print(
            f"simulator: {workers}-wide restore of a paper-scale machine is "
            f"{profile.parallel_restore_speedup(workers, 'process'):.1f}x "
            f"sequential via processes, "
            f"{profile.parallel_restore_speedup(workers, 'thread'):.1f}x via "
            f"threads (bandwidth ceiling "
            f"{profile.mem_total_gbps / profile.mem_copy_gbps:.0f}x)"
        )
        if args.json:
            payload = {
                "experiment": "E15",
                "rows": args.rows,
                "leaves": leaves,
                "workers": workers,
                "compressed_bytes": data_bytes,
                "cpu_count": os.cpu_count() or 1,
                "backends": results,
                "process_over_thread_speedup": speedup,
            }
            with open(args.json, "w") as fh:
                json_module.dump(payload, fh, indent=2)
            print(f"wrote {args.json}")
    return exit_code


def cmd_bench_query(args: argparse.Namespace) -> int:
    """``bench-query``: the E13 before/after — row-at-a-time vs the
    vectorized executor, cold and warm through the decoded-column cache."""
    import json

    from repro.columnstore.colcache import DecodedColumnCache
    from repro.columnstore.leafmap import LeafMap
    from repro.query.execute import execute_on_leaf, execute_on_leaf_rows
    from repro.query.query import Aggregation, Filter, Query
    from repro.util.clock import ManualClock
    from repro.workloads import service_requests

    cache = DecodedColumnCache(args.cache_mb << 20)
    leafmap = LeafMap(
        clock=ManualClock(0.0), rows_per_block=8192, column_cache=cache
    )
    leafmap.get_or_create("service_requests").add_rows(service_requests(args.rows))
    leafmap.seal_all()
    data_bytes = sum(t.sealed_nbytes for t in leafmap)
    print(f"{args.rows:,} rows, {data_bytes / 1e6:.2f} MB compressed")

    queries = {
        "grouped-aggregation": Query(
            "service_requests",
            aggregations=(
                Aggregation("count"),
                Aggregation("avg", "latency_ms"),
                Aggregation("p99", "latency_ms"),
            ),
            group_by=("endpoint",),
        ),
        "filtered-count": Query(
            "service_requests",
            aggregations=(Aggregation("count"),),
            filters=(
                Filter("status", "ge", 500),
                Filter("tags", "contains", "prod"),
            ),
        ),
        "time-window-buckets": Query(
            "service_requests",
            aggregations=(Aggregation("count"), Aggregation("max", "latency_ms")),
            start_time=1_390_000_000,
            end_time=1_390_000_000 + args.rows // 8,
            bucket_seconds=60,
            group_by=("datacenter",),
        ),
    }

    def best_of(fn):
        best = float("inf")
        for _ in range(max(1, args.repeats)):
            started = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - started)
        return best

    results = []
    for name, query in queries.items():
        row_s = best_of(lambda: execute_on_leaf_rows(leafmap, query))
        cache.clear()
        started = time.perf_counter()
        execute_on_leaf(leafmap, query)
        cold_s = time.perf_counter() - started
        warm_s = best_of(lambda: execute_on_leaf(leafmap, query))
        speedup = row_s / max(warm_s, 1e-9)
        results.append(
            {
                "query": name,
                "row_ms": row_s * 1000,
                "vector_cold_ms": cold_s * 1000,
                "vector_warm_ms": warm_s * 1000,
                "speedup": speedup,
            }
        )
        print(
            f"{name:24s} row {row_s * 1000:8.1f} ms | vectorized cold "
            f"{cold_s * 1000:7.1f} ms, warm {warm_s * 1000:7.1f} ms "
            f"({speedup:.1f}x)"
        )
    stats = cache.stats()
    print(
        f"cache: {stats.entries} entries, {stats.nbytes / 1e6:.2f} MB, "
        f"hit rate {stats.hit_rate:.1%}"
    )
    if args.json:
        payload = {
            "experiment": "E13",
            "rows": args.rows,
            "compressed_bytes": data_bytes,
            "queries": results,
            "min_speedup": min(r["speedup"] for r in results),
            "cache": {
                "entries": stats.entries,
                "nbytes": stats.nbytes,
                "hit_rate": stats.hit_rate,
            },
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 0


def cmd_leaf_worker(args: argparse.Namespace, extra: list[str]) -> int:
    from repro.server.process_worker import main as worker_main

    return worker_main(extra)


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import render_json, render_text, run_lint, write_baseline

    try:
        result = run_lint(
            root=args.root,
            checkers=args.checker or None,
            baseline_path=args.baseline,
            allow_todo=args.allow_todo,
        )
    except ValueError as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        from repro.analysis.runner import DEFAULT_BASELINE

        path = args.baseline or (args.root + "/" + DEFAULT_BASELINE)
        write_baseline(result, path)
        print(
            f"baseline written to {path} "
            f"({len({f.key for f in result.findings})} entries) — "
            f"fill in the TODO justifications before committing"
        )
        return 0
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result, verbose=args.verbose))
    exit_code = 1 if result.failed else 0
    if args.san_report:
        import json as _json

        from repro.analysis.loader import DEFAULT_SCAN_DIRS, load_modules
        from repro.analysis.reprosan import cross_check

        try:
            report = _json.loads(Path(args.san_report).read_text())
        except (OSError, ValueError) as exc:
            print(f"repro lint: cannot read --san-report: {exc}", file=sys.stderr)
            return 2
        modules = load_modules(Path(args.root), DEFAULT_SCAN_DIRS)
        checked = cross_check(report, modules)
        print()
        print(
            f"reprosan cross-check: {len(checked['runtime_edges'])} runtime "
            f"edges, {len(checked['cycles'])} cycles, "
            f"{len(checked['inversions'])} inversions vs the static graph"
        )
        for cycle in checked["cycles"]:
            print(f"  cycle observed at runtime: {cycle}")
        for inversion in checked["inversions"]:
            print(
                f"  order inversion: runtime took {inversion} but the "
                f"static graph only knows the reverse"
            )
        for edge in checked["unpredicted"]:
            print(f"  note: runtime edge not in the static graph: {edge}")
        for edge in checked["unobserved"]:
            print(f"  note: static edge not exercised by the test run: {edge}")
        if not checked["ok"]:
            exit_code = 1
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Fast database restarts (SIGMOD 2014), reproduced",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("sim-rollover", help="simulate a full-scale rollover")
    p.add_argument("--machines", type=int, default=100)
    p.add_argument("--strategy", choices=("shm", "disk"), default="shm")
    p.add_argument("--batch-fraction", type=float, default=0.02)
    p.add_argument("--leaves-per-machine", type=int, default=None)
    p.add_argument("--dashboard", type=int, default=0, metavar="ROWS",
                   help="also render the Figure-8 dashboard with ROWS rows")
    p.set_defaults(func=cmd_sim_rollover)

    p = sub.add_parser("availability", help="weekly availability for a cadence")
    p.add_argument("--rollover-hours", type=float, required=True)
    p.add_argument("--per-week", type=float, default=1.0)
    p.add_argument("--availability-during", type=float, default=0.98)
    p.set_defaults(func=cmd_availability)

    p = sub.add_parser("inspect-shm", help="examine a leaf's shared memory state")
    p.add_argument("--namespace", default="scuba")
    p.add_argument("--leaf-id", required=True)
    p.set_defaults(func=cmd_inspect_shm)

    p = sub.add_parser("bench-restart", help="real scaled disk-vs-shm restart")
    p.add_argument("--rows", type=int, default=20_000)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="restart a whole machine's leaves N at a time "
                   "(default: single-leaf disk-vs-shm comparison)")
    p.add_argument("--leaves", type=int, default=4,
                   help="leaves on the machine for --workers mode")
    p.add_argument("--budget-mb", type=float, default=None,
                   help="machine-wide in-flight copy budget for --workers mode")
    p.add_argument("--backend", choices=("thread", "process", "both"),
                   default="thread",
                   help="restart pool backend for --workers mode; 'both' "
                   "runs each and reports the process/thread speedup")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="write --workers mode measurements as JSON "
                   "(the BENCH_e15.json artifact)")
    p.add_argument("--serve-while-restoring", action="store_true",
                   help="experiment E16: answer queries mid-restore via "
                        "on-demand block fault-in, vs the blocking restore")
    p.add_argument("--replica-tier", action="store_true",
                   help="experiment E18: pipelined over-the-wire restore "
                        "from a standby replica vs the local disk rungs, "
                        "incl. serve-while-restoring over the wire")
    p.add_argument("--disk-tier", action="store_true",
                   help="compare legacy row-format replay against the "
                   "shm-format snapshot tier (E12), incl. torn-file fallback")
    p.add_argument("--incremental", action="store_true",
                   help="experiment E17: incremental delta-chain sync "
                   "write bytes vs full rewrite, plus serial vs parallel "
                   "legacy replay (--workers, default 4; --json writes "
                   "the BENCH_e17.json artifact)")
    p.set_defaults(func=cmd_bench_restart)

    p = sub.add_parser(
        "bench-query", help="vectorized vs row-at-a-time query execution (E13)"
    )
    p.add_argument("--rows", type=int, default=50_000)
    p.add_argument("--cache-mb", type=int, default=64,
                   help="decoded-column cache capacity in MiB")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats (best-of)")
    p.add_argument("--json", default=None, metavar="FILE",
                   help="also write the measurements as JSON")
    p.set_defaults(func=cmd_bench_query)

    sub.add_parser(
        "leaf-worker",
        help="run a leaf server worker (args forwarded; see "
        "repro.server.process_worker)",
        add_help=False,
    )

    p = sub.add_parser(
        "lint", help="verify restart invariants with the reprolint checkers"
    )
    p.add_argument("--root", default=".", help="repository root to scan")
    p.add_argument(
        "--format", choices=("text", "json"), default="text", dest="format"
    )
    p.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="accepted-findings file (default: src/repro/analysis/baseline.json "
        "under --root, when present)",
    )
    p.add_argument(
        "--checker",
        action="append",
        metavar="NAME",
        help="run only this checker (repeatable); default: all",
    )
    p.add_argument(
        "--allow-todo",
        action="store_true",
        help="downgrade TODO-justified baseline entries from error to warning",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="accept the current findings into the baseline file",
    )
    p.add_argument(
        "--san-report",
        default=None,
        metavar="FILE",
        help="cross-check a reprosan JSON report (pytest --reprosan) "
        "against the RL7xx static lock graph",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="also list baselined findings with their justifications",
    )
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "leaf-worker":
        from repro.server.process_worker import main as worker_main

        return worker_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
