"""A machine-wide footprint budget that spans process boundaries.

The thread backend's :class:`~repro.core.parallel.FootprintBudget` keeps
the Section 4.4 invariant with a ``threading.Condition`` — invisible to a
forked worker.  :class:`SharedFootprintBudget` carries the same contract
(``acquire``/``release``/``reserve``, the oversized-request progress
rule, ``peak_in_flight``/``blocked_acquires`` accounting) on
``multiprocessing`` primitives, so every copy stream on the machine —
whichever process runs it — queues against one shared byte limit.

Two things the cross-process setting adds:

- **FIFO ticketing.** Admission is strictly in acquire order, so an
  oversized request (needing the whole budget to itself) cannot be
  starved by a stream of small requests slipping in ahead of it every
  time bytes free up.  The thread budget uses the same discipline.
- **Crash reclamation.** Every reservation and every waiting ticket is
  attributed to the acquiring process id in a small shared slot table.
  When the coordinator reaps a dead worker it calls
  :meth:`reclaim_process`, which returns the corpse's in-flight bytes to
  the budget and cancels its queued tickets so the line keeps moving.

Blocked acquirers *poll* (a short sleep between admission checks) rather
than sleeping on a ``multiprocessing.Condition``.  That is deliberate:
an mp condition's ``notify_all`` counts its sleepers and then blocks
until each one reports waking, so a worker SIGKILLed inside ``wait()``
would wedge the next notifier — the exact crash this class must survive.
With polling, a dead waiter holds nothing while it sleeps; the only
remaining wedge window is death inside the lock's microsecond-scale
critical section, the same window any mutex-holding process has.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from contextlib import contextmanager
from typing import Iterator

from repro.errors import ReproError

# Header word indexes within the shared array.
_IN_FLIGHT = 0
_PEAK = 1
_BLOCKED = 2
_NEXT_TICKET = 3
_NOW_SERVING = 4
_HEADER_WORDS = 5

#: Maximum concurrent acquirers + holders across all processes.  Eight
#: leaves times a handful of workers leaves generous headroom.
MAX_SLOTS = 128
_SLOT_WORDS = 3  # pid, ticket (-1 == holding), nbytes

#: Slot ticket value meaning "admitted, bytes in flight".
_HOLDING = -1

#: Sleep between admission checks while blocked.  Copy windows are
#: milliseconds at the smallest, so a sub-millisecond poll costs a
#: negligible fraction of any admission it delays.
_POLL_SECONDS = 0.0005


class SharedFootprintBudget:
    """A byte budget shared by every copy in flight on one machine,
    usable from forked worker processes as well as threads.

    The public surface mirrors :class:`~repro.core.parallel.FootprintBudget`
    exactly; the additions are :meth:`reclaim_process` and the ``ctx``
    constructor argument (a ``multiprocessing`` context — workers must
    inherit the budget through ``fork``, not re-pickle it).
    """

    def __init__(self, limit_bytes: int, ctx=None) -> None:
        if limit_bytes <= 0:
            raise ValueError(f"budget must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        ctx = ctx or multiprocessing.get_context()
        self._lock = ctx.Lock()
        self._state = ctx.Array(
            "q", [0] * (_HEADER_WORDS + MAX_SLOTS * _SLOT_WORDS), lock=False
        )

    # ------------------------------------------------------------------
    # Slot table helpers (call with the lock held)
    # ------------------------------------------------------------------

    def _slot(self, index: int) -> tuple[int, int, int]:
        base = _HEADER_WORDS + index * _SLOT_WORDS
        return (
            self._state[base],
            self._state[base + 1],
            self._state[base + 2],
        )

    def _set_slot(self, index: int, pid: int, ticket: int, nbytes: int) -> None:
        base = _HEADER_WORDS + index * _SLOT_WORDS
        self._state[base] = pid
        self._state[base + 1] = ticket
        self._state[base + 2] = nbytes

    def _claim_slot(self, ticket: int, nbytes: int) -> int:
        for index in range(MAX_SLOTS):
            if self._slot(index)[0] == 0:
                self._set_slot(index, os.getpid(), ticket, nbytes)
                return index
        raise ReproError(
            f"more than {MAX_SLOTS} concurrent budget reservations; "
            "is a worker leaking acquires?"
        )

    def _ticket_waiting(self, ticket: int) -> bool:
        for index in range(MAX_SLOTS):
            pid, slot_ticket, _ = self._slot(index)
            if pid != 0 and slot_ticket == ticket:
                return True
        return False

    def _advance(self) -> None:
        """Move ``now_serving`` past tickets nobody is waiting on anymore
        (admitted, abandoned on error, or reclaimed from a dead worker)."""
        while (
            self._state[_NOW_SERVING] < self._state[_NEXT_TICKET]
            and not self._ticket_waiting(self._state[_NOW_SERVING])
        ):
            self._state[_NOW_SERVING] += 1

    # ------------------------------------------------------------------
    # The budget protocol
    # ------------------------------------------------------------------

    def _admissible(self, nbytes: int) -> bool:
        if self._state[_IN_FLIGHT] + nbytes <= self.limit_bytes:
            return True
        # Oversized request: admit only into an empty budget.
        return self._state[_IN_FLIGHT] == 0

    def _served(self, ticket: int, nbytes: int) -> bool:
        return self._state[_NOW_SERVING] == ticket and self._admissible(nbytes)

    def _admit(self, slot: int, ticket: int, nbytes: int) -> None:
        self._set_slot(slot, os.getpid(), _HOLDING, nbytes)
        self._state[_NOW_SERVING] = ticket + 1
        self._advance()
        self._state[_IN_FLIGHT] += nbytes
        if self._state[_IN_FLIGHT] > self._state[_PEAK]:
            self._state[_PEAK] = self._state[_IN_FLIGHT]

    def acquire(self, nbytes: int) -> None:
        """Block until ``nbytes`` of in-flight copy space is available
        *and* every earlier acquire has been admitted (FIFO)."""
        if nbytes < 0:
            raise ValueError(f"cannot acquire a negative size ({nbytes})")
        with self._lock:
            ticket = self._state[_NEXT_TICKET]
            self._state[_NEXT_TICKET] += 1
            try:
                slot = self._claim_slot(ticket, nbytes)
            except BaseException:
                self._advance()  # nobody will ever wait on this ticket
                raise
            if self._served(ticket, nbytes):
                self._admit(slot, ticket, nbytes)
                return
            self._state[_BLOCKED] += 1
        try:
            while True:
                time.sleep(_POLL_SECONDS)
                with self._lock:
                    if self._served(ticket, nbytes):
                        self._admit(slot, ticket, nbytes)
                        return
        except BaseException:
            # Abandon the ticket so the queue keeps moving.
            with self._lock:
                self._set_slot(slot, 0, 0, 0)
                self._advance()
            raise

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget, letting blocked acquirers in."""
        with self._lock:
            if nbytes < 0 or nbytes > self._state[_IN_FLIGHT]:
                raise ValueError(
                    f"releasing {nbytes} bytes with "
                    f"{self._state[_IN_FLIGHT]} in flight"
                )
            pid = os.getpid()
            for index in range(MAX_SLOTS):
                slot_pid, ticket, slot_bytes = self._slot(index)
                if slot_pid == pid and ticket == _HOLDING and slot_bytes == nbytes:
                    self._set_slot(index, 0, 0, 0)
                    break
            self._state[_IN_FLIGHT] -= nbytes

    def reclaim_process(self, pid: int) -> int:
        """Release everything a dead process still holds or waits for.

        Returns the in-flight bytes returned to the budget.  Idempotent:
        reclaiming a pid with no slots is a no-op.
        """
        with self._lock:
            reclaimed = 0
            for index in range(MAX_SLOTS):
                slot_pid, ticket, slot_bytes = self._slot(index)
                if slot_pid != pid:
                    continue
                if ticket == _HOLDING:
                    reclaimed += slot_bytes
                self._set_slot(index, 0, 0, 0)
            self._state[_IN_FLIGHT] -= reclaimed
            self._advance()
            return reclaimed

    @contextmanager
    def reserve(self, nbytes: int) -> Iterator[None]:
        self.acquire(nbytes)
        try:
            yield
        finally:
            self.release(nbytes)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._state[_IN_FLIGHT]

    @property
    def peak_in_flight(self) -> int:
        with self._lock:
            return self._state[_PEAK]

    @property
    def blocked_acquires(self) -> int:
        with self._lock:
            return self._state[_BLOCKED]

    def __repr__(self) -> str:
        with self._lock:
            return (
                f"SharedFootprintBudget(limit={self.limit_bytes}, "
                f"in_flight={self._state[_IN_FLIGHT]}, "
                f"peak={self._state[_PEAK]})"
            )
