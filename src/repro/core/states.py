"""The shutdown and restart state machines of Figure 5.

"At all times, each leaf and table keeps track of its state.  The state
indicates whether the leaf and table are working on a restart and
determines which actions are permissible."

Four machines:

(a) leaf backup:   ALIVE → COPY_TO_SHM → EXIT
(b) leaf restore:  INIT → MEMORY_RECOVERY → ALIVE
                   INIT → DISK_RECOVERY → ALIVE       (memory recovery disabled)
                   MEMORY_RECOVERY → DISK_RECOVERY    (exception)
    The recovery *ladder* adds a middle disk tier (Section 6: shm-format
    snapshots on disk):
                   INIT → DISK_SNAPSHOT_RECOVERY → ALIVE
                   MEMORY_RECOVERY → DISK_SNAPSHOT_RECOVERY   (exception)
                   DISK_SNAPSHOT_RECOVERY → DISK_RECOVERY     (stale/torn)
    Serve-while-restoring splits memory recovery in two: once the block
    directory is published the leaf *serves* while blocks fault in:
                   MEMORY_RECOVERY → MEMORY_SERVING           (directory up)
                   MEMORY_SERVING → ALIVE                     (all blocks in)
                   MEMORY_SERVING → DISK_SNAPSHOT_RECOVERY    (fault-in error)
                   MEMORY_SERVING → DISK_RECOVERY             (fault-in error)
    The replica tier slots between shared memory and the disk rungs:
    when shm is gone but a sibling replica is alive, blocks stream over
    the wire instead of replaying from local disk:
                   INIT → REPLICA_RECOVERY                    (no shm, replica up)
                   MEMORY_RECOVERY → REPLICA_RECOVERY         (exception)
                   MEMORY_SERVING → REPLICA_RECOVERY          (fault-in error)
                   REPLICA_RECOVERY → ALIVE                   (all blocks pulled)
                   REPLICA_RECOVERY → DISK_SNAPSHOT_RECOVERY  (wire fault)
                   REPLICA_RECOVERY → DISK_RECOVERY           (wire fault)
(c) table backup:  ALIVE → PREPARE → COPY_TO_SHM → DONE
    (PREPARE rejects new requests, kills deletes in progress, waits for
    adds/queries in flight, flushes data to disk)
(d) table restore: identical shape to (b).

:class:`StateMachine` enforces that *only* the drawn transitions happen;
anything else raises :class:`~repro.errors.StateError`, which is the
property test target for invariant 6.
"""

from __future__ import annotations

from enum import Enum
from typing import Generic, TypeVar

from repro.errors import StateError


class LeafBackupState(Enum):
    ALIVE = "alive"
    COPY_TO_SHM = "copy_to_shm"
    EXIT = "exit"


class LeafRestoreState(Enum):
    INIT = "init"
    MEMORY_RECOVERY = "memory_recovery"
    #: Block directory published; queries fault blocks in on demand
    #: while the background sweep fills the remainder.
    MEMORY_SERVING = "memory_serving"
    #: Sealed blocks streaming over the wire from a sibling replica.
    REPLICA_RECOVERY = "replica_recovery"
    DISK_SNAPSHOT_RECOVERY = "disk_snapshot_recovery"
    DISK_RECOVERY = "disk_recovery"
    ALIVE = "alive"


class TableBackupState(Enum):
    ALIVE = "alive"
    PREPARE = "prepare"
    COPY_TO_SHM = "copy_to_shm"
    DONE = "done"


class TableRestoreState(Enum):
    INIT = "init"
    MEMORY_RECOVERY = "memory_recovery"
    REPLICA_RECOVERY = "replica_recovery"
    DISK_SNAPSHOT_RECOVERY = "disk_snapshot_recovery"
    DISK_RECOVERY = "disk_recovery"
    ALIVE = "alive"


S = TypeVar("S", bound=Enum)


class StateMachine(Generic[S]):
    """A state holder that only permits an explicit transition set."""

    def __init__(
        self,
        initial: S,
        transitions: dict[S, set[S]],
        terminal: set[S],
    ) -> None:
        self._state = initial
        self._transitions = transitions
        self._terminal = terminal
        self.history: list[S] = [initial]

    @property
    def state(self) -> S:
        return self._state

    @property
    def is_terminal(self) -> bool:
        return self._state in self._terminal

    def can_transition(self, target: S) -> bool:
        return target in self._transitions.get(self._state, set())

    def transition(self, target: S) -> S:
        """Move to ``target`` or raise :class:`StateError`."""
        if not self.can_transition(target):
            raise StateError(
                f"{type(self).__name__}: illegal transition "
                f"{self._state.value} → {target.value}"
            )
        self._state = target
        self.history.append(target)
        return target

    def require(self, *states: S) -> None:
        """Raise unless currently in one of ``states`` (action gating)."""
        if self._state not in states:
            allowed = ", ".join(s.value for s in states)
            raise StateError(
                f"{type(self).__name__}: operation requires state in "
                f"[{allowed}], currently {self._state.value}"
            )


class LeafBackupMachine(StateMachine[LeafBackupState]):
    """Figure 5(a)."""

    def __init__(self) -> None:
        super().__init__(
            LeafBackupState.ALIVE,
            {
                LeafBackupState.ALIVE: {LeafBackupState.COPY_TO_SHM},
                LeafBackupState.COPY_TO_SHM: {LeafBackupState.EXIT},
            },
            terminal={LeafBackupState.EXIT},
        )


class LeafRestoreMachine(StateMachine[LeafRestoreState]):
    """Figure 5(b)."""

    def __init__(self) -> None:
        super().__init__(
            LeafRestoreState.INIT,
            {
                LeafRestoreState.INIT: {
                    LeafRestoreState.MEMORY_RECOVERY,
                    LeafRestoreState.REPLICA_RECOVERY,  # no shm, replica up
                    LeafRestoreState.DISK_SNAPSHOT_RECOVERY,  # no shm state
                    LeafRestoreState.DISK_RECOVERY,  # memory recovery disabled
                },
                LeafRestoreState.MEMORY_RECOVERY: {
                    LeafRestoreState.ALIVE,
                    LeafRestoreState.MEMORY_SERVING,  # directory published
                    LeafRestoreState.REPLICA_RECOVERY,  # exception
                    LeafRestoreState.DISK_SNAPSHOT_RECOVERY,  # exception
                    LeafRestoreState.DISK_RECOVERY,  # exception
                },
                LeafRestoreState.MEMORY_SERVING: {
                    LeafRestoreState.ALIVE,  # every block faulted in
                    LeafRestoreState.REPLICA_RECOVERY,  # fault-in error
                    LeafRestoreState.DISK_SNAPSHOT_RECOVERY,  # fault-in error
                    LeafRestoreState.DISK_RECOVERY,  # fault-in error
                },
                LeafRestoreState.REPLICA_RECOVERY: {
                    LeafRestoreState.ALIVE,  # every block pulled off the wire
                    LeafRestoreState.DISK_SNAPSHOT_RECOVERY,  # wire fault
                    LeafRestoreState.DISK_RECOVERY,  # wire fault
                },
                LeafRestoreState.DISK_SNAPSHOT_RECOVERY: {
                    LeafRestoreState.ALIVE,
                    LeafRestoreState.DISK_RECOVERY,  # stale/torn snapshot
                },
                LeafRestoreState.DISK_RECOVERY: {LeafRestoreState.ALIVE},
            },
            terminal={LeafRestoreState.ALIVE},
        )


class TableBackupMachine(StateMachine[TableBackupState]):
    """Figure 5(c) — one extra PREPARE state relative to the leaf."""

    def __init__(self) -> None:
        super().__init__(
            TableBackupState.ALIVE,
            {
                TableBackupState.ALIVE: {TableBackupState.PREPARE},
                TableBackupState.PREPARE: {TableBackupState.COPY_TO_SHM},
                TableBackupState.COPY_TO_SHM: {TableBackupState.DONE},
            },
            terminal={TableBackupState.DONE},
        )


class TableRestoreMachine(StateMachine[TableRestoreState]):
    """Figure 5(d) — identical shape to the leaf restore machine."""

    def __init__(self) -> None:
        super().__init__(
            TableRestoreState.INIT,
            {
                TableRestoreState.INIT: {
                    TableRestoreState.MEMORY_RECOVERY,
                    TableRestoreState.REPLICA_RECOVERY,
                    TableRestoreState.DISK_SNAPSHOT_RECOVERY,
                    TableRestoreState.DISK_RECOVERY,
                },
                TableRestoreState.REPLICA_RECOVERY: {
                    TableRestoreState.ALIVE,
                },
                TableRestoreState.MEMORY_RECOVERY: {
                    TableRestoreState.ALIVE,
                    TableRestoreState.DISK_SNAPSHOT_RECOVERY,
                    TableRestoreState.DISK_RECOVERY,
                },
                TableRestoreState.DISK_SNAPSHOT_RECOVERY: {
                    TableRestoreState.ALIVE,
                    TableRestoreState.DISK_RECOVERY,
                },
                TableRestoreState.DISK_RECOVERY: {TableRestoreState.ALIVE},
            },
            terminal={TableRestoreState.ALIVE},
        )
