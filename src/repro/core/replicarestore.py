"""Serve-while-restoring over the wire: the replica recovery rung, lazily.

:class:`~repro.core.lazyrestore.LazyRestore` publishes a block directory
out of shared memory and faults blocks in on demand.  This module is the
same protocol with the *replica's wire catalog* as the directory and a
:class:`~repro.cluster.replication.ReplicaFetchSession` as the byte
source: the restarting leaf starts serving after one HELLO/CATALOG
round-trip, and each fault-in is a GET/BLOCK exchange + decode + verify
+ adopt, charged to the :class:`MemoryTracker` and bounded by the
machine-wide :class:`FootprintBudget` exactly like the blocking replica
rung's in-flight window.

The ladder position is between the shm tier and the disk rungs: the
engine routes here only when shared memory is unusable, and any wire
fault mid-serving routes the whole leaf down the *local disk* rungs —
``try_replica=False``, a burned session is not retried — with tracker
balances intact and rows added during the serving window carried across.
Crash safety needs no valid-bit dance: this leaf's shm was already
invalid (or absent), and the replica's sealed blocks are pinned by its
session snapshot, so a kill mid-restore leaves nothing half-trusted.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Callable, Iterator

from repro.columnstore.leafmap import LeafMap
from repro.columnstore.rowblock import RowBlock
from repro.core.lazyrestore import RestoreProgress
from repro.core.states import (
    LeafRestoreMachine,
    LeafRestoreState,
    TableRestoreMachine,
    TableRestoreState,
)
from repro.errors import RecoveryError, ReplicaWireError
from repro.shm.metadata import LeafMetadata

if TYPE_CHECKING:
    from repro.cluster.replication import ReplicaFetchSession, WireBlock, WireTable
    from repro.core.engine import RestartEngine, RestartReport


class _WireTableState:
    """Per-table bookkeeping: the wire catalog slice plus adoption slots."""

    def __init__(self, wire: "WireTable") -> None:
        self.wire = wire
        self.machine = TableRestoreMachine()
        self.machine.transition(TableRestoreState.REPLICA_RECOVERY)
        self.pending: dict[int, "WireBlock"] = {
            desc.index: desc for desc in wire.blocks
        }
        self.slots: list[RowBlock | None] = [None] * len(wire.blocks)
        #: Catalog indexes gone for good (expired while pending, or
        #: adopted and then expired) — never fetched, never reinstalled.
        self.dropped: set[int] = set()
        #: Uids this restorer last installed into the table; an installed
        #: uid missing from the table means the block left (expiry).
        self.installed: set[int] = set()
        self.columns: set[str] = set()
        for desc in wire.blocks:
            self.columns.update(desc.columns)

    @property
    def complete(self) -> bool:
        return not self.pending

    def restored_blocks(self) -> list[RowBlock]:
        return [
            block
            for index, block in enumerate(self.slots)
            if block is not None and index not in self.dropped
        ]


class ReplicaRestore:
    """One leaf's in-progress serve-while-restoring *wire* restore.

    Create through :meth:`RestartEngine.begin_lazy_restore`; duck-types
    :class:`~repro.core.lazyrestore.LazyRestore` so the leaf server,
    query executor, and sweeper drive both identically.
    """

    #: The leaf server picks its serving status off this.
    source = "replica"

    def __init__(
        self,
        engine: "RestartEngine",
        leafmap: LeafMap,
        session: "ReplicaFetchSession",
        on_disk_fallback: Callable[[], None] | None,
    ) -> None:
        self._engine = engine
        self._leafmap = leafmap
        self._session: "ReplicaFetchSession | None" = session
        self._on_disk_fallback = on_disk_fallback
        self._lock = threading.RLock()
        self._machine = LeafRestoreMachine()
        self._tables: dict[str, _WireTableState] = {}
        self._order: list[str] = []  # catalog order, the heat tie-break
        self._budget = engine.budget
        self._start = engine.clock.now()
        self._expire_cutoff: int | None = None
        self.done = False
        self.error: BaseException | None = None
        from repro.core.engine import RestartReport

        self.report: "RestartReport" = RestartReport(method=None, lazy=True)
        # Progress counters (all guarded by self._lock).
        self._bytes_total = 0
        self._bytes_restored = 0
        self._blocks_total = 0
        self._blocks_restored = 0
        self._queries_served = 0
        self._bytes_at_first_query: int | None = None

    # ------------------------------------------------------------------
    # Begin: handshake, publish the wire catalog as the directory
    # ------------------------------------------------------------------

    @classmethod
    def begin(
        cls,
        engine: "RestartEngine",
        leafmap: LeafMap,
        on_disk_fallback: Callable[[], None] | None = None,
    ) -> "ReplicaRestore | None":
        """Open a replica session and start serving off its catalog.

        Returns ``None`` when no replica is configured or the handshake
        fails — the caller then falls through to
        :meth:`LazyRestore.begin`, whose blocking ladder retries the
        replica rung (a fresh handshake) before the disk rungs, so a
        flaky-but-alive replica still gets its blocking shot.
        """
        source = engine.replica_source
        if source is None:
            return None
        if len(leafmap):
            raise RecoveryError("restore requires an empty leaf map")
        try:
            engine._fault("replica:handshake")
            session = source()
        except (ReplicaWireError, OSError):
            # Handshake failed; the caller falls through to the blocking
            # ladder, which retries the replica rung and records the
            # reroute on the final report.
            return None
        if session is None:
            return None
        session.fault = engine._fault
        leafmap.drop_column_cache()  # heat counters survive the clear
        self = cls(engine, leafmap, session, on_disk_fallback)
        # This leaf's own shm state, if any, is stale or invalid —
        # begin_lazy_restore only routes here when it is unusable.
        # Discard it through the tracker before serving off the wire.
        if engine.shm_state_exists():
            meta = LeafMetadata.attach(engine.namespace, engine.leaf_id)
            try:
                engine._discard_shm_tracked(meta)
            except Exception:
                meta.close()
                raise
        with self._lock:
            self._machine.transition(LeafRestoreState.REPLICA_RECOVERY)
            try:
                self._publish_directory()
                engine._fault("restore:publish_directory")
            except Exception as exc:
                self._fallback(exc)
                return self
            leafmap.restorer = self
            if all(state.complete for state in self._tables.values()):
                self._finish_replica()
        return self

    def _publish_directory(self) -> None:
        """Index the session catalog and create the (empty) tables.

        No payload moves here — the catalog rode the HELLO reply — so
        the leaf starts serving in one wire round-trip.
        """
        with self._lock:
            assert self._session is not None
            for wire in self._session.tables:
                state = _WireTableState(wire)
                for desc in wire.blocks:
                    self._bytes_total += desc.size
                    self._blocks_total += 1
                self._tables[wire.name] = state
                self._order.append(wire.name)
                table = self._leafmap.create_table(wire.name)
                table.total_rows_ingested = wire.rows_ingested
                table.total_rows_expired = wire.rows_expired
                if state.complete:  # an empty table is restored by definition
                    state.machine.transition(TableRestoreState.ALIVE)
                    self.report.tables += 1
            self.report.bytes_total = self._bytes_total
            self.report.blocks_total = self._blocks_total

    # ------------------------------------------------------------------
    # Fault-in
    # ------------------------------------------------------------------

    def fault_in_query(
        self, table: str, start: int | None, end: int | None
    ) -> int:
        """Fault in the pending blocks a query's scan would touch."""
        with self._lock:
            if self.done:
                return 0
            self._queries_served += 1
            self.report.queries_served_during_restore = self._queries_served
            faulted = 0
            state = self._tables.get(table)
            if state is not None:
                for index in sorted(state.pending):
                    if state.pending[index].overlaps(start, end):
                        try:
                            self._fault_block(state, index)
                        except Exception:
                            if self.done and self.error is None:
                                # The wire fault routed this leaf down
                                # the disk ladder and the ladder
                                # succeeded: the data is fully resident,
                                # so the query proceeds against it.
                                return faulted
                            raise
                        faulted += 1
                self._reconcile(state)
                self._maybe_finish()
            if self._bytes_at_first_query is None:
                self._bytes_at_first_query = self._bytes_restored
                self.report.bytes_restored_at_first_query = (
                    self._bytes_restored
                )
            return faulted

    def sweep_one(self) -> bool:
        """Fetch one pending block over the wire, hottest table first."""
        with self._lock:
            if self.done:
                return False
            state = self._hottest_pending()
            if state is None:
                self._maybe_finish()
                return False
            index = min(state.pending)  # oldest block first within a table
            try:
                self._fault_block(state, index)
            except Exception:
                if self.done and self.error is None:
                    return False  # fell back to disk; nothing left to sweep
                raise
            self._reconcile(state)
            self._maybe_finish()
            return True

    def drain(self) -> None:
        """Fetch everything still pending (a blocking finish)."""
        while self.sweep_one():
            pass

    def _hottest_pending(self) -> _WireTableState | None:
        cache = self._leafmap.column_cache
        heat = cache.column_heat() if cache is not None else {}
        best: _WireTableState | None = None
        best_key: tuple[int, int] | None = None
        for position, name in enumerate(self._order):
            state = self._tables[name]
            if state.complete:
                continue
            score = sum(heat.get(column, 0) for column in state.columns)
            key = (-score, position)
            if best_key is None or key < best_key:
                best, best_key = state, key
        return best

    def _fault_block(self, state: _WireTableState, index: int) -> None:
        """Fetch, decode, verify, and adopt one block (lock held).

        The in-flight window — wire payload and decoded heap copy
        coexisting — is reserved against the machine-wide budget, the
        same invariant the blocking replica rung holds per stream.  Any
        failure (connection drop, torn frame, CRC, decode) routes the
        leaf down the *local disk* ladder via :meth:`_fallback` and
        re-raises; the session is burned, not retried.
        """
        desc = state.pending[index]
        engine = self._engine
        held = 0
        try:
            assert self._session is not None
            payload = self._session.fetch(desc.table, desc.index)
            nbytes = len(payload)
            if self._budget is not None:
                self._budget.acquire(nbytes)
                held = nbytes
            try:
                block = RowBlock.unpack(payload, copy=True)
                block.verify()
            finally:
                if self._budget is not None and held:
                    self._budget.release(held)
        except Exception as exc:
            self._fallback(exc)
            raise
        engine._track_heap_alloc(block.nbytes)
        del state.pending[index]
        state.slots[index] = block
        self._bytes_restored += desc.size
        self._blocks_restored += 1
        self.report.row_blocks += 1
        self.report.rbc_copies += len(block.schema)
        self.report.bytes_copied += block.nbytes
        self.report.rows += block.row_count
        if state.complete:
            state.machine.transition(TableRestoreState.ALIVE)
            self.report.tables += 1
            try:
                engine._fault("replica:adopt")
            except Exception as exc:
                self._fallback(exc)
                raise

    def _reconcile(self, state: _WireTableState) -> None:
        """Reinstall the restored prefix into the live table (lock held).

        Keeps the replica's catalog block order — directory order first,
        then blocks sealed from rows added during the serving window —
        so results stay digest-identical to a blocking replica restore.
        """
        table = self._leafmap.get_table(state.wire.name)
        present = {block.uid for block in table.blocks}
        for index, block in enumerate(state.slots):
            if block is None or index in state.dropped:
                continue
            if block.uid in state.installed and block.uid not in present:
                state.dropped.add(index)
                state.slots[index] = None
        restored = state.restored_blocks()
        table.install_restored_blocks(restored)
        state.installed = {block.uid for block in restored}

    def _maybe_finish(self) -> None:
        if not self.done and all(
            state.complete for state in self._tables.values()
        ):
            self._finish_replica()

    # ------------------------------------------------------------------
    # Expiry during the serving window
    # ------------------------------------------------------------------

    def expire_before(self, cutoff_time: int) -> int:
        """Drop pending blocks entirely older than ``cutoff_time``.

        Never-fetched blocks expire without ever crossing the wire;
        the cutoff is remembered so a later disk fallback re-applies it
        to replayed data.  Returns rows dropped from pending blocks.
        """
        with self._lock:
            if self.done:
                return 0
            if self._expire_cutoff is None or cutoff_time > self._expire_cutoff:
                self._expire_cutoff = cutoff_time
            dropped_rows = 0
            for state in self._tables.values():
                expired = [
                    index
                    for index, desc in state.pending.items()
                    if desc.max_time < cutoff_time
                ]
                if expired:
                    table = self._leafmap.get_table(state.wire.name)
                    for index in expired:
                        desc = state.pending.pop(index)
                        state.dropped.add(index)
                        self._bytes_total -= desc.size
                        self._blocks_total -= 1
                        dropped_rows += desc.row_count
                        table.total_rows_expired += desc.row_count
                    self.report.bytes_total = self._bytes_total
                    self.report.blocks_total = self._blocks_total
                    if state.complete:
                        state.machine.transition(TableRestoreState.ALIVE)
                        self.report.tables += 1
                self._reconcile(state)
            self._maybe_finish()
            return dropped_rows

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def iter_pending(self, table: str | None = None) -> Iterator["WireBlock"]:
        """Yield (a snapshot of) the descriptors not yet fetched."""
        with self._lock:
            names = [table] if table is not None else list(self._order)
            snapshot = [
                state.pending[index]
                for name in names
                if (state := self._tables.get(name)) is not None
                for index in sorted(state.pending)
            ]
        return iter(snapshot)

    def progress(self) -> RestoreProgress:
        with self._lock:
            return RestoreProgress(
                bytes_total=self._bytes_total,
                bytes_restored=self._bytes_restored,
                blocks_total=self._blocks_total,
                blocks_restored=self._blocks_restored,
                queries_served=self._queries_served,
                bytes_restored_at_first_query=self._bytes_at_first_query,
                done=self.done,
                fell_back_to_disk=self.report.fell_back_to_disk,
            )

    # ------------------------------------------------------------------
    # Completion, fallback, abandonment
    # ------------------------------------------------------------------

    def _close_session(self) -> None:
        if self._session is not None:
            self._session.close()
            self._session = None

    def _finish_replica(self) -> None:
        """Every block is home: close the session, go ALIVE (lock held)."""
        engine = self._engine
        self._close_session()
        from repro.core.engine import RecoveryMethod

        self.report.method = RecoveryMethod.REPLICA
        self._machine.transition(LeafRestoreState.ALIVE)
        engine._finish_report(self.report, self._machine, self._start)
        self._leafmap.restorer = None
        self.done = True

    def _fallback(self, exc: BaseException) -> None:
        """Route the leaf down the local disk ladder after a wire fault.

        All-or-nothing, the blocking replica rung's rule: every adopted
        block leaves the heap through the tracker, the attempt counters
        move to ``replica_attempt_*``, and the disk rungs replay into a
        scratch map that is grafted *under* rows added during the
        serving window.  ``try_replica=False`` — a burned session is
        never retried.
        """
        from repro.core.engine import RestartReport

        engine = self._engine
        leafmap = self._leafmap
        with self._lock:
            if self.done:
                return
            self._close_session()
            # Partial-attempt accounting survives on the final report.
            attempt = self.report
            report = RestartReport(
                method=None,
                lazy=True,
                fell_back_to_disk=True,
                fell_back_from_replica=True,
                replica_attempt_row_blocks=attempt.row_blocks,
                replica_attempt_bytes=attempt.bytes_copied,
                failure_reason=f"{type(exc).__name__}: {exc}",
                bytes_total=self._bytes_total,
                queries_served_during_restore=self._queries_served,
                bytes_restored_at_first_query=self._bytes_at_first_query,
            )
            self.report = report
            # Pull adopted blocks back out of the live tables, keeping
            # the data that arrived during the serving window: blocks
            # sealed from new adds and the open write buffers stay.
            for state in self._tables.values():
                if state.wire.name not in leafmap:
                    continue
                table = leafmap.get_table(state.wire.name)
                adopted_uids = {
                    block.uid for block in state.slots if block is not None
                }
                adopted_bytes = sum(
                    block.nbytes for block in state.slots if block is not None
                )
                tail = [
                    block
                    for block in table.blocks
                    if block.uid not in adopted_uids
                ]
                table.replace_blocks(tail)
                if adopted_bytes:
                    engine._track_heap_free(adopted_bytes)
                state.slots = [None] * len(state.slots)
                state.installed = set()
            leafmap.restorer = None
            if self._on_disk_fallback is not None:
                self._on_disk_fallback()
            # Replay into a scratch map, then graft the replayed blocks
            # *under* each live table's new data — the replayed rows are
            # strictly older, so directory order is preserved.
            scratch = LeafMap(clock=engine.clock)
            try:
                engine._recover_from_disk(
                    scratch, report, self._machine, try_replica=False
                )
            except Exception as ladder_exc:
                self.error = ladder_exc
                self.done = True
                raise
            for recovered in scratch:
                table = leafmap.get_or_create(recovered.name)
                table.install_restored_blocks(recovered.blocks)
                if self._expire_cutoff is not None:
                    table.expire_before(self._expire_cutoff)
            self._machine.transition(LeafRestoreState.ALIVE)
            engine._finish_report(report, self._machine, self._start)
            self.done = True

    def abandon(self) -> None:
        """Drop the session without consuming anything (crash path).

        Nothing half-trusted is left behind: this leaf had no valid shm
        to begin with, so the next boot walks the ladder from the top.
        """
        with self._lock:
            if self.done:
                return
            self._close_session()
            self._leafmap.restorer = None
            self.done = True


__all__ = ["ReplicaRestore"]
