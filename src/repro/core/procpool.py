"""The process-pool restart backend: one GIL per copy stream.

The thread backend's copies are pure-Python ``memoryview`` writes, so no
matter how many workers the pool has, the GIL admits roughly one memcpy
stream at a time.  This module fans a machine's leaves over *forked
worker processes* instead: each worker inherits the coordinator's leaf
objects copy-on-write, attaches the machine's named shm segments with
``ShmSegment.attach``, and runs its assigned leaves' shutdown or restore
with its own interpreter — the streams are truly concurrent, bounded
only by memory bandwidth and the shared footprint budget.

Phase mechanics:

- **shutdown**: the worker runs the real ``leaf.shutdown(use_shm=True)``
  against its copy of the heap and exits.  Exactly like a real leaf
  process shutting down, the process's heap dies with it and the named
  segments (valid bit last) are what survive.  The coordinator then
  calls ``leaf.absorb_process_shutdown()`` on its stand-in objects.
- **restore**: the worker attaches each leaf's segments and restores
  into a scratch leaf map with ``preserve_shm=True`` — every block is
  decoded, verified, and bulk-copied into the worker's heap (the full
  Figure 7 copy cost), the valid bit is set back to True, and the
  segments are kept for the serving process to adopt.  A worker killed
  mid-restore leaves the valid bit down, so that leaf's next start
  walks the disk ladder; see ``ParallelRestartCoordinator.adopt_all``.

Results are marshalled back over a pipe per worker, one message per
leaf, so a worker death loses only the outcomes it had not yet sent.
The coordinator converts missing outcomes into failed
:class:`~repro.core.parallel.RestartOutcome`\\ s carrying
:class:`~repro.errors.WorkerCrashedError`, and tells the shared budget
to reclaim anything the corpse still held.

Fork, not spawn: leaf objects (locks, clocks, fault hooks and all) cross
into the worker by address-space copy, and the shared budget's
``multiprocessing`` condition is inherited rather than pickled.  That is
also why this backend refuses to run where fork is unavailable.
"""

from __future__ import annotations

import multiprocessing
import time
from multiprocessing.connection import wait as connection_wait
from typing import TYPE_CHECKING, Sequence

from repro.columnstore.leafmap import LeafMap
from repro.core.parallel import RestartOutcome
from repro.core.watchdog import CooperativeDeadline
from repro.errors import ReproError, WorkerCrashedError

if TYPE_CHECKING:
    from repro.server.leaf import LeafServer

#: How long the coordinator waits for worker traffic before concluding
#: every still-silent worker is wedged.  Generous: the per-leaf shutdown
#: deadline (3 minutes in the paper) governs the workers themselves.
DEFAULT_JOIN_TIMEOUT_SECONDS = 300.0


def require_fork_context() -> multiprocessing.context.BaseContext:
    """The fork context, or a clear error where fork does not exist."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - non-POSIX platforms
        raise ReproError(
            "the process restart backend needs fork-based multiprocessing"
        ) from exc


def partition_leaves(count: int, workers: int) -> list[list[int]]:
    """Split ``count`` leaf indexes into at most ``workers`` round-robin
    shares.  Round-robin, not contiguous chunks: neighbouring leaves are
    often similar sizes, and striping spreads them evenly."""
    workers = max(1, min(workers, count))
    shares: list[list[int]] = [[] for _ in range(workers)]
    for index in range(count):
        shares[index % workers].append(index)
    return shares


def _run_one(
    leaf: "LeafServer",
    phase: str,
    use_shm: bool,
    memory_recovery_enabled: bool,
    deadline_seconds: float | None,
    serve_while_restoring: bool,
):
    if phase == "shutdown":
        deadline = (
            CooperativeDeadline(timeout=deadline_seconds, clock=leaf.clock)
            if deadline_seconds is not None
            else None
        )
        return leaf.shutdown(use_shm=use_shm, deadline=deadline)
    # Restore into a scratch map: this address space is transient, the
    # point is the verified parallel copy and the re-armed valid bit.
    scratch = LeafMap(clock=leaf.clock, rows_per_block=leaf.rows_per_block)
    if serve_while_restoring:
        # Drain a lazy restore instead of the blocking block walk: same
        # bytes, same per-block verify, but through the directory-publish
        # + hottest-first machinery — so the lazy path (and its progress
        # counters, marshalled home in the report) runs cross-process.
        handle = leaf.engine.begin_lazy_restore(
            scratch,
            memory_recovery_enabled=memory_recovery_enabled,
            preserve_shm=True,
        )
        handle.drain()
        return handle.report
    return leaf.engine.restore(
        scratch,
        memory_recovery_enabled=memory_recovery_enabled,
        preserve_shm=True,
    )


def _worker_main(
    conn,
    leaves: "Sequence[LeafServer]",
    indices: Sequence[int],
    phase: str,
    use_shm: bool,
    memory_recovery_enabled: bool,
    deadline_seconds: float | None,
    serve_while_restoring: bool,
) -> None:
    """Worker body (runs in the forked child)."""
    for index in indices:
        leaf = leaves[index]
        started = time.perf_counter()
        try:
            report = _run_one(
                leaf,
                phase,
                use_shm,
                memory_recovery_enabled,
                deadline_seconds,
                serve_while_restoring,
            )
            conn.send(
                (index, report, None, time.perf_counter() - started)
            )
        except Exception as exc:
            conn.send(
                (
                    index,
                    None,
                    f"{type(exc).__name__}: {exc}",
                    time.perf_counter() - started,
                )
            )
    conn.close()


def run_process_phase(
    leaves: "Sequence[LeafServer]",
    phase: str,
    max_workers: int,
    budget=None,
    use_shm: bool = True,
    memory_recovery_enabled: bool = True,
    deadline_seconds: float | None = None,
    serve_while_restoring: bool = False,
    join_timeout: float = DEFAULT_JOIN_TIMEOUT_SECONDS,
) -> list[RestartOutcome]:
    """Run one phase of the parallel restart across forked workers.

    Returns one :class:`RestartOutcome` per leaf, in leaf order; never
    raises for per-leaf or per-worker failures.  A leaf whose worker
    died before reporting gets a failed outcome with
    :class:`WorkerCrashedError`, and the budget (when it supports
    ``reclaim_process``) recovers whatever the corpse had in flight.
    """
    if phase not in ("shutdown", "restore"):
        raise ValueError(f"unknown process phase {phase!r}")
    ctx = require_fork_context()
    leaves = list(leaves)
    shares = partition_leaves(len(leaves), max_workers)

    # Install the budget pre-fork so every worker inherits it on the
    # engines themselves — the same seam the thread backend uses.
    for leaf in leaves:
        leaf.engine.budget = budget
    jobs = []  # (receiver, process, indices)
    try:
        for indices in shares:
            receiver, sender = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    sender,
                    leaves,
                    indices,
                    phase,
                    use_shm,
                    memory_recovery_enabled,
                    deadline_seconds,
                    serve_while_restoring,
                ),
            )
            proc.start()
            sender.close()  # the child's copy keeps the pipe open
            jobs.append((receiver, proc, indices))
    finally:
        for leaf in leaves:
            leaf.engine.budget = None

    results: dict[int, tuple] = {}
    pid_by_receiver = {receiver: proc.pid for receiver, proc, _ in jobs}
    pending = {receiver for receiver, _, _ in jobs}
    deadline = time.monotonic() + join_timeout
    while pending:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            break  # wedged workers are handled as crashes below
        for receiver in connection_wait(list(pending), timeout=remaining):
            try:
                index, report, error, seconds = receiver.recv()
            except EOFError:
                pending.discard(receiver)
                receiver.close()
                continue
            results[index] = (report, error, seconds, pid_by_receiver[receiver])

    by_index: dict[int, RestartOutcome] = {}
    for receiver, proc, indices in jobs:
        # A worker wedged past the collection deadline leaves its
        # receiver in `pending` without an EOF; close unconditionally
        # (idempotent) so a crashed phase cannot leak pipe fds.
        receiver.close()
        proc.join(timeout=5.0)
        if proc.is_alive():  # wedged past the join timeout: treat as dead
            proc.kill()
            proc.join()
        if proc.exitcode != 0 and budget is not None:
            reclaim = getattr(budget, "reclaim_process", None)
            if reclaim is not None:
                reclaim(proc.pid)
        for index in indices:
            leaf = leaves[index]
            if index in results:
                report, error, seconds, pid = results[index]
                by_index[index] = RestartOutcome(
                    leaf.leaf_id,
                    report=report,
                    error=ReproError(error) if error else None,
                    duration_seconds=seconds,
                    worker_pid=pid,
                )
            else:
                by_index[index] = RestartOutcome(
                    leaf.leaf_id,
                    error=WorkerCrashedError(
                        f"worker pid {proc.pid} (exit code {proc.exitcode}) "
                        f"died before finishing {phase} of leaf {leaf.leaf_id}"
                    ),
                    worker_pid=proc.pid,
                )
    return [by_index[index] for index in range(len(leaves))]


__all__ = [
    "DEFAULT_JOIN_TIMEOUT_SECONDS",
    "partition_leaves",
    "require_fork_context",
    "run_process_phase",
]
