"""Shutdown watchdogs.

The deploy script "waits in a loop for the leaf server process to die.
Usually, the leaf copies its data to shared memory and exits in 3-4
seconds.  However, the loop ensures that we kill the leaf server if it
has not shut down after 3 minutes.  If the old leaf server is killed, the
new leaf server will restart from disk." (paper, Section 4.3)

Two forms are provided:

- :func:`wait_or_kill` for real subprocess leaves (the examples), and
- :class:`CooperativeDeadline` for in-process engines: the restart
  engine polls it between row-block-column copies and aborts — leaving
  the valid bit false — when the deadline passes, which is how the
  kill's effect (disk fallback on next start) is exercised in tests.
"""

from __future__ import annotations

import subprocess

from repro.errors import ShutdownTimeout
from repro.util.clock import Clock, SystemClock

#: The paper's kill deadline for a clean shutdown.
DEFAULT_SHUTDOWN_DEADLINE_SECONDS = 180.0


def wait_or_kill(
    process: subprocess.Popen,
    timeout: float = DEFAULT_SHUTDOWN_DEADLINE_SECONDS,
) -> bool:
    """Wait for a leaf process to exit; kill it after ``timeout``.

    Returns True if the process exited on its own (shared memory state
    is trustworthy if it set the valid bit), False if it was killed (the
    valid bit will still be false, so the replacement restarts from
    disk).
    """
    try:
        process.wait(timeout=timeout)
        return True
    except subprocess.TimeoutExpired:
        process.kill()
        process.wait()
        return False


class CooperativeDeadline:
    """A deadline the shutdown loop checks between copies."""

    def __init__(
        self,
        timeout: float = DEFAULT_SHUTDOWN_DEADLINE_SECONDS,
        clock: Clock | None = None,
    ) -> None:
        if timeout <= 0:
            raise ValueError(f"deadline timeout must be positive, got {timeout}")
        self._clock = clock or SystemClock()
        self._deadline = self._clock.now() + timeout

    @property
    def remaining(self) -> float:
        return self._deadline - self._clock.now()

    @property
    def expired(self) -> bool:
        return self.remaining <= 0

    def check(self) -> None:
        """Raise :class:`ShutdownTimeout` once the deadline has passed."""
        if self.expired:
            raise ShutdownTimeout(
                "clean shutdown overran its deadline; the deploy script "
                "kills the leaf and the replacement will restart from disk"
            )
