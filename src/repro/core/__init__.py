"""The paper's contribution: restarts via shared memory (Section 4).

:class:`RestartEngine` implements the shutdown procedure of Figure 6 and
the restore procedure of Figure 7 over the state machines of Figure 5,
with the valid-bit commit protocol, gradual one-row-block-column-at-a-time
copying (Section 4.4), layout version checks, and automatic fallback to
disk recovery whenever shared memory state is absent, invalid, or from an
incompatible layout.
"""

from repro.core.engine import RecoveryMethod, RestartEngine, RestartReport
from repro.core.parallel import (
    FootprintBudget,
    ParallelRestartCoordinator,
    ParallelRestartReport,
    RestartOutcome,
)
from repro.core.sharedbudget import SharedFootprintBudget
from repro.core.states import (
    LeafBackupMachine,
    LeafBackupState,
    LeafRestoreMachine,
    LeafRestoreState,
    StateMachine,
    TableBackupMachine,
    TableBackupState,
    TableRestoreMachine,
    TableRestoreState,
)
from repro.core.watchdog import CooperativeDeadline, wait_or_kill

__all__ = [
    "CooperativeDeadline",
    "FootprintBudget",
    "LeafBackupMachine",
    "LeafBackupState",
    "LeafRestoreMachine",
    "LeafRestoreState",
    "ParallelRestartCoordinator",
    "ParallelRestartReport",
    "RecoveryMethod",
    "RestartEngine",
    "RestartOutcome",
    "RestartReport",
    "SharedFootprintBudget",
    "StateMachine",
    "TableBackupMachine",
    "TableBackupState",
    "TableRestoreMachine",
    "TableRestoreState",
    "wait_or_kill",
]
