"""Parallel restart: a machine's leaves through shutdown/restore at once.

The paper restarts one leaf per machine at a time during rollover so the
other seven keep serving queries (§4.5), but after a *planned machine
event* — kernel upgrade, host move, power-down — every leaf must restart
together, and doing them sequentially multiplies the 3–4 s per-leaf copy
window by eight.  This module fans the leaves of one machine over a
thread pool while keeping the Section 4.4 footprint claim true
*machine-wide*: the combined in-flight bytes of all concurrent copies are
capped by a :class:`FootprintBudget`, so the machine's peak stays at

    data + budgeted in-flight copy windows + metadata

rather than growing by one full table segment per concurrent leaf.

Two backends share that contract.  ``backend="thread"`` (the default)
fans the leaves over a thread pool: cheap, in-process, but the bulk
copies are pure-Python ``memoryview`` writes that hold the GIL, so the
streams largely serialize.  ``backend="process"`` forks a worker-process
pool — each worker attaches the machine's *named* shm segments with
``ShmSegment.attach`` and runs its leaves' copies under its own GIL, so
the streams are truly concurrent; the footprint invariant then has to
hold across address spaces, which is what
:class:`~repro.core.sharedbudget.SharedFootprintBudget` is for (see
:mod:`repro.core.procpool`).  The per-leaf protocol is untouched either
way — the coordinator only decides *when* and *where* each leaf's
existing ``backup_to_shm``/``restore`` runs, so every single-leaf
invariant (valid bit last, disk fallback on exception) holds unchanged,
and one leaf's failure never poisons its siblings.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.core.watchdog import CooperativeDeadline

if TYPE_CHECKING:  # circular at runtime: engine imports FootprintBudget
    from repro.core.engine import RestartReport
    from repro.core.sharedbudget import SharedFootprintBudget
    from repro.server.leaf import LeafServer


class FootprintBudget:
    """A byte budget shared by every copy in flight on one machine.

    ``acquire(n)`` blocks until ``n`` more in-flight bytes fit under the
    limit.  One special case keeps progress guaranteed: a request larger
    than the whole budget (a single table bigger than the cap) is
    admitted when nothing else is in flight — it runs alone, which is the
    tightest bound any scheduler could give it.  Without that rule a
    machine whose largest table exceeds the budget would deadlock.

    Admission is FIFO, by ticket.  ``release`` wakes every waiter, so
    without an ordering an oversized request (which needs the budget
    empty) could lose the race to freshly-arrived small requests forever
    — each small admission keeps the budget non-empty and the oversized
    waiter starves.  With tickets, once the oversized request is at the
    head of the line nothing can be admitted past it, so the budget
    drains and it runs.
    """

    def __init__(self, limit_bytes: int) -> None:
        if limit_bytes <= 0:
            raise ValueError(f"budget must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self._cond = threading.Condition()
        self._in_flight = 0
        self._next_ticket = 0
        self._now_serving = 0
        self._abandoned: set[int] = set()
        self.peak_in_flight = 0
        self.blocked_acquires = 0

    def _admissible(self, nbytes: int) -> bool:
        if self._in_flight + nbytes <= self.limit_bytes:
            return True
        # Oversized request: admit only into an empty budget.
        return self._in_flight == 0

    def _served(self, ticket: int, nbytes: int) -> bool:
        return self._now_serving == ticket and self._admissible(nbytes)

    def _advance(self) -> None:
        """Skip tickets whose holders gave up waiting (exception in wait)."""
        while self._now_serving in self._abandoned:
            self._abandoned.discard(self._now_serving)
            self._now_serving += 1

    def acquire(self, nbytes: int) -> None:
        """Block until ``nbytes`` of in-flight copy space is available
        and every earlier acquire has been admitted."""
        if nbytes < 0:
            raise ValueError(f"cannot acquire a negative size ({nbytes})")
        with self._cond:
            ticket = self._next_ticket
            self._next_ticket += 1
            if not self._served(ticket, nbytes):
                self.blocked_acquires += 1
                try:
                    while not self._served(ticket, nbytes):
                        self._cond.wait()
                except BaseException:
                    self._abandoned.add(ticket)
                    self._advance()
                    self._cond.notify_all()
                    raise
            self._now_serving = ticket + 1
            self._advance()
            self._in_flight += nbytes
            if self._in_flight > self.peak_in_flight:
                self.peak_in_flight = self._in_flight
            # The next ticket may be admissible right away (small request
            # behind a small admission); wake the line to check.
            self._cond.notify_all()

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget, waking blocked acquirers."""
        with self._cond:
            if nbytes < 0 or nbytes > self._in_flight:
                raise ValueError(
                    f"releasing {nbytes} bytes with {self._in_flight} in flight"
                )
            self._in_flight -= nbytes
            self._cond.notify_all()

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @contextmanager
    def reserve(self, nbytes: int) -> Iterator[None]:
        self.acquire(nbytes)
        try:
            yield
        finally:
            self.release(nbytes)

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"FootprintBudget(limit={self.limit_bytes}, "
                f"in_flight={self._in_flight}, peak={self.peak_in_flight})"
            )


@dataclass
class RestartOutcome:
    """One leaf's result from a parallel phase."""

    leaf_id: str
    report: "RestartReport | None" = None
    error: BaseException | None = None
    duration_seconds: float = 0.0
    #: Pid of the worker process that ran this leaf (process backend only).
    worker_pid: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ParallelRestartReport:
    """What one machine-wide parallel restart did."""

    workers: int
    backend: str = "thread"
    shutdown: list[RestartOutcome] = field(default_factory=list)
    restore: list[RestartOutcome] = field(default_factory=list)
    shutdown_seconds: float = 0.0
    restore_seconds: float = 0.0
    #: Process backend only: the sequential re-adoption of restored
    #: segments into the coordinating process, a simulation shim that a
    #: real restart (where the *new* process simply is the restored one)
    #: does not pay.  Kept out of ``restart_window_seconds``.
    adopt_seconds: float = 0.0
    peak_in_flight_bytes: int = 0
    #: True when the restore phase returned at directory-publish time
    #: (serve-while-restoring) rather than after the last byte; the
    #: restart window then measures time-to-serving, and per-leaf
    #: reports carry restored-bytes-vs-served-queries counters.
    serve_while_restoring: bool = False

    @property
    def restart_window_seconds(self) -> float:
        """The paper's unavailability window: shutdown + restore."""
        return self.shutdown_seconds + self.restore_seconds

    @property
    def wall_seconds(self) -> float:
        return self.shutdown_seconds + self.restore_seconds + self.adopt_seconds

    @property
    def failures(self) -> list[RestartOutcome]:
        return [o for o in self.shutdown + self.restore if not o.ok]


class ParallelRestartCoordinator:
    """Drives many leaves' shutdown/restore concurrently.

    Parameters
    ----------
    leaves:
        The :class:`~repro.server.leaf.LeafServer` instances of one
        machine.
    max_workers:
        Pool width; defaults to one worker per leaf (the
        leaves-per-machine fan-out of §2).
    budget:
        Optional machine-wide in-flight byte cap — a budget object or a
        plain byte count (which builds the right budget class for the
        backend).  Installed on every leaf's engine for the duration of
        each phase, so the engines' copy windows queue against one
        shared limit.
    backend:
        ``"thread"`` (default) fans the leaves over a thread pool in
        this process; ``"process"`` forks a worker-process pool so the
        bulk copies run as truly concurrent memcpy streams, one GIL per
        worker.  The process backend requires a
        :class:`~repro.core.sharedbudget.SharedFootprintBudget` (or an
        int) for ``budget``: a thread-local budget is invisible across
        the fork.
    """

    def __init__(
        self,
        leaves: "Sequence[LeafServer]",
        max_workers: int | None = None,
        budget: "FootprintBudget | SharedFootprintBudget | int | None" = None,
        backend: str = "thread",
    ) -> None:
        if not leaves:
            raise ValueError("a coordinator needs at least one leaf")
        if backend not in ("thread", "process"):
            raise ValueError(f"unknown restart backend {backend!r}")
        self.leaves = list(leaves)
        self.backend = backend
        if max_workers is None:
            max_workers = len(self.leaves)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = min(max_workers, len(self.leaves))
        if isinstance(budget, int):
            if backend == "process":
                from repro.core.sharedbudget import SharedFootprintBudget

                budget = SharedFootprintBudget(budget)
            else:
                budget = FootprintBudget(budget)
        elif backend == "process" and isinstance(budget, FootprintBudget):
            raise ValueError(
                "the process backend needs a SharedFootprintBudget; a "
                "FootprintBudget's condition variable is invisible to "
                "forked workers"
            )
        self.budget = budget

    # ------------------------------------------------------------------
    # Fan-out machinery
    # ------------------------------------------------------------------

    def _run_phase(
        self, fn: "Callable[[LeafServer], RestartReport | None]"
    ) -> list[RestartOutcome]:
        """Apply ``fn`` to every leaf concurrently; never raises.

        Exceptions are captured per leaf — a shutdown that overruns its
        deadline or a restore that dies even on its disk fallback shows
        up as a failed :class:`RestartOutcome` while its siblings finish
        normally.
        """
        for leaf in self.leaves:
            leaf.engine.budget = self.budget

        def one(leaf: "LeafServer") -> RestartOutcome:
            started = time.perf_counter()
            try:
                report = fn(leaf)
                return RestartOutcome(
                    leaf.leaf_id,
                    report=report,
                    duration_seconds=time.perf_counter() - started,
                )
            except Exception as exc:
                return RestartOutcome(
                    leaf.leaf_id,
                    error=exc,
                    duration_seconds=time.perf_counter() - started,
                )

        try:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(one, self.leaves))
        finally:
            for leaf in self.leaves:
                leaf.engine.budget = None

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def shutdown_all(
        self,
        use_shm: bool = True,
        deadline_seconds: float | None = None,
    ) -> list[RestartOutcome]:
        """Shut every leaf down (to shared memory by default) in parallel.

        Each leaf gets its *own* deadline of ``deadline_seconds`` — the
        operational contract is per leaf ("we kill the leaf server if it
        has not shut down after 3 minutes"), not per machine.
        """
        if self.backend == "process":
            from repro.core import procpool

            outcomes = procpool.run_process_phase(
                self.leaves,
                "shutdown",
                max_workers=self.max_workers,
                budget=self.budget,
                use_shm=use_shm,
                deadline_seconds=deadline_seconds,
            )
            # The worker processes are gone; their heaps went with them.
            # Fold what each worker did back into the coordinator's leaf
            # objects (status DOWN, heap dropped, manifest reloaded).
            for leaf, outcome in zip(self.leaves, outcomes):
                leaf.absorb_process_shutdown(outcome.report)
            return outcomes

        def one(leaf: "LeafServer") -> "RestartReport | None":
            deadline = (
                CooperativeDeadline(timeout=deadline_seconds, clock=leaf.clock)
                if deadline_seconds is not None
                else None
            )
            return leaf.shutdown(use_shm=use_shm, deadline=deadline)

        return self._run_phase(one)

    def restore_all(
        self,
        memory_recovery_enabled: bool = True,
        serve_while_restoring: bool = False,
    ) -> list[RestartOutcome]:
        """Process backend only: every worker attaches its leaves' named
        segments and restores them (decode + verify) in its own address
        space, leaving the segments valid for the new serving process to
        adopt.  This is the parallel half of the restore; :meth:`adopt_all`
        is the sequential handoff shim.  ``serve_while_restoring`` makes
        each worker drain a *lazy* restore (directory publish, then
        hottest-first fault-in) instead of the blocking block walk — same
        bytes, same verification, and the per-leaf reports carry the lazy
        progress counters across the process boundary."""
        if self.backend != "process":
            raise ValueError("restore_all is a process-backend phase")
        from repro.core import procpool

        return procpool.run_process_phase(
            self.leaves,
            "restore",
            max_workers=self.max_workers,
            budget=self.budget,
            memory_recovery_enabled=memory_recovery_enabled,
            serve_while_restoring=serve_while_restoring,
        )

    def adopt_all(
        self,
        memory_recovery_enabled: bool = True,
        serve_while_restoring: bool = False,
    ) -> list[RestartOutcome]:
        """Bring every leaf up in the coordinating process, sequentially.

        In a real deployment the restored worker *is* the new leaf
        process and this step does not exist; here the benchmark harness
        and the data plane live in the coordinator, so each leaf's
        (still-valid) segments are consumed by a plain ``start()``.  A
        leaf whose worker died mid-restore has its valid bit down and
        walks the disk ladder here — the crash never wedges adoption.

        With ``serve_while_restoring=True`` each ``start()`` returns at
        directory-publish time and the leaves fill in behind their
        background sweeps — call :meth:`wait_restored_all` to drain.
        """

        def one(leaf: "LeafServer") -> RestartOutcome:
            started = time.perf_counter()
            # Install the budget for the duration of the start call; a
            # lazy restore captures it at begin, so clearing it after
            # start() returns does not strip the background sweep.
            leaf.engine.budget = self.budget
            try:
                report = leaf.start(
                    memory_recovery_enabled=memory_recovery_enabled,
                    serve_while_restoring=serve_while_restoring,
                )
                return RestartOutcome(
                    leaf.leaf_id,
                    report=report,
                    duration_seconds=time.perf_counter() - started,
                )
            except Exception as exc:
                return RestartOutcome(
                    leaf.leaf_id,
                    error=exc,
                    duration_seconds=time.perf_counter() - started,
                )
            finally:
                leaf.engine.budget = None

        return [one(leaf) for leaf in self.leaves]

    def start_all(
        self,
        memory_recovery_enabled: bool = True,
        serve_while_restoring: bool = False,
    ) -> list[RestartOutcome]:
        """Boot every leaf (shared memory first, disk fallback).

        Thread backend: the leaves restore concurrently in this process.
        Process backend: the worker pool restores (in parallel) and the
        coordinator then adopts each leaf; the returned outcomes are the
        workers' — an adoption failure replaces the outcome's error.

        ``serve_while_restoring=True`` brings every leaf to *serving*
        instead of *restored*: each start returns at directory publish.
        On the process backend the worker restore phase is skipped
        entirely — a redundant full copy, since the coordinator's lazy
        adoption re-reads the still-valid segments anyway — so the
        unavailability window collapses to the shutdown phase plus the
        per-leaf directory publish.
        """
        if self.backend == "process":
            if serve_while_restoring:
                return self.adopt_all(
                    memory_recovery_enabled=memory_recovery_enabled,
                    serve_while_restoring=True,
                )
            outcomes = self.restore_all(
                memory_recovery_enabled=memory_recovery_enabled
            )
            adopted = self.adopt_all(
                memory_recovery_enabled=memory_recovery_enabled
            )
            for outcome, adoption in zip(outcomes, adopted):
                if outcome.ok and not adoption.ok:
                    outcome.error = adoption.error
            return outcomes
        return self._run_phase(
            lambda leaf: leaf.start(
                memory_recovery_enabled=memory_recovery_enabled,
                serve_while_restoring=serve_while_restoring,
            )
        )

    def wait_restored_all(
        self, timeout: float | None = None
    ) -> list["RestartReport | None"]:
        """Drain every leaf's serve-while-restoring sweep; returns the
        final per-leaf reports (see ``LeafServer.wait_restored``)."""
        return [leaf.wait_restored(timeout=timeout) for leaf in self.leaves]

    def restart_all(
        self,
        use_shm: bool = True,
        memory_recovery_enabled: bool = True,
        deadline_seconds: float | None = None,
        adopt: bool = True,
        serve_while_restoring: bool = False,
    ) -> ParallelRestartReport:
        """The full cycle: parallel shutdown, then parallel restore.

        The two phases are separated by a barrier, mirroring a real
        machine event: every old process must be gone before the new
        binary's processes come up and attach.  For the process backend
        the restore phase's workers leave the segments adopted valid;
        ``adopt`` then folds them into the coordinator (timed separately
        as ``adopt_seconds`` — a harness artifact, not part of the
        restart window).

        With ``serve_while_restoring=True`` the restore phase ends when
        every leaf is *serving* (directory published, fault-in armed),
        so ``restart_window_seconds`` measures time-to-availability;
        the bytes finish in the background (``wait_restored_all``).
        """
        report = ParallelRestartReport(
            workers=self.max_workers,
            backend=self.backend,
            serve_while_restoring=serve_while_restoring,
        )
        started = time.perf_counter()
        report.shutdown = self.shutdown_all(
            use_shm=use_shm, deadline_seconds=deadline_seconds
        )
        report.shutdown_seconds = time.perf_counter() - started
        started = time.perf_counter()
        if self.backend == "process" and not serve_while_restoring:
            report.restore = self.restore_all(
                memory_recovery_enabled=memory_recovery_enabled
            )
            report.restore_seconds = time.perf_counter() - started
            if adopt:
                started = time.perf_counter()
                adopted = self.adopt_all(
                    memory_recovery_enabled=memory_recovery_enabled
                )
                report.adopt_seconds = time.perf_counter() - started
                for outcome, adoption in zip(report.restore, adopted):
                    if outcome.ok and not adoption.ok:
                        outcome.error = adoption.error
        else:
            report.restore = self.start_all(
                memory_recovery_enabled=memory_recovery_enabled,
                serve_while_restoring=serve_while_restoring,
            )
            report.restore_seconds = time.perf_counter() - started
        if self.budget is not None:
            report.peak_in_flight_bytes = self.budget.peak_in_flight
        return report
