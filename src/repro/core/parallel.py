"""Parallel restart: a machine's leaves through shutdown/restore at once.

The paper restarts one leaf per machine at a time during rollover so the
other seven keep serving queries (§4.5), but after a *planned machine
event* — kernel upgrade, host move, power-down — every leaf must restart
together, and doing them sequentially multiplies the 3–4 s per-leaf copy
window by eight.  This module fans the leaves of one machine over a
thread pool while keeping the Section 4.4 footprint claim true
*machine-wide*: the combined in-flight bytes of all concurrent copies are
capped by a :class:`FootprintBudget`, so the machine's peak stays at

    data + budgeted in-flight copy windows + metadata

rather than growing by one full table segment per concurrent leaf.

Threads, not processes: each leaf's engine spends its time in bulk
``memoryview`` copies and segment syscalls, and the coordination cost of
a pool is negligible against the per-leaf copy time.  The per-leaf
protocol is untouched — :class:`ParallelRestartCoordinator` only decides
*when* each leaf's existing ``backup_to_shm``/``restore`` runs, so every
single-leaf invariant (valid bit last, disk fallback on exception) holds
unchanged, and one leaf's failure never poisons its siblings.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.core.watchdog import CooperativeDeadline

if TYPE_CHECKING:  # circular at runtime: engine imports FootprintBudget
    from repro.core.engine import RestartReport
    from repro.server.leaf import LeafServer


class FootprintBudget:
    """A byte budget shared by every copy in flight on one machine.

    ``acquire(n)`` blocks until ``n`` more in-flight bytes fit under the
    limit.  One special case keeps progress guaranteed: a request larger
    than the whole budget (a single table bigger than the cap) is
    admitted when nothing else is in flight — it runs alone, which is the
    tightest bound any scheduler could give it.  Without that rule a
    machine whose largest table exceeds the budget would deadlock.
    """

    def __init__(self, limit_bytes: int) -> None:
        if limit_bytes <= 0:
            raise ValueError(f"budget must be positive, got {limit_bytes}")
        self.limit_bytes = int(limit_bytes)
        self._cond = threading.Condition()
        self._in_flight = 0
        self.peak_in_flight = 0
        self.blocked_acquires = 0

    def _admissible(self, nbytes: int) -> bool:
        if self._in_flight + nbytes <= self.limit_bytes:
            return True
        # Oversized request: admit only into an empty budget.
        return self._in_flight == 0

    def acquire(self, nbytes: int) -> None:
        """Block until ``nbytes`` of in-flight copy space is available."""
        if nbytes < 0:
            raise ValueError(f"cannot acquire a negative size ({nbytes})")
        with self._cond:
            if not self._admissible(nbytes):
                self.blocked_acquires += 1
                while not self._admissible(nbytes):
                    self._cond.wait()
            self._in_flight += nbytes
            if self._in_flight > self.peak_in_flight:
                self.peak_in_flight = self._in_flight

    def release(self, nbytes: int) -> None:
        """Return ``nbytes`` to the budget, waking blocked acquirers."""
        with self._cond:
            if nbytes < 0 or nbytes > self._in_flight:
                raise ValueError(
                    f"releasing {nbytes} bytes with {self._in_flight} in flight"
                )
            self._in_flight -= nbytes
            self._cond.notify_all()

    @property
    def in_flight(self) -> int:
        with self._cond:
            return self._in_flight

    @contextmanager
    def reserve(self, nbytes: int) -> Iterator[None]:
        self.acquire(nbytes)
        try:
            yield
        finally:
            self.release(nbytes)

    def __repr__(self) -> str:
        with self._cond:
            return (
                f"FootprintBudget(limit={self.limit_bytes}, "
                f"in_flight={self._in_flight}, peak={self.peak_in_flight})"
            )


@dataclass
class RestartOutcome:
    """One leaf's result from a parallel phase."""

    leaf_id: str
    report: "RestartReport | None" = None
    error: BaseException | None = None
    duration_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ParallelRestartReport:
    """What one machine-wide parallel restart did."""

    workers: int
    shutdown: list[RestartOutcome] = field(default_factory=list)
    restore: list[RestartOutcome] = field(default_factory=list)
    shutdown_seconds: float = 0.0
    restore_seconds: float = 0.0
    peak_in_flight_bytes: int = 0

    @property
    def wall_seconds(self) -> float:
        return self.shutdown_seconds + self.restore_seconds

    @property
    def failures(self) -> list[RestartOutcome]:
        return [o for o in self.shutdown + self.restore if not o.ok]


class ParallelRestartCoordinator:
    """Drives many leaves' shutdown/restore concurrently.

    Parameters
    ----------
    leaves:
        The :class:`~repro.server.leaf.LeafServer` instances of one
        machine.
    max_workers:
        Pool width; defaults to one worker per leaf (the
        leaves-per-machine fan-out of §2).
    budget:
        Optional machine-wide in-flight byte cap — a
        :class:`FootprintBudget` or a plain byte count.  Installed on
        every leaf's engine for the duration of each phase, so the
        engines' copy windows queue against one shared limit.
    """

    def __init__(
        self,
        leaves: "Sequence[LeafServer]",
        max_workers: int | None = None,
        budget: FootprintBudget | int | None = None,
    ) -> None:
        if not leaves:
            raise ValueError("a coordinator needs at least one leaf")
        self.leaves = list(leaves)
        if max_workers is None:
            max_workers = len(self.leaves)
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.max_workers = min(max_workers, len(self.leaves))
        if isinstance(budget, int):
            budget = FootprintBudget(budget)
        self.budget = budget

    # ------------------------------------------------------------------
    # Fan-out machinery
    # ------------------------------------------------------------------

    def _run_phase(
        self, fn: "Callable[[LeafServer], RestartReport | None]"
    ) -> list[RestartOutcome]:
        """Apply ``fn`` to every leaf concurrently; never raises.

        Exceptions are captured per leaf — a shutdown that overruns its
        deadline or a restore that dies even on its disk fallback shows
        up as a failed :class:`RestartOutcome` while its siblings finish
        normally.
        """
        for leaf in self.leaves:
            leaf.engine.budget = self.budget

        def one(leaf: "LeafServer") -> RestartOutcome:
            started = time.perf_counter()
            try:
                report = fn(leaf)
                return RestartOutcome(
                    leaf.leaf_id,
                    report=report,
                    duration_seconds=time.perf_counter() - started,
                )
            except Exception as exc:
                return RestartOutcome(
                    leaf.leaf_id,
                    error=exc,
                    duration_seconds=time.perf_counter() - started,
                )

        try:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                return list(pool.map(one, self.leaves))
        finally:
            for leaf in self.leaves:
                leaf.engine.budget = None

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------

    def shutdown_all(
        self,
        use_shm: bool = True,
        deadline_seconds: float | None = None,
    ) -> list[RestartOutcome]:
        """Shut every leaf down (to shared memory by default) in parallel.

        Each leaf gets its *own* deadline of ``deadline_seconds`` — the
        operational contract is per leaf ("we kill the leaf server if it
        has not shut down after 3 minutes"), not per machine.
        """

        def one(leaf: "LeafServer") -> "RestartReport | None":
            deadline = (
                CooperativeDeadline(timeout=deadline_seconds, clock=leaf.clock)
                if deadline_seconds is not None
                else None
            )
            return leaf.shutdown(use_shm=use_shm, deadline=deadline)

        return self._run_phase(one)

    def start_all(
        self, memory_recovery_enabled: bool = True
    ) -> list[RestartOutcome]:
        """Boot every leaf in parallel (shared memory first, disk fallback)."""
        return self._run_phase(
            lambda leaf: leaf.start(memory_recovery_enabled=memory_recovery_enabled)
        )

    def restart_all(
        self,
        use_shm: bool = True,
        memory_recovery_enabled: bool = True,
        deadline_seconds: float | None = None,
    ) -> ParallelRestartReport:
        """The full cycle: parallel shutdown, then parallel restore.

        The two phases are separated by a barrier, mirroring a real
        machine event: every old process must be gone before the new
        binary's processes come up and attach.
        """
        report = ParallelRestartReport(workers=self.max_workers)
        started = time.perf_counter()
        report.shutdown = self.shutdown_all(
            use_shm=use_shm, deadline_seconds=deadline_seconds
        )
        report.shutdown_seconds = time.perf_counter() - started
        started = time.perf_counter()
        report.restore = self.start_all(
            memory_recovery_enabled=memory_recovery_enabled
        )
        report.restore_seconds = time.perf_counter() - started
        if self.budget is not None:
            report.peak_in_flight_bytes = self.budget.peak_in_flight
        return report
